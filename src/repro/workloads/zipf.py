"""Deterministic Zipf sampling for workload generation.

Both of the paper's applications are governed by skew: click streams have
hot users and hot pages; document collections have hot words.  The
benchmarks vary the skew exponent ``s`` (ablation A3), so the sampler is a
first-class, seeded object with a precomputed CDF and vectorised batch
draws (NumPy ``searchsorted`` over uniform variates — no per-sample Python
loop, per the repository's performance guide).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler", "zipf_pmf"]


def zipf_pmf(n: int, s: float) -> np.ndarray:
    """Probability of each rank ``1..n`` under Zipf with exponent ``s``.

    ``s = 0`` degenerates to the uniform distribution, which the skew
    ablation uses as its no-skew endpoint.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if s < 0:
        raise ValueError("s must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


class ZipfSampler:
    """Seeded sampler of ranks ``0..n-1`` with Zipf(s) frequencies."""

    def __init__(self, n: int, s: float, *, seed: int = 0) -> None:
        self.n = n
        self.s = s
        self._cdf = np.cumsum(zipf_pmf(n, s))
        # Guard against floating-point drift at the top end.
        self._cdf[-1] = 1.0
        self._rng = np.random.default_rng(seed)

    def draw(self, count: int) -> np.ndarray:
        """Return ``count`` sampled ranks (dtype int64, zero-based)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def draw_one(self) -> int:
        return int(self.draw(1)[0])

    def expected_top_share(self, k: int) -> float:
        """Fraction of all draws expected to hit the ``k`` hottest ranks."""
        if k < 1:
            return 0.0
        k = min(k, self.n)
        pmf = zipf_pmf(self.n, self.s)
        return float(pmf[:k].sum())

"""Synthetic click-stream generator (WorldCup'98 stand-in).

The paper's click-stream experiments use the 1998 World Cup site logs,
"replicated to larger sizes as needed".  We cannot ship that dataset, so
this generator produces logs with the properties the workloads depend on:

* schema ``(timestamp, user_id, url)``, emitted in timestamp order;
* Zipf-skewed user activity (hot users → hot sessionization keys) and
  Zipf-skewed page popularity (hot URLs → hot counting keys);
* temporal session structure: a user's clicks arrive in bursts whose
  intra-burst gaps are far below the sessionization gap threshold and
  whose inter-burst gaps are far above it, so ground-truth session counts
  are controllable.

Generation is chunked and vectorised; records stream out without ever
materialising the whole log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.io.serialization import TextLineCodec
from repro.workloads.zipf import ZipfSampler

__all__ = ["ClickStreamConfig", "generate_clicks", "click_text_codec", "url_of"]

ClickRecord = tuple[float, int, str]


@dataclass(frozen=True, slots=True)
class ClickStreamConfig:
    """Shape of the synthetic log."""

    num_clicks: int = 100_000
    num_users: int = 5_000
    num_urls: int = 2_000
    user_skew: float = 1.1
    url_skew: float = 1.0
    mean_interarrival: float = 0.05
    session_gap: float = 1800.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_clicks < 1 or self.num_users < 1 or self.num_urls < 1:
            raise ValueError("num_clicks, num_users and num_urls must be >= 1")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.session_gap <= 0:
            raise ValueError("session_gap must be positive")


def url_of(rank: int) -> str:
    """Stable URL string for a popularity rank."""
    return f"/page/{rank:06d}"


def generate_clicks(
    config: ClickStreamConfig, *, chunk: int = 8192
) -> Iterator[ClickRecord]:
    """Yield ``(timestamp, user_id, url)`` records in timestamp order.

    The global arrival process is a jittered clock; users and URLs are
    drawn independently per click from their Zipf samplers.  Because a hot
    user's clicks recur every few ticks — far within the session gap at the
    default rates — while a cold user's recurrences are spaced much wider,
    the stream naturally yields multi-session users at both extremes.
    """
    users = ZipfSampler(config.num_users, config.user_skew, seed=config.seed)
    urls = ZipfSampler(config.num_urls, config.url_skew, seed=config.seed + 1)
    rng = np.random.default_rng(config.seed + 2)

    now = 0.0
    remaining = config.num_clicks
    while remaining > 0:
        n = min(chunk, remaining)
        remaining -= n
        gaps = rng.exponential(config.mean_interarrival, n)
        user_ranks = users.draw(n)
        url_ranks = urls.draw(n)
        for i in range(n):
            # Sequential accumulation (not cumsum) keeps timestamps exactly
            # independent of the chunk size.
            now += float(gaps[i])
            yield (now, int(user_ranks[i]), url_of(int(url_ranks[i])))


def click_text_codec() -> TextLineCodec:
    """Line-text codec for click logs: ``timestamp<TAB>user<TAB>url``."""
    return TextLineCodec((float, int, str), name="clicks-text")

"""Page-frequency counting: ``SELECT COUNT(*) FROM visits GROUP BY url``.

The paper's running example (§II) and one of its four benchmark workloads.
Keys are URLs; the combiner collapses the map output to one partial count
per URL per map task, which is why Table I shows an intermediate/input
ratio of only 0.4% for this workload.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.engine import OnePassConfig, OnePassJob
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.workloads.counting import counting_job, counting_onepass_job, reference_counts

__all__ = [
    "url_of_click",
    "page_frequency_job",
    "page_frequency_onepass_job",
    "reference_page_counts",
]


def url_of_click(click: tuple[float, int, str]) -> str:
    """Key extractor: the visited URL."""
    return click[2]


def page_frequency_job(
    input_path: str,
    output_path: str,
    *,
    config: JobConfig | None = None,
    with_combiner: bool = True,
) -> MapReduceJob:
    return counting_job(
        "page-frequency",
        url_of_click,
        input_path,
        output_path,
        config=config,
        with_combiner=with_combiner,
    )


def page_frequency_onepass_job(
    input_path: str,
    output_path: str,
    *,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    return counting_onepass_job(
        "page-frequency-onepass",
        url_of_click,
        input_path,
        output_path,
        config=config,
    )


def reference_page_counts(clicks: Iterable[tuple[float, int, str]]) -> dict[str, int]:
    return reference_counts(clicks, url_of_click)

"""Synthetic web-document collection (GOV2 stand-in).

The paper's web-document experiments use the 427 GB GOV2 crawl.  The
substitute generates documents whose word-frequency distribution is
Zipfian over a synthetic vocabulary — the property that determines both
the inverted index's posting-list skew and the intermediate/input ratio
(~0.7x in Table I: per-word pairs are smaller than the source text but
almost as numerous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.io.serialization import TextLineCodec
from repro.workloads.zipf import ZipfSampler

__all__ = ["DocumentConfig", "generate_documents", "word_of", "document_text_codec"]

DocumentRecord = tuple[int, str]


#: Markup/boilerplate tokens interleaved with indexable words.  They carry
#: bytes (as HTML does in GOV2) but the tokenizer skips them, so the
#: intermediate/input ratio of index construction stays below 1 as in the
#: paper's Table I.
_MARKUP = (
    "<p>", "</p>", "<div>", "</div>", '<a href="/l">', "</a>",
    "&nbsp;", "12;", "<br/>", "<span-class=m>",
)


@dataclass(frozen=True, slots=True)
class DocumentConfig:
    """Shape of the synthetic collection.

    ``markup_per_word`` controls how many non-indexed markup tokens are
    interleaved per content word — the stand-in for GOV2's HTML
    boilerplate.  Zero yields pure-text documents.
    """

    num_docs: int = 2_000
    vocab_size: int = 10_000
    mean_doc_words: int = 120
    word_skew: float = 1.0
    markup_per_word: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_docs < 1 or self.vocab_size < 1:
            raise ValueError("num_docs and vocab_size must be >= 1")
        if self.mean_doc_words < 1:
            raise ValueError("mean_doc_words must be >= 1")
        if self.markup_per_word < 0:
            raise ValueError("markup_per_word must be non-negative")


def word_of(rank: int) -> str:
    """Stable token for a vocabulary rank."""
    return f"w{rank:06d}"


def generate_documents(config: DocumentConfig) -> Iterator[DocumentRecord]:
    """Yield ``(doc_id, text)`` records.

    Document lengths are geometric around the configured mean (minimum 1
    word) so posting lists see realistic variance; word ranks are drawn
    per position from the Zipf sampler.  Markup tokens (per
    ``markup_per_word``) are interleaved deterministically.
    """
    words = ZipfSampler(config.vocab_size, config.word_skew, seed=config.seed)
    rng = np.random.default_rng(config.seed + 1)
    lengths = 1 + rng.geometric(1.0 / config.mean_doc_words, config.num_docs)
    markup_budget = 0.0
    for doc_id in range(config.num_docs):
        n = int(lengths[doc_id])
        ranks = words.draw(n)
        markup_choices = (
            rng.integers(0, len(_MARKUP), n * max(1, int(config.markup_per_word) + 1))
            if config.markup_per_word > 0
            else None
        )
        tokens: list[str] = []
        mi = 0
        for r in ranks:
            if markup_choices is not None:
                markup_budget += config.markup_per_word
                while markup_budget >= 1.0:
                    tokens.append(_MARKUP[int(markup_choices[mi])])
                    mi += 1
                    markup_budget -= 1.0
            tokens.append(word_of(int(r)))
        yield (doc_id, " ".join(tokens))


def document_text_codec() -> TextLineCodec:
    """Line-text codec for documents: ``doc_id<TAB>text``."""
    return TextLineCodec((int, str), name="docs-text")

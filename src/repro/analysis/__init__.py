"""Analysis and reporting: tables, series shapes, engine comparisons."""

from repro.analysis.export import run_to_json, series_csv, timeline_csv, write_run_bundle
from repro.analysis.compare import (
    CpuSplit,
    EngineComparison,
    attributed_cpu,
    compare_results,
    cpu_split,
    ratio,
)
from repro.analysis.report import ExperimentReport, Observation, recovery_summary
from repro.analysis.series import (
    find_valley,
    peak_time,
    sparkline,
    valley_depth,
    window_mean,
)
from repro.analysis.tables import format_kv, format_table, human_bytes, human_time

__all__ = [
    "format_table",
    "format_kv",
    "human_bytes",
    "human_time",
    "sparkline",
    "window_mean",
    "find_valley",
    "valley_depth",
    "peak_time",
    "CpuSplit",
    "cpu_split",
    "EngineComparison",
    "compare_results",
    "attributed_cpu",
    "ratio",
    "ExperimentReport",
    "Observation",
    "recovery_summary",
    "series_csv",
    "timeline_csv",
    "run_to_json",
    "write_run_bundle",
]

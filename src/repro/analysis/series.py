"""Time-series inspection: sparklines and shape assertions.

The paper's figures are time-series plots; a terminal harness cannot show
them, so the benchmarks render unicode sparklines and — more importantly —
*assert their shapes*: the helpers here locate the merge valley, measure
phase-average utilisation, and find spikes, turning "looks like Fig. 2(b)"
into checkable predicates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sparkline",
    "window_mean",
    "find_valley",
    "valley_depth",
    "peak_time",
]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray | list[float], *, width: int = 72) -> str:
    """Render a series as a fixed-width unicode sparkline."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Average down to the target width.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _BARS[0] * arr.size
    idx = ((arr - lo) / (hi - lo) * (len(_BARS) - 1)).round().astype(int)
    return "".join(_BARS[i] for i in idx)


def window_mean(
    times: np.ndarray, values: np.ndarray, t0: float, t1: float
) -> float:
    """Mean of ``values`` over sample times in ``[t0, t1)``."""
    mask = (times >= t0) & (times < t1)
    if not mask.any():
        raise ValueError(f"no samples in window [{t0}, {t1})")
    return float(np.asarray(values)[mask].mean())


def find_valley(
    times: np.ndarray,
    values: np.ndarray,
    *,
    smooth: int = 3,
    interior_margin: float = 0.05,
) -> tuple[float, float]:
    """Locate the interior minimum of a series: ``(time, value)``.

    The first/last ``interior_margin`` fraction is excluded so job ramp-up
    and tail-off do not masquerade as the merge valley.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if smooth > 1 and v.size >= smooth:
        kernel = np.ones(smooth) / smooth
        v = np.convolve(v, kernel, mode="same")
    lo = int(len(v) * interior_margin)
    hi = max(lo + 1, int(len(v) * (1 - interior_margin)))
    idx = lo + int(np.argmin(v[lo:hi]))
    return float(t[idx]), float(v[idx])


def valley_depth(
    times: np.ndarray, values: np.ndarray, **kwargs: float
) -> float:
    """How far the interior minimum sits below the series mean (>=0)."""
    _t, vmin = find_valley(times, values, **kwargs)
    return max(0.0, float(np.mean(values)) - vmin)


def peak_time(times: np.ndarray, values: np.ndarray) -> float:
    """Sample time of the series maximum."""
    return float(np.asarray(times)[int(np.argmax(values))])

"""Engine-to-engine comparison helpers for the §V and Table II claims."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.counters import C, Counters
from repro.mapreduce.runtime import JobResult

__all__ = ["CpuSplit", "cpu_split", "EngineComparison", "compare_results", "ratio"]


@dataclass(frozen=True, slots=True)
class CpuSplit:
    """Map-phase CPU attribution (the paper's Table II)."""

    map_fn_seconds: float
    sort_seconds: float

    @property
    def total(self) -> float:
        return self.map_fn_seconds + self.sort_seconds

    @property
    def map_fn_share(self) -> float:
        return self.map_fn_seconds / self.total if self.total else 0.0

    @property
    def sort_share(self) -> float:
        return self.sort_seconds / self.total if self.total else 0.0


def cpu_split(counters: Counters, *, include_parse: bool = True) -> CpuSplit:
    """Extract the map-function vs sorting CPU split from job counters.

    Parsing is folded into the map-function side by default, matching the
    paper's methodology (its map-function numbers include click-log
    parsing; §III.B.1 showed parsing itself was negligible).
    """
    map_fn = counters[C.T_MAP_FN] + (counters[C.T_PARSE] if include_parse else 0.0)
    return CpuSplit(map_fn_seconds=map_fn, sort_seconds=counters[C.T_SORT])


def ratio(new: float, baseline: float) -> float:
    """``new / baseline`` with a defined value for a zero baseline."""
    if baseline == 0:
        return float("inf") if new > 0 else 1.0
    return new / baseline


@dataclass(frozen=True, slots=True)
class EngineComparison:
    """Headline §V metrics: hash engine vs the sort-merge baseline."""

    baseline: str
    candidate: str
    cpu_saving: float          # fraction of attributed CPU seconds saved
    time_saving: float         # fraction of wall time saved
    spill_reduction: float     # baseline reduce-spill bytes / candidate's

    def describe(self) -> str:
        spill = (
            f"{self.spill_reduction:,.0f}x"
            if self.spill_reduction != float("inf")
            else "eliminated entirely"
        )
        return (
            f"{self.candidate} vs {self.baseline}: "
            f"{self.cpu_saving:.0%} CPU saved, "
            f"{self.time_saving:.0%} running time saved, "
            f"reduce-phase spill I/O reduced {spill}"
        )


_CPU_COUNTERS = (
    C.T_MAP_FN,
    C.T_PARSE,
    C.T_SORT,
    C.T_COMBINE,
    C.T_MERGE,
    C.T_REDUCE_FN,
    C.T_HASH,
)


def attributed_cpu(counters: Counters) -> float:
    """Total CPU seconds attributed to framework + user functions."""
    return sum(counters[name] for name in _CPU_COUNTERS)


def compare_results(baseline: JobResult, candidate: JobResult) -> EngineComparison:
    """Compute the §V comparison between two runs of the same workload."""
    base_cpu = attributed_cpu(baseline.counters)
    cand_cpu = attributed_cpu(candidate.counters)
    base_spill = baseline.counters[C.REDUCE_SPILL_BYTES] + baseline.counters[C.MERGE_WRITE_BYTES]
    cand_spill = candidate.counters[C.REDUCE_SPILL_BYTES]
    return EngineComparison(
        baseline=baseline.engine,
        candidate=candidate.engine,
        cpu_saving=1.0 - ratio(cand_cpu, base_cpu),
        time_saving=1.0 - ratio(candidate.wall_time, baseline.wall_time),
        spill_reduction=(
            float("inf") if cand_spill == 0 and base_spill > 0
            else ratio(base_spill, cand_spill) if cand_spill else 1.0
        ),
    )

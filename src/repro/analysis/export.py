"""Export simulation series and task timelines for external plotting.

The benchmark harness asserts figure *shapes*; anyone who wants the actual
curves (to plot Fig. 2 with matplotlib, gnuplot, a spreadsheet...) can dump
them with these helpers: plain CSV for the time series, one row per task
span for timelines, and a JSON bundle combining both with the run's
metadata.
"""

from __future__ import annotations

import io
import json
from typing import Any

from repro.simulator.tasks import SimRunResult
from repro.simulator.timeline import TaskLog

__all__ = ["series_csv", "timeline_csv", "run_to_json", "write_run_bundle"]


def series_csv(result: SimRunResult) -> str:
    """The run's metric series as CSV (one row per sample bucket)."""
    s = result.series
    out = io.StringIO()
    out.write("time_s,cpu_utilization,cpu_iowait,disk_read_Bps,disk_write_Bps\n")
    for i in range(len(s.times)):
        out.write(
            f"{s.times[i]:.1f},{s.cpu_utilization[i]:.4f},"
            f"{s.cpu_iowait[i]:.4f},{s.disk_read_bytes_per_s[i]:.0f},"
            f"{s.disk_write_bytes_per_s[i]:.0f}\n"
        )
    return out.getvalue()


def timeline_csv(log: TaskLog) -> str:
    """Every task span as CSV (phase, start, end, node, task id)."""
    out = io.StringIO()
    out.write("phase,start_s,end_s,node,task_id\n")
    for span in sorted(log.spans, key=lambda s: (s.start, s.phase, s.task_id)):
        out.write(
            f"{span.phase},{span.start:.3f},{span.end:.3f},{span.node},{span.task_id}\n"
        )
    return out.getvalue()


def run_to_json(result: SimRunResult) -> dict[str, Any]:
    """A self-describing JSON bundle for one simulated run."""
    totals = result.totals
    return {
        "engine": result.engine,
        "workload": result.workload,
        "makespan_s": result.makespan,
        "spec": {
            "nodes": result.spec.nodes,
            "reducers": result.spec.reducers,
            "block_bytes": result.spec.block_bytes,
            "merge_factor": result.spec.merge_factor,
            "with_ssd": result.spec.with_ssd,
            "storage_nodes": result.spec.storage_nodes,
        },
        "profile": {
            "input_bytes": result.profile.input_bytes,
            "map_output_ratio": result.profile.map_output_ratio,
        },
        "totals": {
            "map_output_bytes": totals.map_output_bytes,
            "shuffle_bytes": totals.shuffle_bytes,
            "reduce_spill_bytes": totals.reduce_spill_bytes,
            "merge_read_bytes": totals.merge_read_bytes,
            "merge_write_bytes": totals.merge_write_bytes,
            "merge_passes": totals.merge_passes,
            "snapshot_read_bytes": totals.snapshot_read_bytes,
            "output_bytes": totals.output_bytes,
            "network_messages": totals.network_messages,
            "remote_input_bytes": totals.remote_input_bytes,
        },
        "series": result.series.as_dict(),
        "phase_windows": {
            phase: result.phase_window(phase)
            for phase in ("map", "shuffle", "merge", "reduce")
            if result.task_log.phase_spans(phase)
        },
    }


def write_run_bundle(result: SimRunResult, directory: str, *, stem: str | None = None) -> list[str]:
    """Write ``<stem>.series.csv``, ``<stem>.timeline.csv``, ``<stem>.json``.

    Returns the paths written.  ``stem`` defaults to
    ``"<workload>-<engine>"``.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    stem = stem or f"{result.workload}-{result.engine}"
    paths = []
    for suffix, content in (
        (".series.csv", series_csv(result)),
        (".timeline.csv", timeline_csv(result.task_log)),
        (".json", json.dumps(run_to_json(result), indent=2)),
    ):
        path = os.path.join(directory, stem + suffix)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        paths.append(path)
    return paths

"""Experiment reports: paper-vs-measured records for EXPERIMENTS.md.

Each benchmark builds an :class:`ExperimentReport` carrying the paper's
claim, the measured value, and whether the qualitative shape held; the
harness prints them uniformly so `bench_output.txt` doubles as the raw
material of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.tables import format_table

__all__ = ["Observation", "ExperimentReport"]


@dataclass(frozen=True, slots=True)
class Observation:
    """One paper-vs-measured comparison line."""

    metric: str
    paper: str
    measured: str
    holds: bool

    def row(self) -> tuple[str, str, str, str]:
        return (self.metric, self.paper, self.measured, "yes" if self.holds else "NO")


@dataclass(slots=True)
class ExperimentReport:
    """A full experiment's record: id, setup and its observations."""

    experiment_id: str
    title: str
    setup: str
    observations: list[Observation] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def observe(
        self, metric: str, paper: str, measured: Any, holds: bool
    ) -> Observation:
        obs = Observation(metric=metric, paper=paper, measured=str(measured), holds=holds)
        self.observations.append(obs)
        return obs

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_hold(self) -> bool:
        return all(o.holds for o in self.observations)

    def render(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"setup: {self.setup}",
            format_table(
                ("metric", "paper", "measured", "holds"),
                [o.row() for o in self.observations],
            ),
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(f"result: {'ALL SHAPES HOLD' if self.all_hold else 'SHAPE MISMATCH'}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())

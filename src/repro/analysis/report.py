"""Experiment reports: paper-vs-measured records for EXPERIMENTS.md.

Each benchmark builds an :class:`ExperimentReport` carrying the paper's
claim, the measured value, and whether the qualitative shape held; the
harness prints them uniformly so `bench_output.txt` doubles as the raw
material of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.tables import format_table
from repro.mapreduce.counters import C, Counters

__all__ = ["Observation", "ExperimentReport", "recovery_summary"]


#: Counter names that make up the recovery story, in reporting order.
_RECOVERY_COUNTERS: tuple[tuple[str, str], ...] = (
    ("tasks_rerun", C.TASKS_RERUN),
    ("map_task_retries", C.MAP_TASK_RETRIES),
    ("reduce_task_retries", C.REDUCE_TASK_RETRIES),
    ("node_crashes", C.NODE_CRASHES),
    ("bytes_reshuffled", C.BYTES_RESHUFFLED),
    ("replayed_records", C.REPLAYED_RECORDS),
    ("log_bytes", C.LOG_BYTES),
    ("blocks_rereplicated", C.BLOCKS_REREPLICATED),
    ("bytes_rereplicated", C.BYTES_REREPLICATED),
    ("shuffle_fetch_failures", C.SHUFFLE_FETCH_FAILURES),
    ("shuffle_backoff_ms", C.SHUFFLE_BACKOFF_MS),
    ("speculative_launched", C.SPECULATIVE_LAUNCHED),
    ("speculative_wins", C.SPECULATIVE_WINS),
    ("speculative_wasted_ms", C.SPECULATIVE_WASTED_MS),
    ("checkpoints", C.CHECKPOINTS),
    ("checkpoint_bytes", C.CHECKPOINT_BYTES),
    ("checkpoint_restores", C.CHECKPOINT_RESTORES),
    ("recovery_time", C.T_RECOVERY),
)


def recovery_summary(counters: Counters) -> dict[str, float]:
    """The fault-tolerance story of one run as a flat dict.

    Zero-valued counters are included, so the dict's shape is stable
    across engines and fault plans — a clean run reports all-zeros rather
    than an empty dict, which keeps diffs and JSON reports comparable.
    """
    return {name: float(counters[key]) for name, key in _RECOVERY_COUNTERS}


@dataclass(frozen=True, slots=True)
class Observation:
    """One paper-vs-measured comparison line."""

    metric: str
    paper: str
    measured: str
    holds: bool

    def row(self) -> tuple[str, str, str, str]:
        return (self.metric, self.paper, self.measured, "yes" if self.holds else "NO")


@dataclass(slots=True)
class ExperimentReport:
    """A full experiment's record: id, setup and its observations."""

    experiment_id: str
    title: str
    setup: str
    observations: list[Observation] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def observe(
        self, metric: str, paper: str, measured: Any, holds: bool
    ) -> Observation:
        obs = Observation(metric=metric, paper=paper, measured=str(measured), holds=holds)
        self.observations.append(obs)
        return obs

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_hold(self) -> bool:
        return all(o.holds for o in self.observations)

    def render(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"setup: {self.setup}",
            format_table(
                ("metric", "paper", "measured", "holds"),
                [o.row() for o in self.observations],
            ),
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(f"result: {'ALL SHAPES HOLD' if self.all_hold else 'SHAPE MISMATCH'}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())

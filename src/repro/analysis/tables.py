"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows the paper's tables report; this module
keeps the formatting in one place so every bench emits uniform output that
is easy to diff across runs.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_kv", "human_bytes", "human_time"]


def human_bytes(n: float) -> str:
    """1234567 → ``'1.18 MB'`` (binary units, two significant decimals)."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1024 or unit == "PB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """90.5 → ``'1.5 min'``; 5405 → ``'90.1 min'``; 12 → ``'12.0 s'``."""
    if seconds < 60:
        return f"{seconds:.1f} s"
    return f"{seconds / 60:.1f} min"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs: dict[str, Any], *, title: str = "") -> str:
    """Render a two-column key/value block."""
    rows = [(k, v) for k, v in pairs.items()]
    return format_table(("metric", "value"), rows, title=title)

#!/usr/bin/env python3
"""Web-document analysis: build an inverted index and search it.

Generates an HTML-flavoured synthetic document collection (the GOV2
stand-in), builds the inverted index on the one-pass engine — no sorting
anywhere in the group-by — and answers a few conjunctive word queries from
the posting lists.

Run:  python examples/inverted_index_onepass.py
"""

from repro.analysis.tables import format_table, human_bytes
from repro.core import OnePassEngine
from repro.mapreduce import C, LocalCluster
from repro.workloads import (
    DocumentConfig,
    generate_documents,
    inverted_index_onepass_job,
    reference_index,
    word_of,
)


def main() -> None:
    print("generating 1,000 documents with HTML-like markup...")
    docs = list(
        generate_documents(
            DocumentConfig(
                num_docs=1_000,
                vocab_size=5_000,
                mean_doc_words=60,
                markup_per_word=2.0,
            )
        )
    )

    cluster = LocalCluster(num_nodes=4, block_size=512 * 1024)
    cluster.hdfs.write_records("docs", docs)
    result = OnePassEngine(cluster).run(inverted_index_onepass_job("docs", "index"))

    index = dict(cluster.hdfs.read_records("index"))
    assert index == reference_index(docs)
    total_postings = sum(len(p) for p in index.values())
    print(
        format_table(
            ("metric", "value"),
            [
                ("documents", len(docs)),
                ("distinct words", len(index)),
                ("postings", total_postings),
                ("input bytes", human_bytes(result.counters[C.MAP_INPUT_BYTES])),
                ("shuffled", human_bytes(result.counters[C.SHUFFLE_BYTES])),
                ("sort CPU", f"{result.counters[C.T_SORT]:.3f}s (hash group-by)"),
                ("wall time", f"{result.wall_time:.2f}s"),
            ],
            title="inverted-index construction (one-pass engine)",
        )
    )

    # Conjunctive queries over the posting lists.
    print("\nconjunctive searches (documents containing every term):")
    for terms in ([word_of(0), word_of(1)], [word_of(2), word_of(10), word_of(40)]):
        doc_sets = [
            {doc_id for doc_id, _pos in index.get(term, ())} for term in terms
        ]
        hits = sorted(set.intersection(*doc_sets)) if doc_sets else []
        print(f"  {' AND '.join(terms)}: {len(hits)} docs  e.g. {hits[:6]}")

    # Posting lists are position-aware: phrase search for the two hottest
    # words appearing adjacently.
    a, b = word_of(0), word_of(1)
    positions_a = {(d, p) for d, p in index[a]}
    phrase_hits = sorted({d for d, p in index[b] if (d, p - 1) in positions_a})
    print(f'\nphrase "{a} {b}" occurs in {len(phrase_hits)} docs  e.g. {phrase_hits[:6]}')


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Graph queries on the one-pass engine: degrees, hubs, triangles.

The paper names "graph queries" (next to top-k) as the complex analytics a
one-pass platform must grow into.  This example runs the graph workload
family end to end on a synthetic skewed graph:

1. degree counting — an incremental counting job over the edge stream;
2. hub detection — global top-k over the degree results;
3. triangle counting — a *two-round* MapReduce program composed from this
   repository's jobs (adjacency lists, then a wedge/edge join), checked
   against networkx.

Run:  python examples/graph_analytics.py
"""

from repro.analysis.tables import format_table
from repro.core import OnePassEngine, global_top_k
from repro.mapreduce import LocalCluster
from repro.workloads.graph import (
    GraphConfig,
    count_triangles,
    degree_count_onepass_job,
    generate_edges,
    reference_triangles,
)


def main() -> None:
    config = GraphConfig(num_vertices=2_000, num_edges=12_000, skew=0.9)
    print(
        f"generating a skewed graph: {config.num_vertices} vertices, "
        f"{config.num_edges} edges..."
    )
    edges = generate_edges(config)

    cluster = LocalCluster(num_nodes=4, block_size=64 * 1024)
    cluster.hdfs.write_records("edges", edges)

    # 1. degrees.
    OnePassEngine(cluster).run(degree_count_onepass_job("edges", "degrees"))
    degrees = dict(cluster.hdfs.read_records("degrees"))
    assert sum(degrees.values()) == 2 * len(edges)

    # 2. hubs.
    hubs = global_top_k(degrees.items(), 8)
    print(
        format_table(
            ("vertex", "degree"),
            hubs,
            title="hub vertices (global top-8 by degree)",
        )
    )

    # 3. triangles, two composed rounds, verified independently.
    print("\ncounting triangles (round 1: adjacency; round 2: wedge join)...")
    triangles = count_triangles(cluster, "edges")
    expected = reference_triangles(edges)
    print(f"triangles: {triangles}  (networkx agrees: {triangles == expected})")

    # Clustering-style summary.
    import math

    wedges = sum(d * (d - 1) // 2 for d in degrees.values())
    closure = 3 * triangles / wedges if wedges else math.nan
    print(
        f"\n{len(degrees)} vertices touched, {wedges} wedges, "
        f"global clustering coefficient {closure:.4f}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Replay the paper's Fig. 2 at full scale in the cluster simulator.

Runs sessionization over 256 GB on the simulated 10-node 2011 cluster
under all three execution pipelines and prints terminal renderings of the
paper's figures: task timelines, CPU utilisation, iowait and disk reads.

Run:  python examples/cluster_simulation.py
"""

from repro.analysis.series import sparkline
from repro.analysis.tables import format_table, human_time
from repro.simulator import (
    CLUSTER_2011,
    GB,
    SESSIONIZATION,
    ClusterSpec,
    HadoopPipeline,
    HOPPipeline,
    HOPSimConfig,
    OnePassPipeline,
)

BUCKET = 60.0


def show(result, label: str) -> None:
    print(f"\n--- {label}: {human_time(result.makespan)} total ---")
    _times, series = result.task_log.counts_series(BUCKET)
    for phase in ("map", "shuffle", "merge", "reduce"):
        if series[phase].max() > 0:
            print(f"  {phase:7s} tasks {sparkline(series[phase], width=60)}")
    s = result.series
    print(f"  cpu util      {sparkline(s.cpu_utilization, width=60)}")
    print(f"  cpu iowait    {sparkline(s.cpu_iowait, width=60)}")
    print(f"  disk reads    {sparkline(s.disk_read_bytes_per_s, width=60)}")
    print(
        f"  reduce-side writes: "
        f"{(result.totals.reduce_spill_bytes + result.totals.merge_write_bytes) / GB:.0f} GB, "
        f"merge passes: {result.totals.merge_passes}"
    )


def main() -> None:
    print(
        "simulating sessionization over "
        f"{SESSIONIZATION.input_bytes / GB:.0f} GB on "
        f"{CLUSTER_2011.nodes} nodes ({CLUSTER_2011.reducers} reducers)..."
    )

    stock = HadoopPipeline(CLUSTER_2011, SESSIONIZATION, metric_bucket=BUCKET).run()
    show(stock, "stock Hadoop (sort-merge)  [Fig 2(a)-(d)]")

    ssd = HadoopPipeline(
        ClusterSpec(with_ssd=True), SESSIONIZATION, metric_bucket=BUCKET
    ).run()
    show(ssd, "HDD + SSD architecture  [Fig 2(e)]")

    hop = HOPPipeline(
        CLUSTER_2011,
        SESSIONIZATION,
        hop=HOPSimConfig(granularity_bytes=4 * 1024 * 1024),
        metric_bucket=BUCKET,
    ).run()
    show(hop, "MapReduce Online  [Fig 4]")

    onepass = OnePassPipeline(CLUSTER_2011, SESSIONIZATION, metric_bucket=BUCKET).run()
    show(onepass, "one-pass hash engine  [paper's proposal]")

    print()
    print(
        format_table(
            ("pipeline", "completion", "vs stock"),
            [
                (
                    label,
                    human_time(r.makespan),
                    f"{(1 - r.makespan / stock.makespan):+.0%}",
                )
                for label, r in (
                    ("stock hadoop", stock),
                    ("hdd+ssd", ssd),
                    ("mapreduce online", hop),
                    ("one-pass hash", onepass),
                )
            ],
            title="sessionization, 256 GB, 10 nodes",
        )
    )
    print(
        "\nthe paper's observations, visible above: the merge valley in the "
        "CPU rows of every sort-merge run (including SSD and HOP), the "
        "iowait spike beneath it, and the one-pass engine's flat profile."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sessionization: the paper's heaviest click-stream workload, end to end.

Reorders a click log into per-user sessions on the sort-merge baseline and
on the one-pass hash engine, under reduce-side memory pressure, and shows
the cost asymmetry the paper measures: the baseline sorts everything and
re-reads its spills through a multi-pass merge, while the hash engine
groups without comparing keys and spills at most once.

Run:  python examples/clickstream_sessionization.py
"""

import time

from repro.analysis.tables import format_table, human_bytes
from repro.core import OnePassConfig, OnePassEngine
from repro.mapreduce import C, HadoopEngine, LocalCluster
from repro.workloads import (
    ClickStreamConfig,
    generate_clicks,
    reference_sessions,
    sessionization_job,
    sessionization_onepass_job,
)

GAP_SECONDS = 5.0  # session gap; tiny because the synthetic log is dense


def main() -> None:
    print("generating 150k clicks...")
    clicks = list(
        generate_clicks(
            ClickStreamConfig(
                num_clicks=150_000, num_users=5_000, num_urls=1_000, user_skew=1.2
            )
        )
    )

    cluster = LocalCluster(num_nodes=4, block_size=512 * 1024)
    cluster.hdfs.write_records("clicks", clicks)

    # Sort-merge baseline, reduce buffers smaller than the shuffled data —
    # the regime that triggers Hadoop's multi-pass merge.
    t0 = time.perf_counter()
    sm = HadoopEngine(cluster).run(
        sessionization_job("clicks", "out-sm", gap=GAP_SECONDS).with_config(
            reduce_buffer_bytes=256 * 1024
        )
    )
    sm_wall = time.perf_counter() - t0

    # One-pass engine: hybrid hash grouping, same memory budget.
    t0 = time.perf_counter()
    op = OnePassEngine(cluster).run(
        sessionization_onepass_job(
            "clicks",
            "out-op",
            gap=GAP_SECONDS,
            config=OnePassConfig(
                mode="hybrid",
                map_side_combine=False,
                reduce_memory_bytes=256 * 1024,
            ),
        )
    )
    op_wall = time.perf_counter() - t0

    reference = reference_sessions(clicks, gap=GAP_SECONDS)
    assert sorted(cluster.hdfs.read_records("out-sm")) == reference
    assert sorted(cluster.hdfs.read_records("out-op")) == reference
    print(f"both engines produced the same {len(reference)} sessions\n")

    rows = []
    for name, result, wall in (
        ("sort-merge", sm, sm_wall),
        ("one-pass hash", op, op_wall),
    ):
        c = result.counters
        rows.append(
            (
                name,
                f"{wall:.2f}s",
                f"{c[C.T_SORT]:.3f}s",
                human_bytes(c[C.REDUCE_SPILL_BYTES]),
                human_bytes(c[C.MERGE_READ_BYTES]),
                int(c[C.MERGE_PASSES]),
            )
        )
    print(
        format_table(
            ("engine", "wall", "sort CPU", "reduce spill", "merge reads", "passes"),
            rows,
            title=f"sessionization, {len(clicks)} clicks, gap={GAP_SECONDS:g}s",
        )
    )

    # A couple of real sessions for flavour.
    busy = max(reference, key=lambda s: len(s[2]))
    print(
        f"\nbusiest single session: user {busy[0]} with {len(busy[2])} clicks, "
        f"starting at t={busy[1]:.1f}s:"
    )
    for url in busy[2][:8]:
        print(f"  {url}")
    if len(busy[2]) > 8:
        print(f"  ... and {len(busy[2]) - 8} more")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: one query, three engines.

Builds a small simulated cluster, loads a synthetic click log into its
HDFS, and runs the paper's running example —

    SELECT COUNT(*) FROM visits GROUP BY url;

— on stock Hadoop (sort-merge), MapReduce Online (pipelined sort-merge)
and the paper's hash-based one-pass engine, verifying that all three
agree and showing where each spends its effort.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import format_table, human_bytes
from repro.core import OnePassEngine
from repro.mapreduce import C, HadoopEngine, HOPEngine, LocalCluster
from repro.workloads import (
    ClickStreamConfig,
    generate_clicks,
    page_frequency_job,
    page_frequency_onepass_job,
    reference_page_counts,
)


def main() -> None:
    # A 4-node cluster with small HDFS blocks so several map waves run.
    cluster = LocalCluster(num_nodes=4, block_size=256 * 1024)

    print("generating 100k clicks (Zipf users and pages)...")
    clicks = list(
        generate_clicks(
            ClickStreamConfig(num_clicks=100_000, num_users=2_000, num_urls=800)
        )
    )
    cluster.hdfs.write_records("clicks", clicks)
    blocks = len(cluster.hdfs.input_splits("clicks"))
    print(f"loaded {len(clicks)} clicks into HDFS as {blocks} blocks\n")

    results = {}
    results["hadoop (sort-merge)"] = HadoopEngine(cluster).run(
        page_frequency_job("clicks", "out-hadoop")
    )
    results["mapreduce online"] = HOPEngine(cluster).run(
        page_frequency_job("clicks", "out-hop")
    )
    results["one-pass (hash)"] = OnePassEngine(cluster).run(
        page_frequency_onepass_job("clicks", "out-onepass")
    )

    # All three engines must produce the same answer.
    reference = reference_page_counts(clicks)
    for name, result in results.items():
        got = dict(cluster.hdfs.read_records(result.output_path))
        assert got == reference, f"{name} diverged from the reference!"
    print(f"all three engines agree on {len(reference)} group counts\n")

    print(
        format_table(
            ("engine", "wall", "sorted recs", "hash probes", "spill", "shuffle"),
            [
                (
                    name,
                    f"{r.wall_time:.2f}s",
                    int(r.counters[C.SORT_RECORDS]),
                    int(r.counters[C.HASH_PROBES]),
                    human_bytes(r.counters[C.REDUCE_SPILL_BYTES]),
                    human_bytes(r.counters[C.SHUFFLE_BYTES]),
                )
                for name, r in results.items()
            ],
            title="page-frequency counting, 100k clicks",
        )
    )

    top = sorted(reference.items(), key=lambda kv: -kv[1])[:5]
    print("\nmost visited pages:")
    for url, count in top:
        print(f"  {url}  {count} visits")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Trending hashtags over a live tweet stream — no data loading at all.

The paper's destination is "near real-time stream processing that obviates
the need for data loading and returns pipelined answers as data arrives".
This example runs entirely on the streaming layer:

1. tweets are *pushed* one at a time (never written to HDFS);
2. a tumbling-window processor counts hashtags per 30-second window and
   announces each window's trending top-5 the moment the watermark closes
   it;
3. in parallel, an unwindowed stream processor tracks all-time counts with
   an emit hook that fires the instant any hashtag crosses 500 mentions —
   the paper's incremental threshold query, live.

Run:  python examples/stream_trending.py
"""

from repro.core import StreamProcessor, count_threshold_policy
from repro.core.aggregates import COUNT
from repro.core.queries import TopKSelector
from repro.core.streaming import TumblingWindowProcessor
from repro.workloads.twitter import TweetConfig, generate_tweets, hashtag_map

WINDOW = 30.0
THRESHOLD = 500


def main() -> None:
    tweets = generate_tweets(
        TweetConfig(
            num_tweets=40_000,
            num_hashtags=400,
            hashtag_skew=1.3,
            mean_interarrival=0.01,
        )
    )

    # Windowed trending report.
    def on_window(start: float, counts: dict) -> None:
        top = TopKSelector(5)
        top.offer_all(counts.items())
        line = ", ".join(f"{tag} ({n})" for tag, n in top.best())
        print(f"[window {start:7.1f}s .. {start + WINDOW:7.1f}s]  {line}")

    windows = TumblingWindowProcessor(
        hashtag_map,
        COUNT,
        width=WINDOW,
        ts_of=lambda tweet: tweet[0],
        on_window=on_window,
    )

    # All-time counts with a live threshold alert.
    def on_cross(tag: str, count: int) -> None:
        print(f"  ** {tag} just crossed {count} total mentions **")

    alltime = StreamProcessor(
        hashtag_map,
        COUNT,
        num_partitions=4,
        emit_policy=count_threshold_policy(THRESHOLD),
        on_emit=on_cross,
    )

    print(f"streaming tweets; trending per {WINDOW:.0f}s window, alerts at {THRESHOLD}:\n")
    for tweet in tweets:
        windows.push(tweet)
        alltime.push(tweet)
    windows.flush()

    final = alltime.finish()
    top = TopKSelector(10)
    top.offer_all(final.items())
    print(f"\nstream ended after {alltime.records_seen} tweets; all-time top 10:")
    for tag, count in top.best():
        print(f"  {tag}  {count}")
    crossed = len(alltime.early_emitted)
    print(f"\n{crossed} hashtags crossed the {THRESHOLD}-mention alert threshold mid-stream")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Online aggregation and incremental answers — the "one-pass" in the title.

Three progressively stronger forms of early answers over one click stream:

1. **Online estimates with confidence intervals** — after seeing a random
   x% of the data, estimate each page's total visits with a CLT interval
   (the classic online-aggregation interface).
2. **Incremental threshold query** — "return all the groups where the
   count of items exceeds a threshold": the one-pass engine emits each
   group at the exact moment its count crosses, mid-scan.
3. **Hot-key approximate results** — with memory for only a fraction of
   the user states, the frequent-key cache still reports every hot user's
   (lower-bound) count the instant the input ends, before any spill replay.

Run:  python examples/online_aggregation.py
"""

import numpy as np

from repro.core import (
    GroupedOnlineAggregator,
    OnePassConfig,
    OnePassEngine,
    count_threshold_policy,
)
from repro.mapreduce import LocalCluster
from repro.workloads import (
    ClickStreamConfig,
    generate_clicks,
    page_frequency_onepass_job,
    per_user_count_onepass_job,
    reference_page_counts,
    reference_user_counts,
)


def part1_online_estimates(clicks) -> None:
    print("=" * 72)
    print("1. online aggregation: page-visit estimates from a 10% sample")
    print("=" * 72)
    truth = reference_page_counts(clicks)
    rng = np.random.default_rng(7)
    order = rng.permutation(len(clicks))

    agg = GroupedOnlineAggregator(population=len(clicks), confidence=0.95)
    for idx in order[: len(clicks) // 10]:
        agg.observe(clicks[idx][2])

    print(f"seen {agg.n_seen} of {len(clicks)} clicks; top pages so far:\n")
    covered = 0
    for url, est in agg.top_groups(5):
        hit = est.contains(truth[url])
        covered += hit
        print(
            f"  {url}: {est.value:8.0f} ± {est.half_width:6.0f} "
            f"(true {truth[url]}) {'✓' if hit else '✗'}"
        )
    print(f"\n{covered}/5 intervals cover the truth at 95% confidence\n")


def part2_incremental_threshold(clicks) -> None:
    print("=" * 72)
    print("2. incremental threshold query: pages crossing 100 visits")
    print("=" * 72)
    cluster = LocalCluster(num_nodes=3, block_size=256 * 1024)
    cluster.hdfs.write_records("clicks", clicks)

    job = page_frequency_onepass_job(
        "clicks",
        "out",
        config=OnePassConfig(mode="incremental", map_side_combine=False),
    )
    job.emit_policy = count_threshold_policy(100)
    result = OnePassEngine(cluster).run(job)

    early = result.extras["early_emitted"]
    truth = reference_page_counts(clicks)
    expected = {u for u, n in truth.items() if n >= 100}
    print(
        f"{len(early)} pages emitted the moment their count reached 100 "
        f"(final answer has {len(expected)}; match={set(k for k, _ in early) == expected})"
    )
    for url, count in early[:5]:
        print(f"  {url} emitted at count {count} (finished at {truth[url]})")
    print()


def part3_hot_key_answers(clicks) -> None:
    print("=" * 72)
    print("3. hot-key cache: approximate per-user counts under tight memory")
    print("=" * 72)
    cluster = LocalCluster(num_nodes=3, block_size=256 * 1024)
    cluster.hdfs.write_records("clicks", cluster_clicks := clicks)

    cfg = OnePassConfig(mode="hotset", hotset_capacity=64, map_side_combine=False)
    result = OnePassEngine(cluster).run(
        per_user_count_onepass_job("clicks", "out", config=cfg)
    )

    truth = reference_user_counts(cluster_clicks)
    approx = sorted(
        result.extras["approximate_results"], key=lambda a: -a.count_estimate
    )
    print(
        f"memory held {cfg.hotset_capacity} user states per reducer out of "
        f"{len(truth)} users; hottest users, reported before any disk replay:\n"
    )
    for a in approx[:5]:
        print(
            f"  user {a.key}: >= {a.result} clicks "
            f"(sketch: <= {a.count_estimate}, err <= {a.count_error}; "
            f"true {truth[a.key]})"
        )
    exact = dict(cluster.hdfs.read_records("out"))
    print(f"\nexact results after cold-spill replay: {exact == truth}")


def main() -> None:
    clicks = list(
        generate_clicks(
            ClickStreamConfig(
                num_clicks=80_000, num_users=3_000, num_urls=400, user_skew=1.4
            )
        )
    )
    part1_online_estimates(clicks)
    part2_incremental_threshold(clicks)
    part3_hot_key_answers(clicks)


if __name__ == "__main__":
    main()

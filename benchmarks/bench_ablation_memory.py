"""Ablation A2 — reduce-side memory budget vs spill behaviour.

Sweeps the incremental hash's memory budget across the fits/doesn't-fit
boundary and compares against the hot-set variant at equivalent capacity:
the design claim is graceful degradation — spill grows as memory shrinks,
and frequency-aware retention spills less than frequency-blind overflow at
the same budget on skewed data.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table, human_bytes
from repro.core.aggregates import SUM
from repro.core.hotset import HotSetIncrementalHash
from repro.core.incremental import IncrementalHash
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.workloads.zipf import ZipfSampler

N_UPDATES = 120_000
N_KEYS = 10_000
SKEW = 1.3
BUDGETS = (16 * 1024, 64 * 1024, 256 * 1024, 4 * 1024 * 1024)


def _stream():
    sampler = ZipfSampler(N_KEYS, SKEW, seed=77)
    return [int(k) for k in sampler.draw(N_UPDATES)]


def _run_incremental(stream, budget):
    disk = LocalDisk()
    counters = Counters()
    ih = IncrementalHash(
        SUM, memory_bytes=budget, disk=disk, counters=counters
    )
    for key in stream:
        ih.update(key, 1)
    results = dict(ih.results())
    return results, counters


def _run_hotset(stream, capacity):
    disk = LocalDisk()
    counters = Counters()
    hs = HotSetIncrementalHash(
        SUM, disk, "hot", capacity=capacity, counters=counters
    )
    for key in stream:
        hs.update(key, 1)
    results = dict(hs.results())
    return results, counters


def test_memory_budget_sweep(benchmark, reports):
    stream = _stream()
    expected = {}
    for key in stream:
        expected[key] = expected.get(key, 0) + 1

    def experiment():
        return {budget: _run_incremental(stream, budget) for budget in BUDGETS}

    results = run_once(benchmark, experiment)
    spills = {b: c[C.REDUCE_SPILL_BYTES] for b, (_r, c) in results.items()}
    correct = all(r == expected for _b, (r, _c) in results.items())

    report = ExperimentReport(
        "A2",
        "Ablation: incremental-hash memory budget",
        setup=f"{N_UPDATES} updates, {N_KEYS} keys, Zipf {SKEW}, budgets "
        f"{[human_bytes(b) for b in BUDGETS]}",
    )
    report.observe("exact at every budget", "overflow preserves answers", str(correct), correct)
    report.observe(
        "ample memory -> zero spill",
        "fast in-memory processing when states fit",
        human_bytes(spills[BUDGETS[-1]]),
        spills[BUDGETS[-1]] == 0,
    )
    report.observe(
        "spill grows monotonically as memory shrinks",
        "graceful degradation",
        {human_bytes(b): human_bytes(s) for b, s in spills.items()},
        spills[BUDGETS[0]] >= spills[BUDGETS[1]] >= spills[BUDGETS[2]]
        >= spills[BUDGETS[3]],
    )
    reports(report)
    assert report.all_hold


def _run_random_resident(stream, capacity, seed=5):
    """The paper's strawman: ``capacity`` *random* keys resident in memory.

    Cold pairs go to disk exactly as the hot-set variant spills them, so
    the byte comparison is apples to apples.
    """
    import numpy as np

    from repro.io.runio import RunWriter

    rng = np.random.default_rng(seed)
    resident = set(int(k) for k in rng.choice(N_KEYS, size=capacity, replace=False))
    disk = LocalDisk()
    writer = RunWriter(disk, "cold")
    states: dict[int, int] = {}
    try:
        for key in stream:
            if key in resident:
                states[key] = states.get(key, 0) + 1
            else:
                writer.write((key, 1))
    finally:
        writer.close()
    return writer.bytes_written


def test_hotset_beats_random_resident_set(benchmark, reports):
    """'Maintaining hot keys instead of random keys in memory results in
    less I/Os' — the paper's direct justification for the frequent
    algorithm."""
    stream = _stream()
    capacity = 800

    def experiment():
        random_spill = _run_random_resident(stream, capacity)
        _hot_results, hot_counters = _run_hotset(stream, capacity)
        return random_spill, hot_counters

    random_spill, hot_counters = run_once(benchmark, experiment)
    hot_spill = hot_counters[C.REDUCE_SPILL_BYTES]

    report = ExperimentReport(
        "A2b",
        "Ablation: hot-key retention vs random-key retention",
        setup=f"same stream, {capacity} resident states each "
        f"({capacity / N_KEYS:.0%} of keys)",
    )
    report.observe(
        "hot keys in memory spill far less than random keys",
        "maintaining hot keys results in less I/O",
        f"random {human_bytes(random_spill)} vs hot-set {human_bytes(hot_spill)}",
        hot_spill < 0.6 * random_spill,
    )
    hits = hot_counters[C.HOT_HITS]
    misses = hot_counters[C.HOT_MISSES]
    report.observe(
        "hit rate of the hot set",
        "hot keys absorb most updates",
        f"{hits / (hits + misses):.1%}",
        hits / (hits + misses) > 0.6,
    )
    report.note(
        format_table(
            ("resident-set policy", "spill bytes"),
            [
                ("random keys", human_bytes(random_spill)),
                ("hot keys (Space-Saving)", human_bytes(hot_spill)),
            ],
        )
    )
    report.note(
        "a first-come resident set (plain incremental hash) also does well "
        "under skew because hot keys tend to arrive early; the frequent "
        "algorithm's advantage is robustness — it converges to the hot set "
        "regardless of arrival order"
    )
    reports(report)
    assert report.all_hold

"""Benchmark-harness plumbing.

Every benchmark builds an :class:`repro.analysis.report.ExperimentReport`
(paper claim vs measured value per metric) and registers it with the
``reports`` fixture; the terminal summary prints them all, so the file
produced by ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
contains the full paper-vs-measured record alongside pytest-benchmark's
timing table.

Benchmarked bodies run exactly once (``benchmark.pedantic`` with one
round): the experiments are deterministic simulations or full engine runs,
not microbenchmarks, and repeating a 30-second cluster simulation to
reduce timer noise would add nothing.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ExperimentReport

_REPORTS: list[ExperimentReport] = []


@pytest.fixture
def reports():
    """Register experiment reports for the terminal summary."""

    def register(report: ExperimentReport) -> ExperimentReport:
        _REPORTS.append(report)
        return report

    return register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("paper-vs-measured experiment reports")
    for report in _REPORTS:
        tr.write_line("")
        for line in report.render().splitlines():
            tr.write_line(line)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

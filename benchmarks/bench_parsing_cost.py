"""§III.B.1 — the cost of parsing (X1).

The paper prepared the same data as line-oriented text and as Hadoop's
binary SequenceFile and "observed almost no difference in either running
time or CPU utilization", concluding input parsing is a negligible cost.
We reproduce the comparison with our text and binary codecs.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import human_time
from repro.io.serialization import BinaryCodec
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.clickstream import ClickStreamConfig, click_text_codec, generate_clicks
from repro.workloads.sessionization import sessionization_job


@pytest.fixture(scope="module")
def clicks():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=120_000, num_users=4_000, num_urls=800)
        )
    )


def _run_with_codec(clicks, codec):
    cluster = LocalCluster(num_nodes=3, block_size=256 * 1024)
    cluster.hdfs.write_records("in", clicks, codec=codec)
    t0 = time.process_time()
    result = HadoopEngine(cluster).run(sessionization_job("in", "out", gap=5.0))
    cpu = time.process_time() - t0
    return result, cpu


def test_parsing_cost(benchmark, reports, clicks):
    def experiment():
        text_result, text_cpu = _run_with_codec(clicks, click_text_codec())
        binary_result, binary_cpu = _run_with_codec(clicks, BinaryCodec())
        return text_result, text_cpu, binary_result, binary_cpu

    text_result, text_cpu, binary_result, binary_cpu = run_once(benchmark, experiment)

    report = ExperimentReport(
        "X1",
        "§III.B.1 cost of parsing: text vs binary input",
        setup="sessionization, 120k clicks, same data in both formats",
    )
    gap = abs(text_result.wall_time - binary_result.wall_time) / max(
        text_result.wall_time, binary_result.wall_time
    )
    report.observe(
        "running time difference",
        "almost none",
        f"text {human_time(text_result.wall_time)} vs binary "
        f"{human_time(binary_result.wall_time)} ({gap:.0%} apart)",
        gap < 0.30,
    )
    parse_share = text_result.counters[C.T_PARSE] / text_cpu if text_cpu else 0
    report.observe(
        "parsing share of total CPU (text input)",
        "negligible overall cost",
        f"{parse_share:.1%}",
        parse_share < 0.35,
    )
    report.observe(
        "binary input skips parsing",
        "no field conversion",
        f"parse time {binary_result.counters[C.T_PARSE]:.3f}s vs "
        f"text {text_result.counters[C.T_PARSE]:.3f}s",
        binary_result.counters[C.T_PARSE] < text_result.counters[C.T_PARSE],
    )
    report.observe(
        "identical answers",
        "format does not affect results",
        "checked",
        text_result.output_records == binary_result.output_records,
    )
    report.note(
        "conclusion matches the paper: sorting and merging, not input "
        "parsing, are where the sort-merge engine spends its time"
    )
    reports(report)
    assert report.all_hold

"""Fault-tolerance overhead and recovery cost across the three engines.

The paper's §I weighs one-pass analytics against fault tolerance: Hadoop
buys recovery with its synchronous map-output write, while a push
architecture has nothing at the mappers to re-fetch and must pay for
durability at delivery time (partition logs) — plus, optionally,
checkpoints of the incremental-hash state so recovery replays only a log
suffix instead of the whole input.

Two measurements here:

* **checkpointed vs full-replay recovery** for the one-pass engine under
  an identical reduce-failure plan: the checkpointed run must replay
  strictly fewer records, at the cost of real checkpoint I/O;
* **node-crash recovery** under an identical crash plan for all three
  engines: recovery counters (tasks re-run, bytes re-shuffled/replayed,
  recovery time) versus the sort-merge baseline's.

Each test prints a machine-readable JSON blob (``FAULT_OVERHEAD_JSON`` /
``NODE_CRASH_JSON`` markers) alongside the usual paper-vs-measured report.
"""

from __future__ import annotations

import json

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport, recovery_summary
from repro.core.aggregates import SUM
from repro.core.engine import OnePassConfig, OnePassEngine, OnePassJob
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.mapreduce.counters import C
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hop import HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

_CLICKS = list(
    generate_clicks(
        ClickStreamConfig(num_clicks=6000, num_users=400, num_urls=150, seed=11)
    )
)


def _cluster() -> LocalCluster:
    cluster = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
    cluster.hdfs.write_records("in/clicks", _CLICKS)
    return cluster


def _onepass_job(output: str) -> OnePassJob:
    return OnePassJob(
        name="per-user-count",
        map_fn=lambda r: [(r[1], 1)],
        aggregator=SUM,
        input_path="in/clicks",
        output_path=output,
        config=OnePassConfig(num_reducers=3, mode="incremental"),
    )


def _mr_job(output: str) -> MapReduceJob:
    return MapReduceJob(
        name="per-user-count",
        map_fn=lambda r: [(r[1], 1)],
        reduce_fn=lambda k, vs: [(k, sum(vs))],
        combine_fn=lambda k, vs: [(k, sum(vs))],
        input_path="in/clicks",
        output_path=output,
        config=JobConfig(num_reducers=3),
    )


def _reduce_failure_plan() -> FaultPlan:
    # One injected failure per reduce partition: every reduce task dies
    # once and must be rebuilt from its durable state.
    return FaultPlan(reduce_failures={0: 1, 1: 1, 2: 1})


def test_checkpointed_recovery_replays_less(benchmark, reports) -> None:
    """Checkpointed one-pass recovery replays strictly less than full replay."""
    clean_cluster = _cluster()
    clean = OnePassEngine(clean_cluster).run(_onepass_job("out/clean"))
    expected = list(clean_cluster.hdfs.read_records("out/clean"))

    replay_cluster = _cluster()
    full_replay = OnePassEngine(
        replay_cluster, fault_plan=_reduce_failure_plan()
    ).run(_onepass_job("out/full-replay"))
    assert list(replay_cluster.hdfs.read_records("out/full-replay")) == expected

    ckpt_cluster = _cluster()
    checkpointed = run_once(
        benchmark,
        lambda: OnePassEngine(
            ckpt_cluster,
            fault_plan=_reduce_failure_plan(),
            checkpoint_interval=3,
        ).run(_onepass_job("out/checkpointed")),
    )
    assert list(ckpt_cluster.hdfs.read_records("out/checkpointed")) == expected

    comparison = {
        "workload": "per-user count, 6000 clicks, 3 reducers, 1 failure each",
        "clean": recovery_summary(clean.counters),
        "full_replay": recovery_summary(full_replay.counters),
        "checkpointed": recovery_summary(checkpointed.counters),
    }
    print("FAULT_OVERHEAD_JSON " + json.dumps(comparison, sort_keys=True))

    replayed_full = full_replay.counters[C.REPLAYED_RECORDS]
    replayed_ckpt = checkpointed.counters[C.REPLAYED_RECORDS]

    report = ExperimentReport(
        "FT1",
        "checkpointed vs full-replay one-pass recovery",
        setup="one-pass incremental, every reduce task killed once",
    )
    report.observe(
        "results identical to fault-free run",
        "recovery is exact",
        "byte-identical output",
        True,
    )
    report.observe(
        "checkpoint replays a strict log suffix",
        "replay shrinks with checkpoints",
        f"{replayed_ckpt:.0f} vs {replayed_full:.0f} records",
        replayed_ckpt < replayed_full,
    )
    report.observe(
        "durability is not free",
        "log + checkpoint I/O is real",
        (
            f"log {full_replay.counters[C.LOG_BYTES]:.0f} B, "
            f"checkpoints {checkpointed.counters[C.CHECKPOINT_BYTES]:.0f} B"
        ),
        full_replay.counters[C.LOG_BYTES] > 0
        and checkpointed.counters[C.CHECKPOINT_BYTES] > 0,
    )
    reports(report)

    assert replayed_full > 0
    assert replayed_ckpt < replayed_full
    assert checkpointed.counters[C.CHECKPOINT_RESTORES] == 3
    assert clean.counters[C.LOG_BYTES] == 0  # no fault plan, no logging


def test_node_crash_recovery_overhead(benchmark, reports) -> None:
    """All three engines survive the same node crash with exact results."""

    def crash_plan() -> FaultPlan:
        return FaultPlan(node_crashes={"node01": 3})

    results = {}
    for name, make_engine, make_job in (
        (
            "hadoop",
            lambda c: HadoopEngine(c, fault_plan=crash_plan()),
            _mr_job,
        ),
        (
            "hop",
            lambda c: HOPEngine(c, fault_plan=crash_plan()),
            _mr_job,
        ),
        (
            "onepass",
            lambda c: OnePassEngine(
                c, fault_plan=crash_plan(), checkpoint_interval=3
            ),
            _onepass_job,
        ),
    ):
        clean_cluster = _cluster()
        if name == "hadoop":
            clean = HadoopEngine(clean_cluster).run(make_job("out/clean"))
        elif name == "hop":
            clean = HOPEngine(clean_cluster).run(make_job("out/clean"))
        else:
            clean = OnePassEngine(clean_cluster).run(make_job("out/clean"))
        expected = list(clean_cluster.hdfs.read_records("out/clean"))

        crash_cluster = _cluster()
        runner = lambda: make_engine(crash_cluster).run(make_job("out/crash"))
        crashed = run_once(benchmark, runner) if name == "hadoop" else runner()
        assert list(crash_cluster.hdfs.read_records("out/crash")) == expected, name
        results[name] = {
            "wall_time": crashed.wall_time,
            "clean_wall_time": clean.wall_time,
            **recovery_summary(crashed.counters),
        }

    print("NODE_CRASH_JSON " + json.dumps(results, sort_keys=True))

    report = ExperimentReport(
        "FT2",
        "node-crash recovery across engines",
        setup="node01 crashes after 3 map completions, replication=2",
    )
    for name, summary in results.items():
        report.observe(
            f"{name}: exact result after crash",
            "recovery is exact",
            (
                f"rerun={summary['tasks_rerun']:.0f}, "
                f"reshuffled={summary['bytes_reshuffled']:.0f} B"
            ),
            summary["node_crashes"] == 1,
        )
    report.note(
        "hadoop re-executes the lost completed maps from lineage; the push "
        "engines replay replicated partition logs instead (no map re-runs)"
    )
    reports(report)

    assert results["hadoop"]["tasks_rerun"] > 0
    assert results["hadoop"]["bytes_reshuffled"] > 0
    assert results["hop"]["replayed_records"] > 0
    # The one-pass reducer may have checkpointed right at the log tail, in
    # which case recovery is a pure state restore with an empty log suffix.
    assert results["onepass"]["checkpoint_restores"] > 0
    assert results["onepass"]["log_bytes"] > 0
    for summary in results.values():
        assert summary["blocks_rereplicated"] > 0
        assert summary["recovery_time"] > 0

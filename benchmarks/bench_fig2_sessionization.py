"""Fig. 2 — the sessionization workload at paper scale (simulator).

Six panels:

(a) task timeline         — map/shuffle/merge/reduce running-task counts;
(b) CPU utilisation       — busy in map phase, valley during the merge;
(c) CPU iowait            — spikes in the merge window;
(d) bytes read            — large read burst in the same window;
(e) CPU utilisation, HDD+SSD architecture — faster, valley persists;
(f) CPU utilisation, separate storage     — faster, valley persists.

The shape assertions are the paper's observations turned into predicates;
sparklines of each series are attached to the report so ``bench_output``
shows the curves.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.series import find_valley, peak_time, sparkline, window_mean
from repro.analysis.tables import human_time
from repro.simulator import (
    CLUSTER_2011,
    GB,
    SESSIONIZATION,
    ClusterSpec,
    HadoopPipeline,
)

BUCKET = 30.0


@pytest.fixture(scope="module")
def baseline_run():
    return HadoopPipeline(CLUSTER_2011, SESSIONIZATION, metric_bucket=BUCKET).run()


def merge_window(result):
    """The post-map, pre-reduce window where only merging is active."""
    map_end = result.phase_window("map")[1]
    reduce_start = result.phase_window("reduce")[0]
    return map_end, max(reduce_start, map_end + 2 * BUCKET)


def test_fig2a_task_timeline(benchmark, reports, baseline_run):
    result = run_once(benchmark, lambda: baseline_run)
    times, series = result.task_log.counts_series(BUCKET)

    report = ExperimentReport(
        "F2a",
        "Fig 2(a): task timeline, sessionization",
        setup="simulator, 10 nodes, 256 GB, sort-merge",
    )
    map_end = result.phase_window("map")[1]
    reduce_start = result.phase_window("reduce")[0]
    merge_spans = result.task_log.phase_spans("merge")
    report.observe(
        "time roughly split between map and reduce phases",
        "about even",
        f"map ends {human_time(map_end)}, job ends {human_time(result.makespan)}",
        0.35 <= map_end / result.makespan <= 0.75,
    )
    report.observe(
        "substantial merge activity between the phases",
        "extended merge window",
        f"{len(merge_spans)} merge operations",
        len(merge_spans) > 0
        and any(s.end > map_end for s in merge_spans),
    )
    report.observe(
        "background merges before all maps complete",
        "periodic merges during map phase",
        f"earliest merge at {human_time(min(s.start for s in merge_spans))}",
        min(s.start for s in merge_spans) < map_end,
    )
    report.observe(
        "reduce blocked until merge completes",
        "no reduce output before final merge",
        f"first reduce at {human_time(reduce_start)}",
        reduce_start >= map_end,
    )
    for phase in ("map", "merge", "reduce"):
        report.note(f"{phase:7s} {sparkline(series[phase])}")
    reports(report)
    assert report.all_hold


def test_fig2b_cpu_utilization(benchmark, reports, baseline_run):
    result = run_once(benchmark, lambda: baseline_run)
    s = result.series
    map_end, reduce_start = merge_window(result)

    report = ExperimentReport(
        "F2b",
        "Fig 2(b): CPU utilisation vs time",
        setup="cluster-average busy-core fraction, 30 s buckets",
    )
    map_cpu = window_mean(s.times, s.cpu_utilization, 0, map_end * 0.9)
    valley_t, valley_v = find_valley(s.times, s.cpu_utilization)
    report.observe(
        "CPUs busy in the map phase",
        "high utilisation",
        f"{map_cpu:.0%} average",
        map_cpu > 0.4,
    )
    report.observe(
        "extended low-CPU period mid-job",
        "utilisation collapses during merge",
        f"valley {valley_v:.0%} at {human_time(valley_t)}",
        valley_v < 0.25 * map_cpu,
    )
    report.observe(
        "valley sits between map end and reduce",
        "merge window",
        f"valley at {human_time(valley_t)}, window "
        f"[{human_time(map_end * 0.8)}, {human_time(reduce_start + 10 * BUCKET)}]",
        map_end * 0.8 <= valley_t <= reduce_start + 10 * BUCKET,
    )
    report.note("cpu " + sparkline(s.cpu_utilization))
    reports(report)
    assert report.all_hold


def test_fig2c_cpu_iowait(benchmark, reports, baseline_run):
    result = run_once(benchmark, lambda: baseline_run)
    s = result.series
    map_end, reduce_start = merge_window(result)

    report = ExperimentReport(
        "F2c",
        "Fig 2(c): CPU iowait vs time",
        setup="idle-while-disk-busy fraction",
    )
    map_iowait = window_mean(s.times, s.cpu_iowait, 0, map_end * 0.9)
    merge_iowait = window_mean(
        s.times, s.cpu_iowait, map_end, reduce_start + 2 * BUCKET
    )
    report.observe(
        "iowait spikes in the merge window",
        "CPUs idle on outstanding disk I/O",
        f"map-phase {map_iowait:.0%} vs merge-window {merge_iowait:.0%}",
        merge_iowait > map_iowait + 0.25 and merge_iowait > 0.8,
    )
    report.note("iowait " + sparkline(s.cpu_iowait))
    report.note(
        "map-phase iowait runs higher than the paper's because the shared "
        "spindle is already near saturation during the map phase in this "
        "calibration; the merge-window spike on top of it is the shape "
        "Fig 2(c) shows"
    )
    reports(report)
    assert report.all_hold


def test_fig2d_bytes_read(benchmark, reports, baseline_run):
    result = run_once(benchmark, lambda: baseline_run)
    s = result.series
    map_end, reduce_start = merge_window(result)

    report = ExperimentReport(
        "F2d",
        "Fig 2(d): bytes read from disk vs time",
        setup="cluster-total disk read rate",
    )
    map_rate = window_mean(s.times, s.disk_read_bytes_per_s, 0, map_end * 0.9)
    merge_rate = window_mean(
        s.times, s.disk_read_bytes_per_s, map_end, reduce_start + 2 * BUCKET
    )
    report.observe(
        "large read burst in the merge window",
        "merge re-reads spilled data",
        f"{merge_rate / (1024 ** 2):.0f} MB/s vs map-phase "
        f"{map_rate / (1024 ** 2):.0f} MB/s",
        merge_rate > 1.5 * map_rate,
    )
    total_read = float(np.trapezoid(s.disk_read_bytes_per_s, s.times))
    report.observe(
        "reduce-side spill comparable to input size",
        "370 GB spill for 256 GB input",
        f"{(result.totals.reduce_spill_bytes + result.totals.merge_write_bytes) / GB:.0f} GB "
        "written reduce-side",
        result.totals.reduce_spill_bytes + result.totals.merge_write_bytes
        > SESSIONIZATION.input_bytes,
    )
    report.note("reads " + sparkline(s.disk_read_bytes_per_s))
    report.note(f"total bytes read across the job: {total_read / GB:.0f} GB")
    reports(report)
    assert report.all_hold


def _architecture_run(spec: ClusterSpec, profile=SESSIONIZATION):
    return HadoopPipeline(spec, profile, metric_bucket=BUCKET).run()


def test_fig2e_hdd_ssd_architecture(benchmark, reports, baseline_run):
    ssd_run = run_once(
        benchmark, _architecture_run, ClusterSpec(with_ssd=True)
    )
    report = ExperimentReport(
        "F2e",
        "Fig 2(e): CPU utilisation with HDD+SSD",
        setup="intermediate data on a per-node SSD",
    )
    saving = 1 - ssd_run.makespan / baseline_run.makespan
    report.observe(
        "total running time drops",
        "76 -> 43 min (-43%)",
        f"{baseline_run.completion_minutes:.0f} -> "
        f"{ssd_run.completion_minutes:.0f} min ({saving:.0%} saved)",
        0.25 <= saving <= 0.60,
    )
    s = ssd_run.series
    map_end = ssd_run.phase_window("map")[1]
    map_cpu = window_mean(s.times, s.cpu_utilization, 0, map_end * 0.9)
    _t, valley_v = find_valley(s.times, s.cpu_utilization)
    report.observe(
        "low-CPU period persists",
        "blocking merge remains",
        f"valley {valley_v:.0%} vs map-phase {map_cpu:.0%}",
        valley_v < 0.5 * map_cpu,
    )
    report.note("cpu(ssd) " + sparkline(s.cpu_utilization))
    reports(report)
    assert report.all_hold


def test_fig2f_separate_storage(benchmark, reports, baseline_run):
    # The paper's comparison: 256 GB on the 10-node colocated cluster vs
    # 128 GB on 5 storage + 5 compute nodes ("we reduce the input data
    # size accordingly to keep the running time comparable") — separation
    # came out faster, 76 -> 55 min.
    half = SESSIONIZATION.scaled(128 * GB)
    sep_run = run_once(
        benchmark, _architecture_run, ClusterSpec(storage_nodes=5), half
    )
    report = ExperimentReport(
        "F2f",
        "Fig 2(f): CPU utilisation, separate storage cluster",
        setup="5 storage + 5 compute nodes, 128 GB input vs 256 GB colocated",
    )
    report.observe(
        "separation reduces running time",
        "76 -> 55 min",
        f"{baseline_run.completion_minutes:.0f} -> "
        f"{sep_run.completion_minutes:.0f} min",
        sep_run.makespan < baseline_run.makespan,
    )
    s = sep_run.series
    map_end = sep_run.phase_window("map")[1]
    map_cpu = window_mean(s.times, s.cpu_utilization, 0, map_end * 0.9)
    _t, valley_v = find_valley(s.times, s.cpu_utilization)
    report.observe(
        "blocking and intensive I/O remain",
        "valley persists",
        f"valley {valley_v:.0%} vs map-phase {map_cpu:.0%}",
        valley_v < 0.5 * map_cpu,
    )
    report.observe(
        "all input crosses the network",
        "no data locality",
        f"{sep_run.totals.remote_input_bytes / GB:.0f} GB remote reads",
        sep_run.totals.remote_input_bytes >= half.input_bytes * 0.99,
    )
    report.note("cpu(sep) " + sparkline(s.cpu_utilization))
    reports(report)
    assert report.all_hold

"""Fig. 4 — MapReduce Online (HOP) on the sessionization workload.

The paper's observations, reproduced at paper scale in the simulator:

* CPU utilisation shows "a similar pattern of low values in the middle of
  the job" — pipelining does not remove the merge valley;
* iowait spikes in the same window;
* "the total running time is actually longer using MapReduce Online";
* map-phase CPU utilisation is *lower* than stock Hadoop's (work moved to
  reducers and eager transmission stretches the map phase).

Cross-checked at laptop scale on the executable HOP engine: snapshots cost
real re-merge I/O and the final answer matches the baseline.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.series import find_valley, sparkline, window_mean
from repro.analysis.tables import human_time
from repro.mapreduce.counters import C
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.simulator import (
    CLUSTER_2011,
    SESSIONIZATION,
    HadoopPipeline,
    HOPPipeline,
    HOPSimConfig,
)
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.sessionization import sessionization_job

BUCKET = 30.0


def test_fig4_cpu_and_iowait(benchmark, reports):
    def experiment():
        stock = HadoopPipeline(CLUSTER_2011, SESSIONIZATION, metric_bucket=BUCKET).run()
        hop = HOPPipeline(
            CLUSTER_2011,
            SESSIONIZATION,
            hop=HOPSimConfig(granularity_bytes=4 * 1024 * 1024),
            metric_bucket=BUCKET,
        ).run()
        return stock, hop

    stock, hop = run_once(benchmark, experiment)
    s = hop.series
    map_end = hop.phase_window("map")[1]

    report = ExperimentReport(
        "F4",
        "Fig 4: MapReduce Online, sessionization (simulator)",
        setup="10 nodes, 256 GB, pipelined push + snapshots at 25/50/75%",
    )
    _t, valley_v = find_valley(s.times, s.cpu_utilization)
    map_cpu_hop = window_mean(s.times, s.cpu_utilization, 0, map_end * 0.9)
    stock_map_end = stock.phase_window("map")[1]
    map_cpu_stock = window_mean(
        stock.series.times, stock.series.cpu_utilization, 0, stock_map_end * 0.9
    )
    report.observe(
        "low CPU values in the middle of the job",
        "valley persists under pipelining",
        f"valley {valley_v:.0%}",
        valley_v < 0.3 * map_cpu_hop,
    )
    iowait_map = window_mean(s.times, s.cpu_iowait, 0, map_end * 0.9)
    iowait_peak = float(s.cpu_iowait.max())
    report.observe(
        "iowait spike mid-job",
        "outstanding disk I/O",
        f"peak {iowait_peak:.0%} vs map-phase {iowait_map:.0%}",
        iowait_peak > iowait_map + 0.2,
    )
    report.observe(
        "total running time longer than stock Hadoop",
        "HOP slower",
        f"{stock.completion_minutes:.0f} -> {hop.completion_minutes:.0f} min",
        hop.makespan > stock.makespan,
    )
    report.observe(
        "HOP spends a greater amount of time in the map phase",
        "map phase stretched (paper: same cycles, longer phase)",
        f"map ends {human_time(stock_map_end)} (stock) vs "
        f"{human_time(map_end)} (HOP)",
        map_end > 1.1 * stock_map_end,
    )
    report.note(
        "the paper reports lower map-phase CPU utilisation for HOP because "
        "its profiler attributes only mapper work; our cluster-average "
        f"series ({map_cpu_stock:.0%} stock vs {map_cpu_hop:.0%} HOP) also "
        "counts the sorting HOP moves onto reducers and the snapshot "
        "merges, which run concurrently with the stretched map phase"
    )
    report.observe(
        "snapshots re-read spilled data",
        "snapshot merges cost I/O",
        f"{hop.totals.snapshot_read_bytes / (1024 ** 3):.0f} GB snapshot reads",
        hop.totals.snapshot_read_bytes > 0,
    )
    report.note("hop cpu    " + sparkline(s.cpu_utilization))
    report.note("hop iowait " + sparkline(s.cpu_iowait))
    report.note("stock cpu  " + sparkline(stock.series.cpu_utilization))
    reports(report)
    assert report.all_hold


@pytest.fixture(scope="module")
def clicks():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=40_000, num_users=1_500, num_urls=500)
        )
    )


def test_fig4_real_engine_crosscheck(benchmark, reports, clicks):
    """Laptop-scale HOP vs Hadoop on the real engines: snapshot I/O exists,
    sort work is redistributed, answers agree."""

    def experiment():
        cluster = LocalCluster(num_nodes=3, block_size=96 * 1024)
        cluster.hdfs.write_records("in", clicks)
        cfg = dict(reduce_buffer_bytes=128 * 1024)
        stock = HadoopEngine(cluster).run(
            sessionization_job("in", "o1", gap=5.0).with_config(**cfg)
        )
        hop = HOPEngine(
            cluster, hop_config=HOPConfig(snapshot_fractions=(0.25, 0.5, 0.75))
        ).run(sessionization_job("in", "o2", gap=5.0).with_config(**cfg))
        same = sorted(cluster.hdfs.read_records("o1")) == sorted(
            cluster.hdfs.read_records("o2")
        )
        return stock, hop, same

    stock, hop, same = run_once(benchmark, experiment)
    report = ExperimentReport(
        "F4b",
        "MapReduce Online cross-check (real engine)",
        setup="3 nodes, 40k clicks, snapshots at 25/50/75%",
    )
    report.observe("final output identical to stock", "same answers", str(same), same)
    report.observe(
        "snapshots produced",
        "3 per reducer",
        f"{int(hop.counters[C.SNAPSHOTS])} snapshot merges",
        hop.counters[C.SNAPSHOTS] == 3 * 2,
    )
    report.observe(
        "snapshot re-merge I/O on top of normal merge",
        "extra reads",
        f"hop merge reads {int(hop.counters[C.MERGE_READ_BYTES])} B vs "
        f"stock {int(stock.counters[C.MERGE_READ_BYTES])} B",
        hop.counters[C.MERGE_READ_BYTES] > stock.counters[C.MERGE_READ_BYTES],
    )
    report.observe(
        "pipelining does not reduce total sort work",
        "same records sorted",
        f"hop {int(hop.counters[C.SORT_RECORDS])} vs "
        f"stock {int(stock.counters[C.SORT_RECORDS])}",
        hop.counters[C.SORT_RECORDS] >= stock.counters[C.SORT_RECORDS],
    )
    reports(report)
    assert report.all_hold

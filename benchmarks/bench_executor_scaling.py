"""Executor scaling: serial vs threaded vs multiprocess map execution.

Two claims, on the paper's sessionization workload over the sort-merge
baseline:

* **correctness always** — every executor must reproduce the serial run
  byte for byte (output records, HDFS bytes, counters sans wall-clock
  timers), on any machine;
* **scaling where possible** — with >= 4 cores, a 4-worker fork pool must
  run the map wave (the part the executor parallelises) >= 2x faster than
  serial.  End-to-end speedup is reported too but bounded by Amdahl's law:
  shuffle ingestion and the HDFS commit replay on the coordinator so that
  fault decisions and disk accounting stay deterministic.  On smaller
  machines the speedups are reported but not asserted (a 1-core CI box
  cannot exhibit parallelism).

Runnable standalone (``python benchmarks/bench_executor_scaling.py``) or
under pytest with the benchmark harness.
"""

from __future__ import annotations

import os
import time

MIN_CORES_FOR_SPEEDUP = 4
EXPECTED_SPEEDUP = 2.0
NUM_CLICKS = 250_000


def _workload():
    from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

    return list(
        generate_clicks(
            ClickStreamConfig(
                num_clicks=NUM_CLICKS, num_users=2_000, num_urls=500, seed=11
            )
        )
    )


def _cluster(records):
    from repro.mapreduce.runtime import LocalCluster

    cluster = LocalCluster(num_nodes=4, block_size=64 * 1024)
    cluster.hdfs.write_records("in", records)
    return cluster


def _run_end_to_end(records, executor):
    from repro.mapreduce.runtime import HadoopEngine
    from repro.workloads.sessionization import sessionization_job

    cluster = _cluster(records)
    engine = HadoopEngine(cluster, executor=executor)
    t0 = time.perf_counter()
    result = engine.run(sessionization_job("in", "out", gap=5.0))
    elapsed = time.perf_counter() - t0
    counters = {
        k: v
        for k, v in result.counters.as_dict().items()
        if not k.startswith("time.")
    }
    observed = (
        cluster.hdfs.file_bytes("out"),
        list(cluster.hdfs.read_records("out")),
        counters,
    )
    return elapsed, observed


def _time_map_wave(records, executor_names):
    """Time one full map wave (prebuilt specs) under each executor.

    This isolates the work the executor actually distributes — the map
    kernels — from the coordinator-side shuffle/commit replay, so the
    measured ratio is the executor's scaling, not Amdahl's residue.
    """
    from repro.exec import resolve_executor
    from repro.exec.kernels import HadoopMapSpec
    from repro.mapreduce.runtime import HadoopEngine
    from repro.workloads.sessionization import sessionization_job

    cluster = _cluster(records)
    job = sessionization_job("in", "out", gap=5.0)
    codec = cluster.hdfs.codec(cluster.hdfs.namenode.file_info("in").codec_name)
    engine = HadoopEngine(cluster)
    specs = []
    for task_id, split in enumerate(cluster.hdfs.input_splits("in")):
        node = split.preferred_nodes[0]
        data, _ = engine._read_block(split, node)
        disk = cluster.nodes[node].intermediate_disk
        specs.append(HadoopMapSpec(task_id, node, data, disk.profile, disk.name))
    context = {"job": job, "codec": codec}

    times = {}
    for name in executor_names:
        executor = resolve_executor(None if name == "serial" else name)
        t0 = time.perf_counter()
        with executor.session(context) as session:
            done = 0
            while done < len(specs):
                batch = specs[done : done + session.max_batch]
                done += len(session.run_batch("hadoop_map", batch))
        times[name] = time.perf_counter() - t0
    return times


def run_scaling(records=None):
    """Byte-identity across executors end to end, plus wave/engine timings."""
    records = records if records is not None else _workload()
    end_to_end: dict[str, float] = {}
    serial_time, reference = _run_end_to_end(records, None)
    end_to_end["serial"] = serial_time
    for name in ("threads:4", "processes:4"):
        elapsed, observed = _run_end_to_end(records, name)
        assert observed == reference, f"{name} output diverged from serial"
        end_to_end[name] = elapsed
    map_wave = _time_map_wave(records, ("serial", "processes:4"))
    return {"end_to_end": end_to_end, "map_wave": map_wave}


def test_executor_scaling(benchmark, reports):
    from benchmarks.conftest import run_once
    from repro.analysis.report import ExperimentReport

    results = run_once(benchmark, run_scaling)
    cores = os.cpu_count() or 1
    wave = results["map_wave"]
    e2e = results["end_to_end"]
    wave_speedup = wave["serial"] / wave["processes:4"]
    e2e_speedup = e2e["serial"] / e2e["processes:4"]

    report = ExperimentReport(
        "PR2",
        "Executor scaling: sessionization map waves across cores",
        setup=f"sort-merge engine, {NUM_CLICKS} clicks, {cores} cores",
    )
    report.observe(
        "parallel executors reproduce the serial run exactly",
        "byte-identical",
        "byte-identical (asserted per run)",
        True,
    )
    report.observe(
        f"map wave, 4 fork workers (asserted only with >= {MIN_CORES_FOR_SPEEDUP} cores)",
        f">= {EXPECTED_SPEEDUP:.0f}x",
        f"{wave_speedup:.2f}x "
        f"(serial {wave['serial']:.2f}s, mp {wave['processes:4']:.2f}s)",
        wave_speedup >= EXPECTED_SPEEDUP or cores < MIN_CORES_FOR_SPEEDUP,
    )
    report.observe(
        "end-to-end job, 4 fork workers (reported; Amdahl-bound by coordinator)",
        "speedup < map wave",
        f"{e2e_speedup:.2f}x "
        f"(serial {e2e['serial']:.2f}s, mp {e2e['processes:4']:.2f}s)",
        True,
    )
    reports(report)

    if cores >= MIN_CORES_FOR_SPEEDUP:
        assert wave_speedup >= EXPECTED_SPEEDUP, (
            f"expected >= {EXPECTED_SPEEDUP}x map-wave speedup with "
            f"{cores} cores, got {wave_speedup:.2f}x"
        )


if __name__ == "__main__":
    cores = os.cpu_count() or 1
    print(f"executor scaling, sessionization, {NUM_CLICKS} clicks, {cores} cores")
    results = run_scaling()
    e2e = results["end_to_end"]
    for name, elapsed in e2e.items():
        print(f"  end-to-end {name:12s} {elapsed:6.2f}s   {e2e['serial'] / elapsed:5.2f}x")
    wave = results["map_wave"]
    for name, elapsed in wave.items():
        print(f"  map wave   {name:12s} {elapsed:6.2f}s   {wave['serial'] / elapsed:5.2f}x")
    wave_speedup = wave["serial"] / wave["processes:4"]
    if cores >= MIN_CORES_FOR_SPEEDUP:
        assert wave_speedup >= EXPECTED_SPEEDUP, f"{wave_speedup:.2f}x < {EXPECTED_SPEEDUP}x"
        print(f"map-wave speedup target met (>= {EXPECTED_SPEEDUP}x)")
    else:
        print(
            f"note: {cores} core(s) < {MIN_CORES_FOR_SPEEDUP}; "
            "speedups reported but not asserted"
        )

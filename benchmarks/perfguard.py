"""Perf-regression guard for the serial hot-path kernels.

Measures four micro-kernels that PR 2 optimised — frame codec round-trip,
partition-key sorting, streaming run merge, incremental hash update — and
normalises each timing by a fixed pure-Python calibration loop run on the
same machine.  The resulting *scores* are dimensionless ("kernel costs
3.1 calibration units"), so a baseline recorded on one machine is
comparable on another: hardware speed cancels out, algorithmic
regressions do not.

Usage::

    python benchmarks/perfguard.py --write   # record baseline BENCH_PR2.json
    python benchmarks/perfguard.py --check   # fail (exit 1) on >25% regression

CI runs ``--check`` against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_PR2.json"
TOLERANCE = 0.25  # fail when a kernel's score regresses by more than this
REPEATS = 7  # best-of-N to shave scheduler noise


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _score(fn, repeats: int = REPEATS) -> float:
    """Kernel time in calibration units, robust to CPU-frequency drift.

    Each repeat times the calibration loop immediately before the kernel
    and takes their ratio, so a machine-wide slowdown hits numerator and
    denominator alike; the minimum ratio across repeats is the cleanest
    pairing (both measurements unperturbed).
    """
    best = float("inf")
    for _ in range(repeats):
        calib = _time_once(calibration_loop)
        best = min(best, _time_once(fn) / calib)
    return best


def calibration_loop() -> None:
    """Fixed pure-Python work the kernel timings are normalised by."""
    acc = 0
    table: dict[int, int] = {}
    for i in range(200_000):
        acc += i * i
        table[i & 1023] = acc
    assert acc > 0 and len(table) == 1024


# -- kernels ------------------------------------------------------------------


def _click_pairs(n: int) -> list[tuple[str, tuple[float, str]]]:
    rng = random.Random(1729)
    return [
        (f"user{rng.randrange(500):04d}", (rng.random() * 3600.0, f"/page/{rng.randrange(200)}"))
        for _ in range(n)
    ]


def kernel_frames_roundtrip() -> None:
    from repro.io.serialization import encode_frames, iter_frames

    pairs = _click_pairs(20_000)
    data = encode_frames(pairs)
    assert sum(1 for _ in iter_frames(data)) == len(pairs)


def kernel_partition_sort() -> None:
    from repro.mapreduce.sortmerge import _PARTITION_KEY

    rng = random.Random(4104)
    rows = [
        (rng.randrange(8), f"key{rng.randrange(4096):05d}", rng.random())
        for _ in range(120_000)
    ]
    rows.sort(key=_PARTITION_KEY)
    assert rows[0][0] == 0


def kernel_merge_streams() -> None:
    from repro.mapreduce.merge import merge_sorted

    rng = random.Random(2718)
    streams = [
        iter(sorted((f"k{rng.randrange(10_000):05d}", i) for _ in range(15_000)))
        for i in range(8)
    ]
    count = sum(1 for _ in merge_sorted(streams))
    assert count == 8 * 15_000


def kernel_incremental_update() -> None:
    from repro.core.aggregates import SUM
    from repro.core.incremental import IncrementalHash

    rng = random.Random(5050)
    table = IncrementalHash(SUM)
    for _ in range(100_000):
        table.update(f"user{rng.randrange(2_000):04d}", 1)
    assert table.resident_keys == 2_000


def kernel_tracer_noop() -> None:
    """Cost of the tracing-off path: guards and null spans must stay free.

    Mirrors how engines consult the tracer — a per-record ``enabled``
    check in the hot loop and null span handles at task/phase
    granularity.  If ``NullTracer`` ever grows real work, this score
    blows past its baseline and CI fails.
    """
    from repro.obs.tracer import NULL_TRACER, task_tracer

    trc = task_tracer(False)
    assert trc is NULL_TRACER
    hits = 0
    for _ in range(300_000):
        if trc.enabled:  # per-record hot-path guard (OnePassReduceTask.accept)
            hits += 1
    for i in range(3_000):  # per-task / per-phase granularity
        with trc.span("map", "map", node="n0", task="map:00000", cost=1) as h:
            h.set_cost(i + 1)
            h.set(records=i)
        trc.event("node.crash", "recovery", node="n0")
        trc.add_span("map-phase", "phase", 0, 1)
    assert hits == 0 and trc.export() is None


def kernel_journal_append() -> None:
    """Journal write path: frame + crc + pickle per coordinator decision.

    Every commit an engine makes with ``--journal`` funnels through
    :meth:`JobJournal.append`, so its per-record cost bounds the journal
    overhead of a run.  Measures append throughput against tmpfs-backed
    storage plus one finalize/reopen cycle (the resume-path parse).
    """
    import shutil
    import tempfile

    from repro.mapreduce.journal import K_MAP_COMMIT, K_TASK_GRANT, JobJournal

    root = tempfile.mkdtemp(prefix="perfguard-journal-")
    try:
        journal = JobJournal(root)
        for task in range(2_000):
            journal.append(K_TASK_GRANT, task=task, node=f"node{task % 10:02d}")
            journal.append(K_MAP_COMMIT, task=task, node=f"node{task % 10:02d}")
        journal.finalize()
        reopened = JobJournal(root)
        assert len(reopened.records) == 4_000
    finally:
        shutil.rmtree(root, ignore_errors=True)


KERNELS = {
    "frames_roundtrip": kernel_frames_roundtrip,
    "partition_sort": kernel_partition_sort,
    "merge_streams": kernel_merge_streams,
    "incremental_update": kernel_incremental_update,
    "tracer_noop": kernel_tracer_noop,
    "journal_append": kernel_journal_append,
}


def measure() -> dict[str, float]:
    calibration_loop()  # warm up allocator and interned small ints
    return {name: round(_score(fn), 4) for name, fn in KERNELS.items()}


def cmd_write(path: Path) -> int:
    # Two full passes, per-kernel max: a conservative baseline, so a lucky
    # fast pair at record time cannot turn into spurious CI failures later.
    first, second = measure(), measure()
    scores = {name: max(first[name], second[name]) for name in first}
    payload = {
        "description": "perfguard baseline: kernel time / calibration-loop time",
        "tolerance": TOLERANCE,
        "kernels": scores,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    for name, score in sorted(scores.items()):
        print(f"  {name:24s} {score:8.4f}")
    return 0


def cmd_check(path: Path) -> int:
    if not path.exists():
        print(f"no baseline at {path}; run with --write first", file=sys.stderr)
        return 2
    baseline = json.loads(path.read_text())
    tolerance = float(baseline.get("tolerance", TOLERANCE))
    scores = measure()
    failed = False
    print(f"{'kernel':24s} {'baseline':>10s} {'current':>10s} {'ratio':>8s}")
    for name, base in sorted(baseline["kernels"].items()):
        current = scores.get(name)
        if current is None:
            print(f"{name:24s} {base:10.4f} {'MISSING':>10s}")
            failed = True
            continue
        ratio = current / base
        verdict = "FAIL" if ratio > 1 + tolerance else "ok"
        if verdict == "FAIL":
            failed = True
        print(f"{name:24s} {base:10.4f} {current:10.4f} {ratio:7.2f}x  {verdict}")
    if failed:
        print(f"\nperfguard: regression beyond {tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print(f"\nperfguard: all kernels within {tolerance:.0%} of baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="record a new baseline")
    mode.add_argument("--check", action="store_true", help="compare against baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)
    return cmd_write(args.baseline) if args.write else cmd_check(args.baseline)


if __name__ == "__main__":
    sys.exit(main())

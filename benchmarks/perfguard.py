"""Perf-regression guard for the serial hot-path kernels.

Measures the serial micro-kernels the PR-2 and PR-7 optimisations target
— frame codec round-trip, partition-key sorting, streaming run merge,
incremental hash update, their columnar *batch* counterparts and the
chained-job partition cache — and guards them two ways:

* **Ratio guard** — each timing is normalised by a fixed pure-Python
  calibration loop run on the same machine.  The resulting *scores* are
  dimensionless ("kernel costs 3.1 calibration units"), so a baseline
  recorded on one machine is comparable on another: hardware speed
  cancels out, algorithmic regressions do not.
* **Throughput floor** — each kernel also carries an absolute
  records-per-second floor (recorded at baseline time divided by a 4x
  headroom factor).  Ratios catch *relative* drift; floors catch the
  case where the calibration loop and the kernel degrade together.

The batch kernels must additionally *beat* their tuple twins: CI fails
if ``batch_partition_sort`` or ``batch_merge_streams`` stops being at
least 25% faster than ``partition_sort`` / ``merge_streams`` — that
improvement is the point of the batch path.

Usage::

    python benchmarks/perfguard.py --write            # record baseline BENCH_PR7.json
    python benchmarks/perfguard.py --check            # fail (exit 1) on >25% regression
    python benchmarks/perfguard.py --update-baseline  # deterministic re-record of drifted entries

``--update-baseline`` rewrites the committed baseline deterministically
(sorted keys, 4-decimal scores, integer floors) and only touches entries
that drifted outside the tolerance band, so baseline diffs stay
reviewable.  CI runs ``--check`` against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_PR7.json"
TOLERANCE = 0.25  # fail when a kernel's score regresses by more than this
FLOOR_HEADROOM = 4.0  # floor = baseline records/sec divided by this
REPEATS = 7  # best-of-N to shave scheduler noise

#: batch kernel -> (tuple twin, max allowed score ratio batch/tuple)
BATCH_BEATS = {
    "batch_partition_sort": ("partition_sort", 0.75),
    "batch_merge_streams": ("merge_streams", 0.75),
}

#: overhead kernel -> (reference kernel, max wall ratio).  Unlike the
#: BATCH_BEATS bounds (25%+ margins), a 2% differential sits below the
#: noise floor of independently scored kernels, so these pairs are timed
#: interleaved (``paired_ratio``): both sides face the same heap, cache
#: and scheduler state, and the min-of-N ratio is stable to well under 2%.
#: reprosan only instruments once installed — with the sanitizer merely
#: importable/constructed, executor dispatch must cost the same.
PAIRED_OVERHEAD = {
    "san_overhead": ("exec_dispatch", 1.02),
}

#: kernel -> pipeline phase it exercises.  When the gate fails, scores are
#: aggregated by phase and diffed (repro.obs.analyze.diff) so the failure
#: names *which phase* regressed, not just which micro-kernel.
KERNEL_PHASES = {
    "frames_roundtrip": "shuffle",
    "partition_sort": "sort",
    "batch_partition_sort": "sort",
    "merge_streams": "merge",
    "batch_merge_streams": "merge",
    "incremental_update": "reduce",
    "batch_hash_update": "reduce",
    "partition_cache_roundtrip": "cache",
    "tracer_noop": "observability",
    "journal_append": "journal",
    "lint_warm_run": "lint",
    "exec_dispatch": "executor",
    "san_overhead": "sanitizer",
}


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _score(fn, repeats: int = REPEATS) -> tuple[float, float]:
    """(calibration-unit score, wall seconds), robust to CPU-frequency drift.

    Each repeat times the calibration loop immediately before the kernel
    and takes their ratio, so a machine-wide slowdown hits numerator and
    denominator alike; the minimum ratio across repeats is the cleanest
    pairing (both measurements unperturbed).  The minimum wall time feeds
    the absolute records-per-second floor.
    """
    best_ratio = float("inf")
    best_wall = float("inf")
    for _ in range(repeats):
        calib = _time_once(calibration_loop)
        wall = _time_once(fn)
        best_ratio = min(best_ratio, wall / calib)
        best_wall = min(best_wall, wall)
    return best_ratio, best_wall


def calibration_loop() -> None:
    """Fixed pure-Python work the kernel timings are normalised by."""
    acc = 0
    table: dict[int, int] = {}
    for i in range(200_000):
        acc += i * i
        table[i & 1023] = acc
    assert acc > 0 and len(table) == 1024


# -- kernels ------------------------------------------------------------------


_DATASETS: dict[str, list] = {}


def _dataset(name: str, build) -> list:
    """Build a kernel's input once and reuse it across repeats.

    Synthetic-data generation (rng draws plus f-string keys) used to be
    timed inside several kernels and dominated them, which both diluted
    the tuple-vs-batch comparisons and added run-to-run noise; the guards
    should measure the kernel, not the generator.
    """
    data = _DATASETS.get(name)
    if data is None:
        data = _DATASETS[name] = build()
    return data


def _click_pairs() -> list[tuple[str, tuple[float, str]]]:
    def build() -> list[tuple[str, tuple[float, str]]]:
        rng = random.Random(1729)
        return [
            (
                f"user{rng.randrange(500):04d}",
                (rng.random() * 3600.0, f"/page/{rng.randrange(200)}"),
            )
            for _ in range(20_000)
        ]

    return _dataset("clicks", build)


def kernel_frames_roundtrip() -> None:
    from repro.io.serialization import encode_frames, iter_frames

    pairs = _click_pairs()
    data = encode_frames(pairs)
    assert sum(1 for _ in iter_frames(data)) == len(pairs)


def _partition_rows() -> list[tuple[int, str, float]]:
    def build() -> list[tuple[int, str, float]]:
        rng = random.Random(4104)
        return [
            (rng.randrange(8), f"key{rng.randrange(4096):05d}", rng.random())
            for _ in range(120_000)
        ]

    return _dataset("partition_rows", build)


def kernel_partition_sort() -> None:
    from repro.mapreduce.sortmerge import _PARTITION_KEY

    rows = list(_partition_rows())
    rows.sort(key=_PARTITION_KEY)
    assert rows[0][0] == 0


def kernel_batch_partition_sort() -> None:
    """The batch path's equivalent of ``partition_sort``: same 120k rows
    (seed 4104, 8 partitions), fanned out at add time and sorted per
    bucket with the stable single-key sort — the fanout-at-add plus
    ``sort_bucket`` shape the engines' ``--batch`` paths run.  Must beat
    the global compound-key sort by 25% (see :data:`BATCH_BEATS`).
    """
    from repro.io.batch import sort_bucket

    buckets: list[list[tuple[str, float]]] = [[] for _ in range(8)]
    appends = [b.append for b in buckets]
    for partition, key, value in _partition_rows():
        appends[partition]((key, value))
    total = 0
    for bucket in buckets:
        sort_bucket(bucket)
        total += len(bucket)
    assert total == 120_000


def _merge_input() -> list[list[tuple[str, int]]]:
    """Eight key-sorted 15k-record segments (tuple path pops them off a
    heap record by record; the batch path concatenates and galloping-sorts)."""

    def build() -> list[list[tuple[str, int]]]:
        rng = random.Random(2718)
        return [
            sorted((f"k{rng.randrange(10_000):05d}", i) for _ in range(15_000))
            for i in range(8)
        ]

    return _dataset("merge_segments", build)


def kernel_merge_streams() -> None:
    from repro.mapreduce.merge import merge_sorted

    streams = [iter(segment) for segment in _merge_input()]
    count = sum(1 for _ in merge_sorted(streams))
    assert count == 8 * 15_000


def kernel_batch_merge_streams() -> None:
    from repro.io.batch import merge_segments

    merged = merge_segments(_merge_input())
    assert len(merged) == 8 * 15_000


def _hash_pairs() -> list[tuple[str, int]]:
    def build() -> list[tuple[str, int]]:
        rng = random.Random(5050)
        return [(f"user{rng.randrange(2_000):04d}", 1) for _ in range(100_000)]

    return _dataset("hash_pairs", build)


def kernel_incremental_update() -> None:
    from repro.core.aggregates import SUM
    from repro.core.incremental import IncrementalHash

    table = IncrementalHash(SUM)
    update = table.update
    for key, value in _hash_pairs():
        update(key, value)
    assert table.resident_keys == 2_000


def kernel_batch_hash_update() -> None:
    """Folding map-output chunks through ``IncrementalHash.update_batch``
    (the fast path the one-pass engine's ``--batch`` mode takes), in
    granularity-sized chunks as the engine produces them.
    """
    from repro.core.aggregates import SUM
    from repro.core.incremental import IncrementalHash

    pairs = _hash_pairs()
    table = IncrementalHash(SUM)
    for i in range(0, len(pairs), 4096):
        table.update_batch(pairs[i : i + 4096])
    assert table.resident_keys == 2_000


def kernel_partition_cache_roundtrip() -> None:
    """Chained-job cache hot loop: store every intermediate block, spill
    FIFO past the byte budget, then serve every block back (memory hits
    and unspill reads alike).  Bounds the coordinator-side overhead the
    cache adds per intermediate block of a chain.
    """
    from repro.hdfs.blocks import BlockId
    from repro.io.disk import LocalDisk
    from repro.mapreduce.chain import PartitionCache

    payload = bytes(range(256)) * 256  # one 64 KiB intermediate block
    cache = PartitionCache(
        capacity_bytes=48 * len(payload), spill_disk=LocalDisk(name="cachebench")
    )
    cache.register("bench/mid", "fp-bench")
    for i in range(512):
        cache.store(BlockId("bench/mid", i), payload)
    served = 0
    for i in range(512):
        data = cache.get(BlockId("bench/mid", i))
        assert data is not None
        served += len(data)
    assert served == 512 * len(payload)
    assert cache.spilled_blocks > 0  # the FIFO pressure path ran


def kernel_tracer_noop() -> None:
    """Cost of the tracing-off path: guards and null spans must stay free.

    Mirrors how engines consult the tracer — a per-record ``enabled``
    check in the hot loop and null span handles at task/phase
    granularity.  If ``NullTracer`` ever grows real work, this score
    blows past its baseline and CI fails.
    """
    from repro.obs.tracer import NULL_TRACER, task_tracer

    trc = task_tracer(False)
    assert trc is NULL_TRACER
    hits = 0
    for _ in range(300_000):
        if trc.enabled:  # per-record hot-path guard (OnePassReduceTask.accept)
            hits += 1
    for i in range(3_000):  # per-task / per-phase granularity
        with trc.span("map", "map", node="n0", task="map:00000", cost=1) as h:
            h.set_cost(i + 1)
            h.set(records=i)
        trc.event("node.crash", "recovery", node="n0")
        trc.add_span("map-phase", "phase", 0, 1)
    assert hits == 0 and trc.export() is None


def kernel_journal_append() -> None:
    """Journal write path: frame + crc + pickle per coordinator decision.

    Every commit an engine makes with ``--journal`` funnels through
    :meth:`JobJournal.append`, so its per-record cost bounds the journal
    overhead of a run.  Measures append throughput against tmpfs-backed
    storage plus one finalize/reopen cycle (the resume-path parse).
    """
    import shutil
    import tempfile

    from repro.mapreduce.journal import K_MAP_COMMIT, K_TASK_GRANT, JobJournal

    root = tempfile.mkdtemp(prefix="perfguard-journal-")
    try:
        journal = JobJournal(root)
        for task in range(2_000):
            journal.append(K_TASK_GRANT, task=task, node=f"node{task % 10:02d}")
            journal.append(K_MAP_COMMIT, task=task, node=f"node{task % 10:02d}")
        journal.finalize()
        reopened = JobJournal(root)
        assert len(reopened.records) == 4_000
    finally:
        shutil.rmtree(root, ignore_errors=True)


_LINT_STATE: dict = {}


def kernel_lint_warm_run() -> None:
    """Warm full-tree lint: all three layers (AST, dataflow, CFG rules)
    over the default scope with the summary store hot.

    The first call pays the cold pass into a scratch cache; the scored
    repeats measure the steady state a pre-commit hook or cache-hit CI
    run pays.  If a new rule (the CFG layer is the marginal cost here)
    quietly makes lint slow, this score blows its baseline.  Records are
    linted files, so the floor reads as files/sec.
    """
    import tempfile

    from repro.lint import LintConfig, lint_paths
    from repro.lint.cli import default_lint_paths

    if not _LINT_STATE:
        root = Path(__file__).resolve().parents[1]
        scratch = Path(tempfile.mkdtemp(prefix="perfguard-lint-"))
        config = LintConfig(
            root=root, cache_path=str(scratch / "summaries.json")
        )
        paths = default_lint_paths(root)
        lint_paths(paths, config)  # cold pass: populate the summary store
        _LINT_STATE.update(config=config, paths=paths)
    findings = lint_paths(_LINT_STATE["paths"], _LINT_STATE["config"])
    assert findings == [], findings


def _perfguard_noop(ctx, spec):
    return spec["part"]


def _dispatch_loop() -> None:
    from repro.exec.base import SerialExecutor, register_kernel

    register_kernel("perfguard.noop", _perfguard_noop)
    specs = _dataset(
        "dispatch_specs", lambda: [{"part": i, "key": ("k", i)} for i in range(100_000)]
    )
    with SerialExecutor().session(context=None) as session:
        out = session.run_batch("perfguard.noop", specs)
    assert len(out) == len(specs)


def kernel_exec_dispatch() -> None:
    """Bare executor dispatch: per-spec cost of the serial session path.

    The twin of ``san_overhead`` — the same loop without reprosan in the
    process.  Its score is the denominator of the sanitizer-off overhead
    gate.
    """
    _dispatch_loop()


_SAN_STATE: dict = {}


def kernel_san_overhead() -> None:
    """Sanitizer-off dispatch: reprosan imported and constructed, never
    installed.

    reprosan instruments by patching at ``install()`` time, so merely
    shipping it must leave the dispatch hot path untouched: the
    BATCH_BEATS pairing gates this kernel to within 2% of
    ``exec_dispatch``.  If an always-on hook ever creeps into the
    executor (an ``active_sanitizer()`` probe per batch, an import-time
    wrapper), this ratio blows past its bound and CI fails.
    """
    if not _SAN_STATE:
        from repro.san import Sanitizer

        _SAN_STATE["san"] = Sanitizer()  # constructed, deliberately not installed
    _dispatch_loop()


#: kernel name -> (callable, records processed per invocation).  The record
#: count turns the wall time into the records/sec figure the floors guard.
KERNELS = {
    "frames_roundtrip": (kernel_frames_roundtrip, 20_000),
    "partition_sort": (kernel_partition_sort, 120_000),
    "batch_partition_sort": (kernel_batch_partition_sort, 120_000),
    "merge_streams": (kernel_merge_streams, 120_000),
    "batch_merge_streams": (kernel_batch_merge_streams, 120_000),
    "incremental_update": (kernel_incremental_update, 100_000),
    "batch_hash_update": (kernel_batch_hash_update, 100_000),
    "partition_cache_roundtrip": (kernel_partition_cache_roundtrip, 1_024),
    "tracer_noop": (kernel_tracer_noop, 300_000),
    "journal_append": (kernel_journal_append, 4_000),
    "lint_warm_run": (kernel_lint_warm_run, 136),
    "exec_dispatch": (kernel_exec_dispatch, 100_000),
    "san_overhead": (kernel_san_overhead, 100_000),
}

#: kernels too heavy for best-of-7: fewer repeats keep the guard's wall
#: time bounded while min-of-N still shaves the worst scheduler noise.
KERNEL_REPEATS = {"lint_warm_run": 3}


def paired_ratio(overhead_fn, reference_fn, repeats: int = 21) -> float:
    """min-of-N wall ratio of two kernels timed interleaved.

    Alternating the two bodies within one loop means heap growth, cache
    state and scheduler interference hit both sides alike — the only
    thing the ratio can see is a real per-invocation cost difference.
    """
    over = ref = float("inf")
    for _ in range(repeats):
        ref = min(ref, _time_once(reference_fn))
        over = min(over, _time_once(overhead_fn))
    return over / ref


def measure() -> dict[str, dict[str, float]]:
    """Per kernel: dimensionless ``score`` and absolute ``records_per_sec``."""
    calibration_loop()  # warm up allocator and interned small ints
    out: dict[str, dict[str, float]] = {}
    for name, (fn, records) in KERNELS.items():
        score, wall = _score(fn, KERNEL_REPEATS.get(name, REPEATS))
        out[name] = {"score": score, "records_per_sec": records / wall}
    return out


def _conservative_measure() -> dict[str, dict[str, float]]:
    """Two full passes folded pessimistically (max score, min throughput),
    so a lucky fast pair at record time cannot turn into spurious CI
    failures later."""
    first, second = measure(), measure()
    return {
        name: {
            "score": max(first[name]["score"], second[name]["score"]),
            "records_per_sec": min(
                first[name]["records_per_sec"], second[name]["records_per_sec"]
            ),
        }
        for name in first
    }


def _dump_baseline(path: Path, payload: dict) -> None:
    """The one serialisation point: sorted keys, fixed precision.

    Scores carry 4 decimals, floors are integers — re-recording a
    baseline produces a minimal, reviewable diff instead of a wall of
    float noise.
    """
    payload["kernels"] = {k: round(v, 4) for k, v in payload["kernels"].items()}
    payload["floors_records_per_sec"] = {
        k: int(v) for k, v in payload["floors_records_per_sec"].items()
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _load_baseline(path: Path) -> dict:
    return json.loads(path.read_text())


def cmd_write(path: Path) -> int:
    measured = _conservative_measure()
    payload = _load_baseline(path) if path.exists() else {}
    payload.update(
        {
            "description": (
                "perfguard baseline: kernel time / calibration-loop time, "
                "plus absolute records/sec floors (baseline / headroom)"
            ),
            "tolerance": TOLERANCE,
            "floor_headroom": FLOOR_HEADROOM,
            "kernels": {name: m["score"] for name, m in measured.items()},
            "floors_records_per_sec": {
                name: m["records_per_sec"] / FLOOR_HEADROOM
                for name, m in measured.items()
            },
        }
    )
    _dump_baseline(path, payload)
    print(f"wrote {path}")
    for name in sorted(measured):
        m = measured[name]
        print(
            f"  {name:26s} score {m['score']:8.4f}   "
            f"{m['records_per_sec']:12,.0f} rec/s"
        )
    for batch, (twin, bound) in sorted(BATCH_BEATS.items()):
        ratio = measured[batch]["score"] / measured[twin]["score"]
        print(f"  {batch} / {twin} = {ratio:.3f} (required <= {bound})")
    for name, (ref, bound) in sorted(PAIRED_OVERHEAD.items()):
        ratio = paired_ratio(KERNELS[name][0], KERNELS[ref][0])
        print(f"  {name} / {ref} = {ratio:.3f} interleaved (required <= {bound})")
    return 0


def cmd_update_baseline(path: Path) -> int:
    """Re-record only the entries that drifted outside the tolerance band.

    Entries still within tolerance keep their committed values, so the
    rewrite is a no-op for them and the diff shows exactly which kernels
    actually moved.  New kernels are added, removed kernels dropped, and
    unrelated top-level keys (the chained-pipeline record) are preserved.
    """
    if not path.exists():
        print(f"no baseline at {path}; run with --write first", file=sys.stderr)
        return 2
    baseline = _load_baseline(path)
    tolerance = float(baseline.get("tolerance", TOLERANCE))
    old_scores = baseline.get("kernels", {})
    old_floors = baseline.get("floors_records_per_sec", {})
    measured = _conservative_measure()

    def keep_or_replace(old: float | None, new: float) -> tuple[float, bool]:
        if old is not None and abs(new / old - 1.0) <= tolerance:
            return old, False
        return new, True

    scores: dict[str, float] = {}
    floors: dict[str, float] = {}
    changed: list[str] = []
    for name, m in measured.items():
        score, score_moved = keep_or_replace(old_scores.get(name), m["score"])
        floor, floor_moved = keep_or_replace(
            old_floors.get(name), m["records_per_sec"] / FLOOR_HEADROOM
        )
        scores[name] = score
        floors[name] = floor
        if score_moved or floor_moved:
            changed.append(name)
    dropped = sorted(set(old_scores) - set(measured))
    baseline.update(
        {
            "tolerance": tolerance,
            "floor_headroom": FLOOR_HEADROOM,
            "kernels": scores,
            "floors_records_per_sec": floors,
        }
    )
    _dump_baseline(path, baseline)
    print(f"updated {path}")
    print(f"  re-recorded: {', '.join(sorted(changed)) or '(none — all in band)'}")
    if dropped:
        print(f"  dropped stale kernels: {', '.join(dropped)}")
    return 0


def cmd_check(path: Path) -> int:
    if not path.exists():
        print(f"no baseline at {path}; run with --write first", file=sys.stderr)
        return 2
    baseline = _load_baseline(path)
    tolerance = float(baseline.get("tolerance", TOLERANCE))
    floors = baseline.get("floors_records_per_sec", {})
    measured = measure()
    failed = False
    print(
        f"{'kernel':26s} {'baseline':>10s} {'current':>10s} {'ratio':>8s} "
        f"{'rec/s':>14s} {'floor':>12s}"
    )
    for name, base in sorted(baseline["kernels"].items()):
        m = measured.get(name)
        if m is None:
            print(f"{name:26s} {base:10.4f} {'MISSING':>10s}")
            failed = True
            continue
        ratio = m["score"] / base
        floor = floors.get(name, 0.0)
        ok = ratio <= 1 + tolerance and m["records_per_sec"] >= floor
        if not ok:
            failed = True
        print(
            f"{name:26s} {base:10.4f} {m['score']:10.4f} {ratio:7.2f}x "
            f"{m['records_per_sec']:14,.0f} {floor:12,.0f}  "
            f"{'ok' if ok else 'FAIL'}"
        )
    for batch, (twin, bound) in sorted(BATCH_BEATS.items()):
        if batch not in measured or twin not in measured:
            continue
        ratio = measured[batch]["score"] / measured[twin]["score"]
        ok = ratio <= bound
        if not ok:
            failed = True
        print(
            f"{batch:26s} vs {twin}: {ratio:.3f} "
            f"(required <= {bound})  {'ok' if ok else 'FAIL'}"
        )
    for name, (ref, bound) in sorted(PAIRED_OVERHEAD.items()):
        ratio = paired_ratio(KERNELS[name][0], KERNELS[ref][0])
        ok = ratio <= bound
        if not ok:
            failed = True
        print(
            f"{name:26s} vs {ref}: {ratio:.3f} interleaved "
            f"(required <= {bound})  {'ok' if ok else 'FAIL'}"
        )
    if failed:
        print(
            f"\nperfguard: regression beyond {tolerance:.0%} tolerance "
            f"or throughput floor breached",
            file=sys.stderr,
        )
        explain_regression(baseline["kernels"], measured)
        return 1
    print(f"\nperfguard: all kernels within {tolerance:.0%} of baseline and above floors")
    return 0


def phase_scores(scores: dict[str, float]) -> dict[str, float]:
    """Aggregate per-kernel scores into per-phase totals (KERNEL_PHASES)."""
    out: dict[str, float] = {}
    for name, score in scores.items():
        phase = KERNEL_PHASES.get(name, "other")
        out[phase] = round(out.get(phase, 0.0) + score, 4)
    return out


def explain_regression(
    base_scores: dict[str, float], measured: dict[str, dict[str, float]]
) -> None:
    """Print the per-phase delta table and name the regressed phase."""
    from repro.obs.analyze.diff import (
        attribute_regression,
        delta_rows,
        render_delta_table,
    )

    base = phase_scores(base_scores)
    current = phase_scores(
        {name: m["score"] for name, m in measured.items() if name in base_scores}
    )
    print()
    print(
        render_delta_table(
            delta_rows(base, current),
            title="phase attribution (calibration-unit scores)",
            unit="score",
        ),
        file=sys.stderr,
    )
    regressed = attribute_regression(base, current)
    if regressed:
        print(f"regressed phase: {regressed}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="record a new baseline")
    mode.add_argument("--check", action="store_true", help="compare against baseline")
    mode.add_argument(
        "--update-baseline",
        action="store_true",
        help="deterministically re-record entries that drifted out of band",
    )
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)
    if args.write:
        return cmd_write(args.baseline)
    if args.update_baseline:
        return cmd_update_baseline(args.baseline)
    return cmd_check(args.baseline)


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 3 — task timeline of inverted-index construction.

The paper's point: "the blocking merge phase is present in this workload
as well.  Progress is stopped until local intermediate data is merged on
each node" — despite a smaller intermediate/input ratio than
sessionization.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.series import find_valley, sparkline
from repro.analysis.tables import human_time
from repro.simulator import CLUSTER_2011, GB, INVERTED_INDEX, HadoopPipeline

BUCKET = 30.0


def test_fig3_task_timeline(benchmark, reports):
    result = run_once(
        benchmark,
        lambda: HadoopPipeline(CLUSTER_2011, INVERTED_INDEX, metric_bucket=BUCKET).run(),
    )
    _times, series = result.task_log.counts_series(BUCKET)

    report = ExperimentReport(
        "F3",
        "Fig 3: task timeline, inverted index",
        setup="simulator, 10 nodes, 427 GB documents, sort-merge",
    )
    map_end = result.phase_window("map")[1]
    reduce_start = result.phase_window("reduce")[0]
    merge_spans = result.task_log.phase_spans("merge")
    report.observe(
        "blocking merge phase present",
        "progress stops until local data is merged",
        f"{len(merge_spans)} merges; reduce starts {human_time(reduce_start)} "
        f"after map ends {human_time(map_end)}",
        len(merge_spans) > 0 and reduce_start >= map_end,
    )
    report.observe(
        "substantial merge I/O despite smaller intermediate data",
        "150 GB reduce-side",
        f"{(result.totals.reduce_spill_bytes + result.totals.merge_write_bytes) / GB:.0f} GB",
        result.totals.reduce_spill_bytes + result.totals.merge_write_bytes
        > 100 * GB,
    )
    s = result.series
    _t, valley_v = find_valley(s.times, s.cpu_utilization)
    report.observe(
        "CPU valley between phases",
        "low utilisation while merging",
        f"valley {valley_v:.0%}",
        valley_v < 0.3,
    )
    report.observe(
        "completion near the paper's",
        "118 min",
        human_time(result.makespan),
        0.6 * 118 <= result.completion_minutes <= 1.4 * 118,
    )
    for phase in ("map", "merge", "reduce"):
        report.note(f"{phase:7s} {sparkline(series[phase])}")
    reports(report)
    assert report.all_hold

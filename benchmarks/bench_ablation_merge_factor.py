"""Ablation A1 — the merge factor F and multi-pass merge I/O.

DESIGN.md calls out Hadoop's factor-F merge as the driver of the paper's
"370 GB reduce spill for 256 GB input" observation: merge rewrite volume
grows with ceil(log_F(runs)).  Sweeping F on the real engine (byte-exact
accounting) and the simulator (paper scale) verifies the relationship and
its completion-time consequence.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table, human_bytes
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.simulator import GB, SESSIONIZATION, ClusterSpec, HadoopPipeline
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.per_user_count import per_user_count_job, reference_user_counts

FACTORS = (2, 4, 10)


@pytest.fixture(scope="module")
def clicks():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=120_000, num_users=6_000, num_urls=500)
        )
    )


def test_merge_factor_real_engine(benchmark, reports, clicks):
    def experiment():
        out = {}
        for factor in FACTORS:
            cluster = LocalCluster(num_nodes=3, block_size=128 * 1024)
            cluster.hdfs.write_records("in", clicks)
            job = per_user_count_job("in", "out", with_combiner=False).with_config(
                merge_factor=factor, reduce_buffer_bytes=16 * 1024
            )
            result = HadoopEngine(cluster).run(job)
            assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(
                clicks
            )
            out[factor] = result
        return out

    results = run_once(benchmark, experiment)
    rewrites = {f: r.counters[C.MERGE_WRITE_BYTES] for f, r in results.items()}
    passes = {f: int(r.counters[C.MERGE_PASSES]) for f, r in results.items()}

    report = ExperimentReport(
        "A1",
        "Ablation: merge factor F vs multi-pass merge I/O (real engine)",
        setup="per-user count, no combiner, 16 KB reduce buffers, F in "
        f"{FACTORS}",
    )
    report.observe(
        "smaller F means more merge passes",
        "ceil(log_F(runs)) passes",
        f"passes: {passes}",
        passes[2] > passes[4] > passes[10],
    )
    report.observe(
        "merge rewrite volume shrinks as F grows",
        "monotone in F",
        {f: human_bytes(b) for f, b in rewrites.items()},
        rewrites[2] > rewrites[4] >= rewrites[10],
    )
    report.observe(
        "spill volume itself is F-independent",
        "first write is the data",
        f"{human_bytes(results[2].counters[C.REDUCE_SPILL_BYTES])} at every F",
        len(
            {
                round(r.counters[C.REDUCE_SPILL_BYTES])
                for r in results.values()
            }
        )
        == 1,
    )
    report.note(
        format_table(
            ("F", "merge passes", "merge rewrite", "spill"),
            [
                (
                    f,
                    passes[f],
                    human_bytes(rewrites[f]),
                    human_bytes(results[f].counters[C.REDUCE_SPILL_BYTES]),
                )
                for f in FACTORS
            ],
        )
    )
    reports(report)
    assert report.all_hold


def test_merge_factor_simulator(benchmark, reports):
    def experiment():
        out = {}
        for factor in (5, 10, 20):
            spec = ClusterSpec(merge_factor=factor)
            out[factor] = HadoopPipeline(
                spec, SESSIONIZATION, metric_bucket=60.0
            ).run()
        return out

    results = run_once(benchmark, experiment)
    report = ExperimentReport(
        "A1b",
        "Ablation: merge factor at paper scale (simulator)",
        setup="sessionization, 256 GB, F in (5, 10, 20)",
    )
    rw = {f: r.totals.merge_write_bytes for f, r in results.items()}
    report.observe(
        "merge rewrite volume shrinks as F grows",
        "multi-pass I/O falls",
        {f: f"{b / GB:.0f} GB" for f, b in rw.items()},
        rw[5] > rw[10] >= rw[20],
    )
    times = {f: r.completion_minutes for f, r in results.items()}
    report.observe(
        "completion time follows the merge I/O",
        "smaller F runs longer",
        {f: f"{t:.0f} min" for f, t in times.items()},
        times[5] >= times[10] >= times[20] * 0.95,
    )
    report.observe(
        "reduce-side write volume exceeds input at F=10",
        "370 GB for 256 GB input",
        f"{(results[10].totals.reduce_spill_bytes + results[10].totals.merge_write_bytes) / GB:.0f} GB",
        results[10].totals.reduce_spill_bytes + results[10].totals.merge_write_bytes
        > SESSIONIZATION.input_bytes,
    )
    reports(report)
    assert report.all_hold

"""Table II — map-phase CPU split between map function and sorting.

Paper: sessionization 61% map fn / 39% sort; per-user count 52% / 48%.
Measured on the real engine with per-phase timers; we check the shape:
sorting takes a large minority of map-phase CPU, and its share is *higher*
for the lighter map function (per-user count) than for sessionization.
"""

from __future__ import annotations

import pytest

from typing import Iterator

from benchmarks.conftest import run_once
from repro.analysis.compare import cpu_split
from repro.analysis.report import ExperimentReport
from repro.io.serialization import RawLineCodec
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.sessionization import session_reduce


@pytest.fixture(scope="module")
def clicks():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=120_000, num_users=4_000, num_urls=1_000)
        )
    )


def session_line_map(line: str) -> Iterator[tuple[int, tuple[float, str]]]:
    """The paper's sessionization map: parse the full click log line."""
    ts, user, url = line.split("\t")
    yield (int(user), (float(ts), url))


def per_user_line_map(line: str) -> Iterator[tuple[int, int]]:
    """The paper's per-user-count map: 'simply emits (user id, 1)'."""
    yield (int(line.split("\t", 2)[1]), 1)


def _map_phase_counters(job, clicks) -> Counters:
    cluster = LocalCluster(num_nodes=3, block_size=256 * 1024)
    lines = [f"{ts}\t{user}\t{url}" for ts, user, url in clicks]
    cluster.hdfs.write_records("in", lines, codec=RawLineCodec())
    result = HadoopEngine(cluster).run(job)
    return result.counters


def test_table2_cpu_split(benchmark, reports, clicks):
    # Map functions receive raw text lines (TextInputFormat), exactly as in
    # the paper: sessionization parses all three fields and carries the
    # (ts, url) payload; per-user count extracts only the user id.  No
    # combiner on the sessionization side; the sort covers raw map output.
    session_job = MapReduceJob(
        "sessionization-lines",
        session_line_map,
        lambda user, vals: session_reduce(user, vals, gap=5.0),
        input_path="in",
        output_path="out",
    )
    count_job = MapReduceJob(
        "per-user-lines",
        per_user_line_map,
        lambda k, vals: [(k, sum(vals))],
        input_path="in",
        output_path="out",
    )

    def experiment():
        return {
            "sessionization": _map_phase_counters(session_job, clicks),
            "per-user-count": _map_phase_counters(count_job, clicks),
        }

    counters = run_once(benchmark, experiment)
    splits = {name: cpu_split(c) for name, c in counters.items()}

    report = ExperimentReport(
        "T2",
        "Table II map-phase CPU: map function vs sorting",
        setup="real engine, 3 nodes, 120k clicks, per-phase wall timers",
    )
    sess = splits["sessionization"]
    puc = splits["per-user-count"]
    report.observe(
        "sessionization sort share",
        "39% of map-phase CPU",
        f"{sess.sort_share:.0%}",
        0.10 <= sess.sort_share <= 0.60,
    )
    report.observe(
        "per-user-count sort share",
        "48% of map-phase CPU",
        f"{puc.sort_share:.0%}",
        0.15 <= puc.sort_share <= 0.70,
    )
    report.observe(
        "lighter map fn -> larger sort share",
        "per-user 48% > sessionization 39%",
        f"{puc.sort_share:.0%} vs {sess.sort_share:.0%}",
        puc.sort_share > sess.sort_share,
    )
    report.observe(
        "sorting is a significant CPU cost",
        "tens of percent",
        f"{min(sess.sort_share, puc.sort_share):.0%} minimum",
        min(sess.sort_share, puc.sort_share) >= 0.10,
    )
    report.note(
        f"sessionization: map_fn {sess.map_fn_seconds:.3f}s, "
        f"sort {sess.sort_seconds:.3f}s; per-user-count: map_fn "
        f"{puc.map_fn_seconds:.3f}s, sort {puc.sort_seconds:.3f}s"
    )
    reports(report)
    assert report.all_hold


def test_table2_hash_engine_eliminates_sort_cpu(benchmark, reports, clicks):
    """The §IV conclusion drawn from Table II: hashing removes that CPU."""
    from repro.core.engine import OnePassEngine
    from repro.workloads.per_user_count import per_user_count_onepass_job

    def experiment():
        cluster = LocalCluster(num_nodes=3, block_size=256 * 1024)
        cluster.hdfs.write_records("in", clicks)
        return OnePassEngine(cluster).run(per_user_count_onepass_job("in", "out"))

    result = run_once(benchmark, experiment)
    report = ExperimentReport(
        "T2b",
        "Hash-based engine spends zero CPU sorting",
        setup="one-pass engine, same workload",
    )
    report.observe(
        "sort CPU",
        "0 (no sort-merge)",
        f"{result.counters[C.T_SORT]:.4f}s",
        result.counters[C.T_SORT] == 0,
    )
    report.observe(
        "hash CPU replaces it",
        "> 0",
        f"{result.counters[C.T_HASH]:.4f}s",
        result.counters[C.T_HASH] > 0,
    )
    reports(report)
    assert report.all_hold

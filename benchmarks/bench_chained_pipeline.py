"""Chained two-job pipeline: PartitionCache vs spill-and-re-read.

The canonical chain the partition cache (:mod:`repro.mapreduce.chain`)
exists for: stage one reorders the click log into per-user sessions (the
paper's sessionization workload, output cardinality == input), stage two
counts clicks per user over stage one's output.  Run naively, the
intermediate file round-trips through HDFS — replicated block writes,
then block reads by the next job's map phase.  Run under
:func:`run_chain`, those blocks stay in memory and the disks never see
them.

The metric is simulated **disk busy time** (the accounted seconds every
:class:`~repro.io.disk.LocalDisk` spent servicing requests, summed over
the cluster — the basis of the paper's utilisation figures), not wall
clock: it is deterministic, machine-independent, and exactly the cost
the cache removes.  The gate requires the cached chain to be at least
2x cheaper end-to-end.

Block size matters: the device model charges a positioning cost per
random op plus bytes/bandwidth, so tiny blocks are seek-dominated and
understate the transfer traffic a real chain saves.  The bench uses 1 MiB
blocks — large enough that byte traffic dominates, matching the paper's
HDFS-sized-block setting.

Usage::

    python benchmarks/bench_chained_pipeline.py --check   # fail (exit 1) below 2x
    python benchmarks/bench_chained_pipeline.py --write   # record into BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_PR7.json"
MIN_SPEEDUP = 2.0

NUM_CLICKS = 60_000
BLOCK_SIZE = 1024 * 1024
NUM_NODES = 3


def _cluster_busy(cluster) -> float:
    return sum(stats.busy_time for stats in cluster.disk_stats().values())


def _jobs():
    from repro.workloads.counting import counting_onepass_job
    from repro.workloads.sessionization import session_log_onepass_job, user_of_session

    return (
        session_log_onepass_job("clicks/in", "clicks/sessions"),
        counting_onepass_job(
            "session-click-count", user_of_session, "clicks/sessions", "clicks/out"
        ),
    )


def run_bench() -> dict[str, float]:
    """Measure both variants on identical input; returns the record.

    The uncached variant runs the two jobs back to back on one cluster
    (stage one's output lands on the DataNodes and stage two reads it
    back); the cached variant runs the same jobs under
    :func:`run_chain`.  Both outputs are asserted record-identical — the
    speedup is only meaningful if the cache changed no byte of the
    answer.
    """
    from repro.mapreduce.chain import ChainStage, _make_engine, run_chain
    from repro.mapreduce.runtime import LocalCluster
    from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

    clicks = list(
        generate_clicks(
            ClickStreamConfig(
                num_clicks=NUM_CLICKS, num_users=400, num_urls=200, seed=21
            )
        )
    )

    uncached = LocalCluster(num_nodes=NUM_NODES, block_size=BLOCK_SIZE)
    uncached.hdfs.write_records("clicks/in", clicks)
    busy0 = _cluster_busy(uncached)
    stage1, stage2 = _jobs()
    _make_engine(ChainStage(stage1, "onepass"), uncached, None, None).run(stage1)
    _make_engine(ChainStage(stage2, "onepass"), uncached, None, None).run(stage2)
    uncached_out = list(uncached.hdfs.read_records("clicks/out"))
    uncached_busy = _cluster_busy(uncached) - busy0

    cached = LocalCluster(num_nodes=NUM_NODES, block_size=BLOCK_SIZE)
    cached.hdfs.write_records("clicks/in", clicks)
    busy0 = _cluster_busy(cached)
    stage1, stage2 = _jobs()
    chain = run_chain(
        cached, [ChainStage(stage1, "onepass"), ChainStage(stage2, "onepass")]
    )
    cached_out = list(cached.hdfs.read_records("clicks/out"))
    cached_busy = _cluster_busy(cached) - busy0

    assert cached_out == uncached_out, "cache changed the chain's output"
    assert chain.counters["cache.hits"] > 0, "chain never hit the cache"

    return {
        "num_clicks": NUM_CLICKS,
        "block_size_bytes": BLOCK_SIZE,
        "num_nodes": NUM_NODES,
        "uncached_disk_busy_s": round(uncached_busy, 4),
        "cached_disk_busy_s": round(cached_busy, 4),
        "speedup": round(uncached_busy / cached_busy, 4),
        "cache_hits": int(chain.counters["cache.hits"]),
        "min_speedup": MIN_SPEEDUP,
    }


def _report(record: dict[str, float]) -> None:
    print(
        f"chained pipeline ({record['num_clicks']} clicks, "
        f"{record['block_size_bytes'] // 1024} KiB blocks, "
        f"{record['num_nodes']} nodes):"
    )
    print(f"  uncached disk busy  {record['uncached_disk_busy_s']:8.4f} s")
    print(f"  cached disk busy    {record['cached_disk_busy_s']:8.4f} s")
    print(f"  speedup             {record['speedup']:8.2f} x  (required >= {MIN_SPEEDUP})")
    print(f"  cache hits          {record['cache_hits']:8d}")


def cmd_write(path: Path) -> int:
    record = run_bench()
    _report(record)
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["chained_pipeline"] = record
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"recorded chained_pipeline into {path}")
    return 0 if record["speedup"] >= MIN_SPEEDUP else 1


def cmd_check(path: Path) -> int:
    record = run_bench()
    _report(record)
    if record["speedup"] < MIN_SPEEDUP:
        print(
            f"\nchained pipeline speedup {record['speedup']:.2f}x "
            f"below required {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"\nchained pipeline speedup holds >= {MIN_SPEEDUP}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="record into the baseline")
    mode.add_argument("--check", action="store_true", help="verify the 2x gate")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)
    return cmd_write(args.baseline) if args.write else cmd_check(args.baseline)


if __name__ == "__main__":
    sys.exit(main())

"""Ablation A3 — key skew vs the frequent-key cache's effectiveness.

The hot-set design only pays off when frequencies are skewed ("hot keys
are typically of greater importance to the users"); on uniform keys a
frequency-managed cache cannot beat the churn it causes.  Sweeping the
Zipf exponent verifies both ends.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table, human_bytes
from repro.core.aggregates import SUM
from repro.core.hotset import HotSetIncrementalHash
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.workloads.zipf import ZipfSampler

N_UPDATES = 80_000
N_KEYS = 8_000
CAPACITY = 800
SKEWS = (0.0, 0.8, 1.2, 1.6)


def _run(skew: float):
    sampler = ZipfSampler(N_KEYS, skew, seed=31)
    disk = LocalDisk()
    counters = Counters()
    hs = HotSetIncrementalHash(
        SUM, disk, "hot", capacity=CAPACITY, counters=counters
    )
    expected: dict[int, int] = {}
    for key in (int(k) for k in sampler.draw(N_UPDATES)):
        hs.update(key, 1)
        expected[key] = expected.get(key, 0) + 1
    correct = dict(hs.results()) == expected
    hits = counters[C.HOT_HITS]
    misses = counters[C.HOT_MISSES]
    return {
        "correct": correct,
        "hit_rate": hits / (hits + misses),
        "spill": counters[C.REDUCE_SPILL_BYTES],
        "evictions": int(counters[C.HOT_EVICTIONS]),
    }


def test_skew_sweep(benchmark, reports):
    def experiment():
        return {skew: _run(skew) for skew in SKEWS}

    rows = run_once(benchmark, experiment)

    report = ExperimentReport(
        "A3",
        "Ablation: key skew vs hot-set effectiveness",
        setup=f"{N_UPDATES} updates over {N_KEYS} keys, capacity {CAPACITY} "
        f"(10% of keys), Zipf s in {SKEWS}",
    )
    report.observe(
        "exact at every skew",
        "cold replay preserves answers",
        str(all(r["correct"] for r in rows.values())),
        all(r["correct"] for r in rows.values()),
    )
    hit_rates = {s: rows[s]["hit_rate"] for s in SKEWS}
    report.observe(
        "hit rate grows with skew",
        "frequent keys only exist under skew",
        {s: f"{h:.0%}" for s, h in hit_rates.items()},
        hit_rates[0.0] < hit_rates[0.8] < hit_rates[1.2] < hit_rates[1.6],
    )
    spills = {s: rows[s]["spill"] for s in SKEWS}
    report.observe(
        "spill shrinks with skew",
        "hot mass stays in memory",
        {s: human_bytes(b) for s, b in spills.items()},
        spills[1.6] < spills[1.2] < spills[0.8] <= spills[0.0] * 1.05,
    )
    report.observe(
        "uniform keys gain little",
        "cache cannot beat uniform churn",
        f"hit rate {hit_rates[0.0]:.0%} ~= capacity/keys = {CAPACITY / N_KEYS:.0%} "
        "(plus in-block repeats)",
        hit_rates[0.0] < 0.45,
    )
    report.note(
        format_table(
            ("zipf s", "hit rate", "spill", "evictions"),
            [
                (s, f"{rows[s]['hit_rate']:.0%}", human_bytes(rows[s]["spill"]), rows[s]["evictions"])
                for s in SKEWS
            ],
        )
    )
    reports(report)
    assert report.all_hold

"""§III.B.2 — the cost of the synchronous map-output write (X2).

The paper measured the blocking map-output write at 1.3 s of a 21.6 s
average map task (~6%) and concluded it is not a bottleneck.  We measure
the same fraction in the simulator (where task phases have explicit
durations) and verify the real engine's accounting agrees that map-output
writes are a small share of intermediate I/O time.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import human_time
from repro.simulator import CLUSTER_2011, SESSIONIZATION, HadoopPipeline
from repro.simulator.calibration import MB


def test_map_output_write_share(benchmark, reports):
    result = run_once(
        benchmark,
        lambda: HadoopPipeline(CLUSTER_2011, SESSIONIZATION, metric_bucket=60.0).run(),
    )
    map_spans = result.task_log.phase_spans("map")
    avg_task = sum(s.end - s.start for s in map_spans) / len(map_spans)

    # The write itself: one 67 MB synchronous write per task; under map-phase
    # contention it is served interleaved, so use the interleaved rate.
    out_bytes = result.profile.input_bytes * result.profile.map_output_ratio / len(map_spans)
    spec = result.spec
    interleaved_rate = 1.0 / (1.0 / spec.hdd_bandwidth + spec.hdd_seek / MB)
    write_time = out_bytes / interleaved_rate

    report = ExperimentReport(
        "X2",
        "§III.B.2 cost of the synchronous map-output write",
        setup="simulator, sessionization at paper scale",
    )
    report.observe(
        "average map task duration",
        "21.6 s",
        human_time(avg_task),
        10 <= avg_task <= 45,
    )
    share = write_time / avg_task
    report.observe(
        "map-output write share of task time",
        "~6% (1.3 s of 21.6 s)",
        f"{share:.0%} ({write_time:.1f} s of {avg_task:.1f} s)",
        share < 0.25,
    )
    report.observe(
        "conclusion: not a significant contribution",
        "no bottleneck from the synchronous write",
        "write is a minor slice of the task",
        share < 0.25,
    )
    report.note(
        "the paper notes MapReduce Online's asynchronous pipelining could "
        "hide even this slice; our HOP pipeline pushes output as chunks "
        "instead of writing a task-final file"
    )
    reports(report)
    assert report.all_hold

"""§V — the prototype results: hash-based engine vs tuned stock Hadoop.

Paper claims:

* "The hash-based system can save up to 48% of CPU cycles, and up to 53%
  of running time."
* "The I/O cost due to internal data spills in the reduce phase can be
  reduced by three orders of magnitude when the frequent algorithm is
  used together with hashing."

Measured on the *real* engines at laptop scale.  CPU is measured as
process CPU time around each run (both engines execute in-process, so
this is the figure of merit the paper's CPU-cycle profiling corresponds
to).  The group-by-dominated regime (no combiner, reduce memory smaller
than the shuffled data) is where sort-merge's costs are fully exposed —
the regime of the paper's sessionization headline; the combiner regime is
reported as well for honesty.  Cross-checked at paper scale on the
simulator (S5b).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import human_bytes, human_time
from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.simulator import (
    CLUSTER_2011,
    PER_USER_COUNT,
    SESSIONIZATION,
    HadoopPipeline,
    OnePassPipeline,
)
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.per_user_count import (
    per_user_count_job,
    per_user_count_onepass_job,
    reference_user_counts,
)


@pytest.fixture(scope="module")
def skewed_clicks():
    """A heavily skewed stream: hot users dominate, as in real click logs."""
    return list(
        generate_clicks(
            ClickStreamConfig(
                num_clicks=400_000, num_users=20_000, num_urls=500, user_skew=1.5
            )
        )
    )


def _loaded_cluster(clicks):
    cluster = LocalCluster(num_nodes=3, block_size=512 * 1024)
    cluster.hdfs.write_records("in", clicks)
    return cluster


def _timed_run(cluster, run_job):
    """Run a pre-loaded job measuring process CPU time and wall time.

    Data loading happens before the clock starts: the paper's comparison is
    about query execution, and both engines read the same HDFS blocks.
    """
    t_cpu = time.process_time()
    t_wall = time.perf_counter()
    result = run_job(cluster)
    return {
        "cluster": cluster,
        "result": result,
        "cpu": time.process_time() - t_cpu,
        "wall": time.perf_counter() - t_wall,
    }


def _sortmerge(clicks, *, with_combiner):
    def run_job(cluster):
        job = per_user_count_job(
            "in", "out", with_combiner=with_combiner
        ).with_config(reduce_buffer_bytes=64 * 1024, num_reducers=2)
        return HadoopEngine(cluster).run(job)

    return _timed_run(_loaded_cluster(clicks), run_job)


def _onepass(clicks, *, mode, capacity=1_500, map_side_combine=False):
    def run_job(cluster):
        cfg = OnePassConfig(
            mode=mode,
            hotset_capacity=capacity,
            num_reducers=2,
            map_side_combine=map_side_combine,
        )
        job = per_user_count_onepass_job("in", "out", config=cfg)
        return OnePassEngine(cluster).run(job)

    return _timed_run(_loaded_cluster(clicks), run_job)


def test_sec5_cpu_and_time_savings(benchmark, reports, skewed_clicks):
    def experiment():
        sm = _sortmerge(skewed_clicks, with_combiner=False)
        op = _onepass(skewed_clicks, mode="incremental")
        sm_c = _sortmerge(skewed_clicks, with_combiner=True)
        op_c = _onepass(
            skewed_clicks, mode="incremental", map_side_combine=True
        )
        ref = reference_user_counts(skewed_clicks)
        ok = all(
            dict(r["cluster"].hdfs.read_records("out")) == ref
            for r in (sm, op, sm_c, op_c)
        )
        return sm, op, sm_c, op_c, ok

    sm, op, sm_c, op_c, correct = run_once(benchmark, experiment)
    cpu_saving = 1 - op["cpu"] / sm["cpu"]
    time_saving = 1 - op["wall"] / sm["wall"]

    report = ExperimentReport(
        "S5",
        "§V prototype: hash engine vs sort-merge (real engines)",
        setup="per-user count, 400k clicks, Zipf 1.5, reduce memory < data; "
        "group-by path isolated (no combiner), plus the combiner regime",
    )
    report.observe("all four runs exact", "same answers", str(correct), correct)
    report.observe(
        "CPU cycles saved (group-by path)",
        "up to 48%",
        f"{cpu_saving:.0%} ({sm['cpu']:.2f}s -> {op['cpu']:.2f}s process CPU)",
        cpu_saving >= 0.25,
    )
    report.observe(
        "running time saved (group-by path)",
        "up to 53%",
        f"{time_saving:.0%} ({human_time(sm['wall'])} -> {human_time(op['wall'])})",
        time_saving >= 0.25,
    )
    report.observe(
        "sorting eliminated",
        "hash only",
        f"{sm['result'].counters[C.T_SORT]:.2f}s -> "
        f"{op['result'].counters[C.T_SORT]:.2f}s sort CPU",
        op["result"].counters[C.T_SORT] == 0,
    )
    report.observe(
        "reduce-side spill eliminated when states fit",
        "in-memory incremental processing",
        f"{human_bytes(sm['result'].counters[C.REDUCE_SPILL_BYTES] + sm['result'].counters[C.MERGE_WRITE_BYTES])} "
        f"-> {human_bytes(op['result'].counters[C.REDUCE_SPILL_BYTES])}",
        op["result"].counters[C.REDUCE_SPILL_BYTES] == 0,
    )
    combiner_gap = 1 - op_c["wall"] / sm_c["wall"]
    report.note(
        "combiner regime (both engines combining): "
        f"{sm_c['wall']:.2f}s vs {op_c['wall']:.2f}s wall "
        f"({combiner_gap:+.0%}) — when the combiner already collapses the "
        "data, the two engines converge, consistent with the paper's 'up "
        "to' phrasing (its headline gains come from group-by-dominated "
        "workloads)"
    )
    reports(report)
    assert report.all_hold


def test_sec5_frequent_algorithm_spill_reduction(benchmark, reports, skewed_clicks):
    def experiment():
        sm = _sortmerge(skewed_clicks, with_combiner=False)
        hot = _onepass(skewed_clicks, mode="hotset", capacity=1_500)
        ref = reference_user_counts(skewed_clicks)
        ok = dict(hot["cluster"].hdfs.read_records("out")) == ref
        return sm, hot, ok

    sm, hot, correct = run_once(benchmark, experiment)
    sm_spill = (
        sm["result"].counters[C.REDUCE_SPILL_BYTES]
        + sm["result"].counters[C.MERGE_WRITE_BYTES]
    )
    hot_spill = hot["result"].counters[C.REDUCE_SPILL_BYTES]
    reduction = sm_spill / hot_spill if hot_spill else float("inf")

    report = ExperimentReport(
        "S5c",
        "§V frequent algorithm: reduce-phase spill I/O",
        setup="hot-set capacity 1,500/reducer vs ~2,900 distinct keys/reducer "
        "(memory cannot hold all states)",
    )
    report.observe("hot-set run exact", "approximate early, exact final", str(correct), correct)
    report.observe(
        "reduce-phase spill reduced by orders of magnitude",
        "~1000x at paper scale",
        f"{reduction:,.0f}x ({human_bytes(sm_spill)} -> {human_bytes(hot_spill)})",
        reduction >= 25,
    )
    hits = hot["result"].counters[C.HOT_HITS]
    misses = hot["result"].counters[C.HOT_MISSES]
    report.observe(
        "hot keys absorb the stream",
        "frequent keys stay in memory",
        f"{hits / (hits + misses):.1%} of updates hit resident states",
        hits > 9 * misses,
    )
    approx = hot["result"].extras["approximate_results"]
    report.observe(
        "early (approximate) answers for hot keys",
        "available when input ends, before finalisation",
        f"{len(approx)} hot keys reported",
        len(approx) > 0,
    )
    report.note(
        "the full 3-orders reduction requires the paper's scale: with 3,773 "
        "blocks every hot key recurs thousands of times per reducer, so the "
        "cold residue is vanishingly small relative to the spilled stream; "
        f"at {len(skewed_clicks)} clicks over 25 blocks we measure "
        f"{reduction:,.0f}x, and S5b shows elimination when states fit"
    )
    reports(report)
    assert report.all_hold


def test_sec5_simulator_scale(benchmark, reports):
    def experiment():
        out = {}
        for profile in (PER_USER_COUNT, SESSIONIZATION):
            sm = HadoopPipeline(CLUSTER_2011, profile, metric_bucket=60.0).run()
            op = OnePassPipeline(CLUSTER_2011, profile, metric_bucket=60.0).run()
            out[profile.name] = (sm, op)
        return out

    results = run_once(benchmark, experiment)
    report = ExperimentReport(
        "S5b",
        "§V at paper scale (simulator)",
        setup="10 nodes, full inputs, sort-merge vs one-pass pipeline",
    )
    for name, (sm, op) in results.items():
        saving = 1 - op.makespan / sm.makespan
        report.observe(
            f"{name} running-time saving",
            "up to 53%",
            f"{sm.completion_minutes:.0f} -> {op.completion_minutes:.0f} min "
            f"({saving:.0%})",
            0.15 <= saving <= 0.65,
        )
    puc_sm, puc_op = results["per-user-count"]
    report.observe(
        "counting workload: reduce spill eliminated when states fit",
        "in-memory processing",
        f"{puc_sm.totals.reduce_spill_bytes / 1e9:.1f} GB -> "
        f"{puc_op.totals.reduce_spill_bytes / 1e9:.1f} GB",
        puc_op.totals.reduce_spill_bytes == 0,
    )
    sess_sm, sess_op = results["sessionization"]
    report.observe(
        "holistic workload: no multi-pass merge even when spilling",
        "single write + single read",
        f"merge passes {sess_sm.totals.merge_passes} -> "
        f"{sess_op.totals.merge_passes}",
        sess_op.totals.merge_passes == 0 and sess_sm.totals.merge_passes > 0,
    )
    reports(report)
    assert report.all_hold

"""Table I — workloads, data volumes and completion times.

Two halves, as in the design document:

* **data-volume rows** (map output, reduce spill, intermediate/input,
  output) measured on the *real* engine at laptop scale — ratios are
  scale-free, so they must land near the paper's;
* **completion-time rows** from the calibrated simulator at the paper's
  full input sizes on the 10-node cluster model.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table, human_time
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.simulator import (
    CLUSTER_2011,
    INVERTED_INDEX,
    PAGE_FREQUENCY,
    PER_USER_COUNT,
    SESSIONIZATION,
    HadoopPipeline,
)
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.documents import DocumentConfig, generate_documents
from repro.workloads.inverted_index import inverted_index_job
from repro.workloads.page_frequency import page_frequency_job
from repro.workloads.per_user_count import per_user_count_job
from repro.workloads.sessionization import sessionization_job

#: Paper rows: (workload, intermediate/input %, completion minutes).
PAPER_ROWS = {
    "sessionization": (250.0, 76),
    "page-frequency": (0.4, 40),
    "per-user-count": (1.0, 24),
    "inverted-index": (70.0, 118),
}


def _run_real_engine(job_builder, records):
    cluster = LocalCluster(num_nodes=3, block_size=256 * 1024)
    cluster.hdfs.write_records("in", records)
    job = job_builder("in", "out").with_config(reduce_buffer_bytes=256 * 1024)
    result = HadoopEngine(cluster).run(job)
    c = result.counters
    input_bytes = c[C.MAP_INPUT_BYTES]
    intermediate = c[C.MAP_OUTPUT_BYTES] + c[C.REDUCE_SPILL_BYTES]
    return {
        "input": input_bytes,
        "map_output": c[C.MAP_OUTPUT_BYTES],
        "reduce_spill": c[C.REDUCE_SPILL_BYTES],
        "intermediate_ratio": 100.0 * intermediate / input_bytes,
        "output": c[C.OUTPUT_BYTES],
        "map_tasks": int(c[C.MAP_TASKS]),
        "reduce_tasks": int(c[C.REDUCE_TASKS]),
    }


@pytest.fixture(scope="module")
def click_records():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=60_000, num_users=1_000, num_urls=600)
        )
    )


@pytest.fixture(scope="module")
def document_records():
    # markup_per_word models GOV2's HTML boilerplate: bytes in, no postings out.
    return list(
        generate_documents(
            DocumentConfig(
                num_docs=800, vocab_size=6_000, mean_doc_words=80, markup_per_word=8.0
            )
        )
    )


def test_table1_data_volumes(benchmark, reports, click_records, document_records):
    def experiment():
        return {
            "sessionization": _run_real_engine(
                lambda i, o: sessionization_job(i, o, gap=5.0), click_records
            ),
            "page-frequency": _run_real_engine(page_frequency_job, click_records),
            "per-user-count": _run_real_engine(per_user_count_job, click_records),
            "inverted-index": _run_real_engine(inverted_index_job, document_records),
        }

    rows = run_once(benchmark, experiment)

    report = ExperimentReport(
        "T1a",
        "Table I data volumes (real engine, laptop scale)",
        setup="3 nodes, 256 KB blocks, 60k clicks / 800 HTML-like docs",
    )
    # Sessionization: intermediate far exceeds input (paper: 250%).
    report.observe(
        "sessionization intermediate/input",
        "250% (dominant)",
        f"{rows['sessionization']['intermediate_ratio']:.0f}%",
        rows["sessionization"]["intermediate_ratio"] > 100,
    )
    # Counting workloads: combiner collapses intermediate data (<2%... paper
    # 0.4% / 1.0%; at laptop scale blocks are tiny so a few % is the bound).
    for name, bound in (("page-frequency", 15), ("per-user-count", 15)):
        report.observe(
            f"{name} intermediate/input",
            f"{PAPER_ROWS[name][0]}% (tiny)",
            f"{rows[name]['intermediate_ratio']:.1f}%",
            rows[name]["intermediate_ratio"] < bound,
        )
    # Inverted index: substantial intermediate data, well below
    # sessionization's.  (Our per-pair pickle framing carries more overhead
    # than the paper's byte-array runtime, so the absolute ratio runs above
    # the paper's 70%; the shape — substantial but far below sessionization
    # — is what we check.)
    ratio = rows["inverted-index"]["intermediate_ratio"]
    report.observe(
        "inverted-index intermediate/input",
        "70% (substantial, below sessionization)",
        f"{ratio:.0f}%",
        20 < ratio < 160,
    )
    # Ordering: sessionization >> inverted index >> counting workloads.
    report.observe(
        "intermediate-ratio ordering",
        "sessionization > inverted-index > counting",
        "measured ordering",
        rows["sessionization"]["intermediate_ratio"]
        > rows["inverted-index"]["intermediate_ratio"]
        > rows["page-frequency"]["intermediate_ratio"],
    )
    report.note(
        format_table(
            ("workload", "interm/input %", "map tasks", "reduce tasks"),
            [
                (n, f"{r['intermediate_ratio']:.1f}", r["map_tasks"], r["reduce_tasks"])
                for n, r in rows.items()
            ],
        )
    )
    reports(report)
    assert report.all_hold


def test_table1_completion_times(benchmark, reports):
    profiles = {
        "sessionization": SESSIONIZATION,
        "page-frequency": PAGE_FREQUENCY,
        "per-user-count": PER_USER_COUNT,
        "inverted-index": INVERTED_INDEX,
    }

    def experiment():
        return {
            name: HadoopPipeline(CLUSTER_2011, profile, metric_bucket=60.0).run()
            for name, profile in profiles.items()
        }

    results = run_once(benchmark, experiment)

    report = ExperimentReport(
        "T1b",
        "Table I completion times (simulator, paper scale)",
        setup="10 nodes, 64 MB blocks, 40 reducers, full input sizes",
    )
    for name, result in results.items():
        paper_min = PAPER_ROWS[name][1]
        measured_min = result.completion_minutes
        report.observe(
            f"{name} completion",
            f"{paper_min} min",
            human_time(result.makespan),
            0.6 * paper_min <= measured_min <= 1.4 * paper_min,
        )
    ordering = sorted(results, key=lambda n: results[n].makespan)
    report.observe(
        "completion ordering",
        "per-user < page-freq < sessionization < inverted-index",
        " < ".join(ordering),
        ordering
        == ["per-user-count", "page-frequency", "sessionization", "inverted-index"],
    )
    reports(report)
    assert report.all_hold

"""Table III — capability matrix: Hadoop vs MR Online vs the ideal system.

The paper's table is qualitative; we make each cell *testable* by running
the three engines on the same workload and checking the behaviour the cell
claims: group-by implementation (sort vs hash), shuffle style, incremental
output, and in-memory processing.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.core.engine import OnePassConfig, OnePassEngine
from repro.core.incremental import count_threshold_policy
from repro.mapreduce.counters import C
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.page_frequency import (
    page_frequency_job,
    page_frequency_onepass_job,
)


@pytest.fixture(scope="module")
def clicks():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=40_000, num_users=1_500, num_urls=500)
        )
    )


def test_table3_capability_matrix(benchmark, reports, clicks):
    def experiment():
        out = {}
        cluster = LocalCluster(num_nodes=3, block_size=128 * 1024)
        cluster.hdfs.write_records("in", clicks)
        # Constrain reduce buffers so the sort-merge engines face the
        # memory regime the paper measured (reduce-side data > buffer);
        # the one-pass engine's per-key states still fit comfortably —
        # that asymmetry is Table III's in-memory row.
        out["hadoop"] = HadoopEngine(cluster).run(
            page_frequency_job("in", "o1", with_combiner=False).with_config(
                reduce_buffer_bytes=64 * 1024
            )
        )
        out["hop"] = HOPEngine(
            cluster, hop_config=HOPConfig(snapshot_fractions=(0.5,))
        ).run(
            page_frequency_job("in", "o2", with_combiner=False).with_config(
                reduce_buffer_bytes=64 * 1024
            )
        )
        job = page_frequency_onepass_job(
            "in",
            "o3",
            config=OnePassConfig(mode="incremental", map_side_combine=False),
        )
        job.emit_policy = count_threshold_policy(10)
        out["onepass"] = OnePassEngine(cluster).run(job)
        return out

    results = run_once(benchmark, experiment)
    hadoop, hop, onepass = results["hadoop"], results["hop"], results["onepass"]

    report = ExperimentReport(
        "T3",
        "Table III capability matrix, measured",
        setup="same page-frequency job on all three engines",
    )
    # Row 1: group-by implementation.
    report.observe(
        "Hadoop group-by",
        "sort-merge",
        f"sort records={int(hadoop.counters[C.SORT_RECORDS])}",
        hadoop.counters[C.SORT_RECORDS] > 0 and hadoop.counters[C.T_HASH] == 0,
    )
    report.observe(
        "MR Online group-by",
        "sort-merge",
        f"sort records={int(hop.counters[C.SORT_RECORDS])}",
        hop.counters[C.SORT_RECORDS] > 0,
    )
    report.observe(
        "One-pass group-by",
        "hash only",
        f"sort records={int(onepass.counters[C.SORT_RECORDS])}, "
        f"hash probes={int(onepass.counters[C.HASH_PROBES])}",
        onepass.counters[C.SORT_RECORDS] == 0
        and onepass.counters[C.HASH_PROBES] > 0,
    )
    # Row 2: incremental processing.
    report.observe(
        "Hadoop incremental output",
        "no",
        f"snapshots={int(hadoop.counters[C.SNAPSHOTS])}, early=absent",
        hadoop.counters[C.SNAPSHOTS] == 0 and not hadoop.snapshots,
    )
    report.observe(
        "MR Online incremental output",
        "periodic snapshots only",
        f"snapshots={len(hop.snapshots)} (re-merged)",
        len(hop.snapshots) == 1 and hop.counters[C.SNAPSHOTS] > 0,
    )
    early = onepass.extras["early_emitted"]
    report.observe(
        "One-pass incremental output",
        "fully incremental",
        f"{len(early)} groups emitted at threshold crossing",
        len(early) > 0,
    )
    # Row 3: in-memory processing (no reduce-side disk traffic when the
    # states fit; the sort-merge engines spill regardless).
    report.observe(
        "One-pass in-memory when data < memory",
        "yes",
        f"reduce spill={int(onepass.counters[C.REDUCE_SPILL_BYTES])} B",
        onepass.counters[C.REDUCE_SPILL_BYTES] == 0,
    )
    report.observe(
        "sort-merge engines spill even so",
        "no in-memory guarantee",
        f"hadoop spill={int(hadoop.counters[C.REDUCE_SPILL_BYTES])} B, "
        f"hop merge reads={int(hop.counters[C.MERGE_READ_BYTES])} B",
        hop.counters[C.MERGE_READ_BYTES] > 0,
    )
    report.note(
        format_table(
            ("engine", "sort recs", "hash probes", "snapshots", "early emits"),
            [
                (
                    name,
                    int(r.counters[C.SORT_RECORDS]),
                    int(r.counters[C.HASH_PROBES]),
                    int(r.counters[C.SNAPSHOTS]),
                    int(r.counters[C.EARLY_EMITS]),
                )
                for name, r in results.items()
            ],
        )
    )
    reports(report)
    assert report.all_hold

"""Ablation A5 — hot-set capacity: how much memory do hot keys need?

Sweeps the frequent-key cache's capacity from 1% to 100% of the distinct
keys on a skewed stream.  The design claim: because the Zipf mass
concentrates, a small capacity already absorbs most updates — the
hit-rate curve saturates long before capacity reaches the key count, and
spill falls off correspondingly.  This is the quantitative case for
"memory for important groups" over "memory for all groups".
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table, human_bytes
from repro.core.aggregates import SUM
from repro.core.hotset import HotSetIncrementalHash
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.workloads.zipf import ZipfSampler

N_UPDATES = 100_000
N_KEYS = 10_000
SKEW = 1.3
CAPACITIES = (100, 500, 1_000, 2_500, 10_000)


def _run(stream, capacity):
    counters = Counters()
    hs = HotSetIncrementalHash(
        SUM, LocalDisk(), "hot", capacity=capacity, counters=counters
    )
    for key in stream:
        hs.update(key, 1)
    list(hs.results())
    hits = counters[C.HOT_HITS]
    misses = counters[C.HOT_MISSES]
    return {
        "hit_rate": hits / (hits + misses),
        "spill": counters[C.REDUCE_SPILL_BYTES],
    }


def test_hotset_capacity_sweep(benchmark, reports):
    stream = [int(k) for k in ZipfSampler(N_KEYS, SKEW, seed=19).draw(N_UPDATES)]

    def experiment():
        return {cap: _run(stream, cap) for cap in CAPACITIES}

    rows = run_once(benchmark, experiment)
    hit = {c: rows[c]["hit_rate"] for c in CAPACITIES}
    spill = {c: rows[c]["spill"] for c in CAPACITIES}

    report = ExperimentReport(
        "A5",
        "Ablation: hot-set capacity vs hit rate and spill",
        setup=f"{N_UPDATES} updates over {N_KEYS} keys, Zipf {SKEW}",
    )
    report.observe(
        "hit rate monotone in capacity",
        "more resident states never hurt",
        {c: f"{h:.0%}" for c, h in hit.items()},
        all(hit[a] <= hit[b] + 1e-9 for a, b in zip(CAPACITIES, CAPACITIES[1:])),
    )
    report.observe(
        "1% capacity already absorbs most of the stream",
        "Zipf mass concentrates on hot keys",
        f"{hit[100]:.0%} hit rate at capacity 100",
        hit[100] > 0.5,
    )
    report.observe(
        "saturation well before full capacity",
        "diminishing returns past the hot mass",
        f"{hit[2_500]:.0%} at 25% capacity vs {hit[10_000]:.0%} at 100%",
        hit[2_500] > 0.95 * hit[10_000],
    )
    report.observe(
        "full capacity eliminates spill",
        "in-memory processing when states fit",
        human_bytes(spill[10_000]),
        spill[10_000] == 0,
    )
    report.observe(
        "spill falls monotonically with capacity",
        "graceful memory/IO trade",
        {c: human_bytes(s) for c, s in spill.items()},
        all(
            spill[a] >= spill[b] for a, b in zip(CAPACITIES, CAPACITIES[1:])
        ),
    )
    report.note(
        format_table(
            ("capacity", "% of keys", "hit rate", "spill"),
            [
                (c, f"{100 * c / N_KEYS:.0f}%", f"{hit[c]:.1%}", human_bytes(spill[c]))
                for c in CAPACITIES
            ],
        )
    )
    reports(report)
    assert report.all_hold

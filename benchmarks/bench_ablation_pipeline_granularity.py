"""Ablation A4 — HOP's pipelining granularity.

The paper hypothesises that "MapReduce Online transmits map output eagerly
in finer granularity and hence increases network cost".  Sweeping the push
granularity on the simulator (message counts, completion time) and the real
engine (identical answers, work redistribution) quantifies the trade.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_table
from repro.mapreduce.counters import C
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import LocalCluster
from repro.simulator import (
    GB,
    SESSIONIZATION,
    ClusterSpec,
    HOPPipeline,
    HOPSimConfig,
)
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.page_frequency import page_frequency_job, reference_page_counts

GRANULARITIES_MB = (1, 4, 16)


def test_granularity_simulator(benchmark, reports):
    profile = SESSIONIZATION.scaled(64 * GB)

    def experiment():
        out = {}
        for g in GRANULARITIES_MB:
            hop = HOPSimConfig(
                granularity_bytes=g * 1024 * 1024, snapshot_fractions=()
            )
            out[g] = HOPPipeline(
                ClusterSpec(), profile, hop=hop, metric_bucket=30.0
            ).run()
        return out

    results = run_once(benchmark, experiment)
    messages = {g: r.totals.network_messages for g, r in results.items()}
    times = {g: r.completion_minutes for g, r in results.items()}

    report = ExperimentReport(
        "A4",
        "Ablation: HOP pipelining granularity (simulator)",
        setup="sessionization 64 GB, snapshots off, chunk size in "
        f"{GRANULARITIES_MB} MB",
    )
    report.observe(
        "finer granularity multiplies network messages",
        "eager transmission in finer granularity",
        {f"{g} MB": m for g, m in messages.items()},
        messages[1] > 3 * messages[4] > 9 * messages[16] / 4,
    )
    report.observe(
        "no completion-time benefit from finer chunks",
        "increases network cost without speedup",
        {f"{g} MB": f"{t:.1f} min" for g, t in times.items()},
        times[1] >= 0.95 * times[16],
    )
    report.note(
        format_table(
            ("granularity", "messages", "completion"),
            [(f"{g} MB", messages[g], f"{times[g]:.1f} min") for g in GRANULARITIES_MB],
        )
    )
    reports(report)
    assert report.all_hold


@pytest.fixture(scope="module")
def clicks():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=40_000, num_users=1_500, num_urls=400)
        )
    )


def test_granularity_real_engine(benchmark, reports, clicks):
    grans = (100, 1_000, 10_000)

    def experiment():
        out = {}
        ref = reference_page_counts(clicks)
        for g in grans:
            cluster = LocalCluster(num_nodes=3, block_size=96 * 1024)
            cluster.hdfs.write_records("in", clicks)
            result = HOPEngine(
                cluster,
                hop_config=HOPConfig(granularity_records=g, snapshot_fractions=()),
            ).run(page_frequency_job("in", "out", with_combiner=False))
            assert dict(cluster.hdfs.read_records("out")) == ref
            out[g] = result
        return out

    results = run_once(benchmark, experiment)
    report = ExperimentReport(
        "A4b",
        "Ablation: HOP granularity (real engine)",
        setup="page frequency, 40k clicks, chunk of 100/1k/10k records",
    )
    report.observe(
        "answers identical at every granularity",
        "granularity is a performance knob only",
        "checked in-loop",
        True,
    )
    sorts = {g: int(r.counters[C.SORT_RECORDS]) for g, r in results.items()}
    report.observe(
        "total records sorted unchanged",
        "pipelining only redistributes work",
        sorts,
        len(set(sorts.values())) == 1,
    )
    shuffles = {g: int(r.counters[C.SHUFFLE_BYTES]) for g, r in results.items()}
    report.observe(
        "shuffle volume roughly constant",
        "same data moves regardless of chunking",
        shuffles,
        max(shuffles.values()) < 1.5 * min(shuffles.values()),
    )
    reports(report)
    assert report.all_hold

"""Extension E1 — the streaming layer the paper's platform aims at.

Not a paper artifact: this characterises the stream-processing extension
(`repro.core.streaming`) built from §IV's goal statement.  Three checks:

* streaming a click log record-by-record produces *exactly* the batch
  engine's answers (one-pass semantics are ingestion-order independent);
* pipelined answers really are pipelined: threshold alerts fire mid-stream
  at the crossing record, with zero additional I/O;
* windowed trending over tweets emits each window as the watermark passes
  it, and window totals re-assemble the global counts.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import ExperimentReport
from repro.core.aggregates import COUNT
from repro.core.incremental import count_threshold_policy
from repro.core.streaming import StreamProcessor, TumblingWindowProcessor
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.page_frequency import reference_page_counts
from repro.workloads.twitter import (
    TweetConfig,
    generate_tweets,
    hashtag_map,
    reference_hashtag_counts,
)


def url_map(click):
    yield (click[2], 1)


@pytest.fixture(scope="module")
def clicks():
    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=100_000, num_users=2_000, num_urls=500)
        )
    )


def test_streaming_matches_batch(benchmark, reports, clicks):
    def experiment():
        sp = StreamProcessor(url_map, COUNT, num_partitions=4)
        t0 = time.perf_counter()
        sp.push_many(clicks)
        elapsed = time.perf_counter() - t0
        return sp.finish(), elapsed

    final, elapsed = run_once(benchmark, experiment)
    report = ExperimentReport(
        "E1a",
        "Streaming extension: push-based processing, no data loading",
        setup="100k clicks pushed one at a time, 4 partitions",
    )
    report.observe(
        "stream answers equal batch answers",
        "same group-by semantics",
        str(final == reference_page_counts(clicks)),
        final == reference_page_counts(clicks),
    )
    rate = len(clicks) / elapsed
    report.observe(
        "single-process throughput",
        "interactive rates",
        f"{rate:,.0f} records/s",
        rate > 20_000,
    )
    reports(report)
    assert report.all_hold


def test_streaming_pipelined_alerts(benchmark, reports, clicks):
    threshold = 200

    def experiment():
        fired_at: list[int] = []
        sp = StreamProcessor(
            url_map,
            COUNT,
            emit_policy=count_threshold_policy(threshold),
            on_emit=lambda _k, _r: fired_at.append(sp.records_seen),
        )
        sp.push_many(clicks)
        return fired_at, sp.finish()

    fired_at, final = run_once(benchmark, experiment)
    expected = {u for u, n in reference_page_counts(clicks).items() if n >= threshold}

    report = ExperimentReport(
        "E1b",
        "Streaming extension: incremental threshold query",
        setup=f"alert when a page crosses {threshold} visits",
    )
    report.observe(
        "every qualifying group alerted",
        "fully incremental output",
        f"{len(fired_at)} alerts vs {len(expected)} qualifying groups",
        len(fired_at) == len(expected),
    )
    report.observe(
        "alerts fire mid-stream, not at the end",
        "pipelined answers as data arrives",
        f"first alert after {fired_at[0]:,} of {len(clicks):,} records"
        if fired_at
        else "none",
        bool(fired_at) and fired_at[0] < len(clicks) // 2,
    )
    reports(report)
    assert report.all_hold


def test_streaming_windows(benchmark, reports):
    tweets = list(
        generate_tweets(TweetConfig(num_tweets=30_000, mean_interarrival=0.01))
    )
    width = 30.0

    def experiment():
        emitted: list[tuple[float, dict]] = []
        twp = TumblingWindowProcessor(
            hashtag_map,
            COUNT,
            width=width,
            ts_of=lambda t: t[0],
            on_window=lambda start, counts: emitted.append((start, counts)),
        )
        twp.push_many(tweets)
        open_before_flush = twp.open_windows
        twp.flush()
        return emitted, open_before_flush, twp.late_records

    emitted, open_before_flush, late = run_once(benchmark, experiment)
    merged: dict[str, int] = {}
    for _start, counts in emitted:
        for tag, n in counts.items():
            merged[tag] = merged.get(tag, 0) + n

    report = ExperimentReport(
        "E1c",
        "Streaming extension: tumbling windows with watermarks",
        setup=f"30k tweets, {width:.0f}s windows",
    )
    report.observe(
        "windows emitted by the watermark during the stream",
        "only the open tail remains at end",
        f"{len(emitted) - open_before_flush} emitted live, "
        f"{open_before_flush} flushed at close",
        open_before_flush <= 2,
    )
    report.observe(
        "window starts strictly increasing",
        "in-order emission",
        "checked",
        all(a[0] < b[0] for a, b in zip(emitted, emitted[1:])),
    )
    report.observe(
        "window totals reassemble the global counts",
        "no loss, no duplication",
        str(merged == reference_hashtag_counts(tweets)),
        merged == reference_hashtag_counts(tweets),
    )
    report.observe(
        "no late records on an ordered stream",
        "watermark never regresses",
        str(late),
        late == 0,
    )
    reports(report)
    assert report.all_hold

"""Exporter tests: Chrome trace structure, JSONL, summary, validation."""

import json

from repro.obs.export import (
    TRACE_FORMATS,
    chrome_trace,
    summary_text,
    to_jsonl,
    validate_chrome,
    write_trace,
)
from repro.obs.tracer import Tracer


def sample_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("map", "map", node="n0", task="map:00000", cost=100, records=100):
        with tr.span("sort", "sort", node="n0", task="map:00000", cost=50):
            pass
    with tr.span("fetch", "shuffle", node="n1", task="reduce:000", cost=10, bytes=640):
        pass
    tr.event("task.killed", "recovery", node="n1", task="map:00001", attempt=0)
    with tr.span("reduce", "reduce", node="n1", task="reduce:000", cost=30):
        pass
    tr.add_span("map-phase", "phase", 0, tr.clock, wall_s=0.5)
    return tr


class TestChromeTrace:
    def test_validates(self):
        tr = sample_tracer()
        obj = chrome_trace(tr.spans, tr.events, job_name="test")
        assert validate_chrome(obj) == []

    def test_one_pid_per_node_plus_coordinator(self):
        tr = sample_tracer()
        obj = chrome_trace(tr.spans, tr.events)
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M" and e["name"] == "process_name"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"coordinator", "n0", "n1"}
        pids = [e["pid"] for e in meta]
        assert len(pids) == len(set(pids))

    def test_span_becomes_duration_event(self):
        tr = sample_tracer()
        obj = chrome_trace(tr.spans, tr.events)
        xs = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        m = next(e for e in xs if e["name"] == "fetch")
        assert m["dur"] == 10
        assert m["args"]["task"] == "reduce:000"
        assert "wall_us" in m["args"]

    def test_event_becomes_instant(self):
        tr = sample_tracer()
        obj = chrome_trace(tr.spans, tr.events)
        inst = [e for e in obj["traceEvents"] if e["ph"] == "i"]
        assert inst and inst[0]["name"] == "task.killed"

    def test_json_serialisable(self):
        tr = sample_tracer()
        text = json.dumps(chrome_trace(tr.spans, tr.events))
        assert validate_chrome(json.loads(text)) == []

    def test_validate_rejects_garbage(self):
        assert validate_chrome([]) != []
        assert validate_chrome({}) != []
        assert validate_chrome({"traceEvents": [{"ph": "Z", "name": "x"}]}) != []
        bad_x = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("dur" in e for e in validate_chrome(bad_x))


class TestJsonl:
    def test_one_object_per_line_sorted(self):
        tr = sample_tracer()
        lines = to_jsonl(tr.spans, tr.events).strip().split("\n")
        objs = [json.loads(line) for line in lines]
        assert len(objs) == len(tr.spans) + len(tr.events)
        starts = [o.get("t0", o.get("ts")) for o in objs]
        assert starts == sorted(starts)

    def test_span_and_event_types(self):
        tr = sample_tracer()
        objs = [json.loads(line) for line in to_jsonl(tr.spans, tr.events).strip().split("\n")]
        assert {o["type"] for o in objs} == {"span", "event"}


class TestSummary:
    def test_contains_phases_and_recovery(self):
        tr = sample_tracer()
        text = summary_text(tr.spans, tr.events, job_name="j")
        for needle in ("map", "sort", "shuffle", "reduce", "task.killed"):
            assert needle in text

    def test_clean_run_has_no_recovery_section(self):
        tr = Tracer()
        with tr.span("map", "map", node="n0", cost=10):
            pass
        assert "recovery timeline" not in summary_text(tr.spans, tr.events)


class TestWriteTrace:
    def test_all_formats(self, tmp_path):
        tr = sample_tracer()
        for fmt in TRACE_FORMATS:
            path = tmp_path / f"t.{fmt}"
            write_trace(str(path), fmt, tr.spans, tr.events, job_name="j")
            assert path.read_text()

    def test_chrome_file_validates(self, tmp_path):
        tr = sample_tracer()
        path = tmp_path / "t.json"
        write_trace(str(path), "chrome", tr.spans, tr.events, job_name="j")
        assert validate_chrome(json.loads(path.read_text())) == []

    def test_unknown_format_raises(self, tmp_path):
        tr = sample_tracer()
        try:
            write_trace(str(tmp_path / "t"), "nope", tr.spans, tr.events)
        except ValueError as e:
            assert "nope" in str(e)
        else:
            raise AssertionError("expected ValueError")

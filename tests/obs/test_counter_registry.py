"""Every ``C.<NAME>`` used anywhere in ``src/`` must be declared on ``C``.

A typo in a counter name (``C.MAP_INPUT_RECORD``) would raise only on the
code path that touches it — possibly a rarely-exercised fault path.  This
walks the ASTs of every module under ``src/`` and checks each attribute
access on the counter-registry class against the declared names, so a bad
name fails fast here instead of in production-path-of-the-week.
"""

import ast
from pathlib import Path

from repro.mapreduce.counters import C

SRC = Path(__file__).resolve().parents[2] / "src"


def declared_counter_attrs() -> set[str]:
    return {name for name in vars(C) if not name.startswith("_")}


def counter_attr_uses(tree: ast.AST) -> set[str]:
    """Names accessed as ``C.<name>`` in modules that import C by that name."""
    imports_c = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "repro.mapreduce.counters"
        and any(alias.name == "C" and alias.asname is None for alias in node.names)
        for node in ast.walk(tree)
    )
    if not imports_c:
        return set()
    return {
        node.attr
        for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "C"
    }


def test_all_counter_names_used_in_src_are_declared():
    declared = declared_counter_attrs()
    undeclared: dict[str, set[str]] = {}
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    for path in files:
        tree = ast.parse(path.read_text(), filename=str(path))
        missing = counter_attr_uses(tree) - declared
        if missing:
            undeclared[str(path.relative_to(SRC))] = missing
    assert not undeclared, f"counter names used but not declared on C: {undeclared}"


def test_sweep_actually_sees_counter_uses():
    # Guard against the checker silently matching nothing (e.g. after an
    # import-style change): the known-instrumented modules must register.
    seen = set()
    for path in SRC.rglob("*.py"):
        seen |= counter_attr_uses(ast.parse(path.read_text(), filename=str(path)))
    assert "MAP_INPUT_RECORDS" in seen
    assert "REDUCE_OUTPUT_RECORDS" in seen
    assert len(seen) >= 30


def test_declared_counter_values_are_unique():
    values = [getattr(C, name) for name in declared_counter_attrs()]
    assert len(values) == len(set(values)), "duplicate counter string values on C"

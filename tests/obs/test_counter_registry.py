"""Counter-registry discipline, enforced through the REP004 lint rule.

The AST sweep that used to live here (walk every module, collect
``C.<NAME>`` accesses, compare against the declared registry) is now the
``REP004`` checker in :mod:`repro.lint.rules`; these tests run that rule
so the logic lives in exactly one place.
"""

from pathlib import Path

from repro.lint import LintConfig, LintContext, LintModule
from repro.lint.core import lint_paths
from repro.lint.rules import counter_uses
from repro.mapreduce.counters import C

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"


def test_all_counter_names_used_in_src_are_declared():
    findings = lint_paths([SRC], LintConfig(root=ROOT, select=("REP004",)))
    assert not findings, "undeclared counter names:\n" + "\n".join(map(str, findings))


def test_sweep_actually_sees_counter_uses():
    # Guard against the checker silently matching nothing (e.g. after an
    # import-style change): the known-instrumented modules must register.
    seen: set[str] = set()
    for path in SRC.rglob("*.py"):
        module = LintModule(path.read_text(), path=str(path))
        seen |= set(counter_uses(module))
    assert "MAP_INPUT_RECORDS" in seen
    assert "REDUCE_OUTPUT_RECORDS" in seen
    assert len(seen) >= 30


def test_declared_counter_values_are_unique():
    values = LintContext(LintConfig(root=ROOT)).counter_values
    assert len(values) >= 30
    assert len(values) == len(set(values)), "duplicate counter string values on C"
    # The static parse agrees with the live class.
    live = {
        getattr(C, name) for name in vars(C) if not name.startswith("_")
    }
    assert set(values) == live

"""Worker-side ``time.*`` counters must survive the multiprocess executor.

Kernel code accumulates CPU-attribution timers (``Counters.timer``) inside
the worker process; the coordinator only ever sees the pickled result
object.  If the timer state were stored anywhere outside the Counters
instance on the result, a fork-based executor would silently drop it and
Table-II-style CPU breakdowns would read zero.  This locks in that the
full timer key set — and nonzero values — round-trips through pickling.
"""

import pytest

from repro.core.engine import OnePassEngine
from repro.mapreduce.counters import Counters
from repro.mapreduce.hop import HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.per_user_count import (
    per_user_count_job,
    per_user_count_onepass_job,
)

ENGINES = {
    "hadoop": (HadoopEngine, per_user_count_job),
    "hop": (HOPEngine, per_user_count_job),
    "onepass": (OnePassEngine, per_user_count_onepass_job),
}


def timer_counters(result) -> dict[str, float]:
    return {
        k: v for k, v in result.counters.as_dict().items() if k.startswith("time.")
    }


def run(engine, clicks, executor):
    cluster = LocalCluster(num_nodes=3, block_size=48 * 1024)
    cluster.hdfs.write_records("in", clicks)
    engine_cls, job = ENGINES[engine]
    return engine_cls(cluster, executor=executor).run(job("in", "out"))


@pytest.mark.slow
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_timers_survive_process_executor(clicks, engine):
    serial = timer_counters(run(engine, clicks, None))
    forked = timer_counters(run(engine, clicks, "processes:2"))
    assert serial, engine  # the serial baseline must actually have timers
    assert set(forked) == set(serial), engine
    # Values are wall-clock and so nondeterministic, but every timer that
    # measured real work serially must be nonzero under fork too.
    for key, serial_value in serial.items():
        if serial_value > 0:
            assert forked[key] > 0, (engine, key)


def test_counters_timer_roundtrips_through_pickle():
    import pickle
    import time

    c = Counters()
    with c.timer("time.map_fn"):
        time.sleep(0.001)
    restored = pickle.loads(pickle.dumps(c))
    assert restored["time.map_fn"] > 0

    merged = Counters()
    merged.merge(restored)
    assert merged["time.map_fn"] == restored["time.map_fn"]

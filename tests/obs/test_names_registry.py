"""Audit of the span/event/metric name registries against real engine runs.

``repro/obs/names.py`` is a closed vocabulary enforced statically (REP005,
REP008, REP104) and at runtime.  This audit closes the loop in the other
direction: a battery of engine scenarios — the four workloads, fault and
checkpoint recovery, speculation, the crashpoint chaos sweep, and a chained
cached run — must between them emit **every** registered name.  A name that
no scenario emits is dead registry weight (or dead instrumentation) and
fails here; an emitted name missing from the registry fails too (and would
already have failed at the emission site).
"""

import pytest

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.api import JobConfig
from repro.mapreduce.chain import ChainStage, run_chain
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.recovery import SpeculationPolicy
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.obs.names import EVENT_NAMES, METRIC_NAMES, SPAN_NAMES
from repro.obs.tracer import Tracer
from repro.testing import ChaosTarget, run_crashpoint_sweep
from repro.workloads import (
    inverted_index_job,
    page_frequency_job,
    per_user_count_job,
    per_user_count_onepass_job,
    sessionization_job,
)
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.counting import counting_onepass_job
from repro.workloads.documents import DocumentConfig, generate_documents
from repro.workloads.sessionization import session_log_onepass_job, user_of_session

CLICKS = list(
    generate_clicks(
        ClickStreamConfig(
            num_clicks=3_000, num_users=150, num_urls=80, user_skew=1.1, seed=11
        )
    )
)
DOCS = list(
    generate_documents(DocumentConfig(num_docs=60, vocab_size=500, seed=5))
)


def _cluster(records, **kwargs):
    cluster = LocalCluster(**{"num_nodes": 3, "block_size": 32 * 1024, **kwargs})
    cluster.hdfs.write_records("in", records)
    return cluster


# -- the scenario battery ------------------------------------------------------
# Each scenario runs one engine path under a Tracer and returns it.  Together
# they must cover the whole registry; the comment on each names the registry
# entries only that scenario provides.


def _scenario_hadoop_matrix():
    """map/sort/combine/spill/merge/fetch/reduce + both phase envelopes,
    map.sort.records, shuffle.segment.bytes; small buffer forces >1 spill."""
    tracers = []
    small = JobConfig(map_buffer_bytes=16 * 1024)
    for records, job in (
        (CLICKS, page_frequency_job("in", "out", config=small)),
        (CLICKS, per_user_count_job("in", "out")),
        (CLICKS, sessionization_job("in", "out", gap=5.0)),
        (DOCS, inverted_index_job("in", "out")),
    ):
        tracer = Tracer()
        HadoopEngine(_cluster(records), tracer=tracer).run(job)
        tracers.append(tracer)
    return tracers


def _scenario_hop_snapshot():
    """snapshot span; push span + push.chunk.bytes from the pipelined path."""
    tracer = Tracer()
    HOPEngine(
        _cluster(CLICKS),
        tracer=tracer,
        hop_config=HOPConfig(snapshot_fractions=(0.5,)),
    ).run(per_user_count_job("in", "out"))
    return [tracer]


def _scenario_onepass_hash_spill():
    """hash.spill event and hash.resident.keys gauge: a memory-starved
    incremental hash overflows to the hybrid grouper mid-stream."""
    tracer = Tracer()
    cfg = OnePassConfig(
        mode="incremental", reduce_memory_bytes=4096, map_side_combine=False
    )
    OnePassEngine(_cluster(CLICKS), tracer=tracer).run(
        per_user_count_onepass_job("in", "out", config=cfg)
    )
    return [tracer]


def _scenario_hadoop_node_crash():
    """node.crash + task.killed from a seeded random plan."""
    tracer = Tracer()
    cluster = _cluster(CLICKS, num_nodes=4, replication=2)
    plan = FaultPlan.random(
        seed=1,
        num_map_tasks=len(cluster.hdfs.input_splits("in")),
        num_reducers=2,
        nodes=cluster.nodes,
        map_failure_rate=0.3,
        crash_after=2,
    )
    HadoopEngine(cluster, fault_plan=plan, tracer=tracer).run(
        per_user_count_job("in", "out")
    )
    return [tracer]


def _scenario_fetch_failure():
    """shuffle.fetch_failed + map.rerun: one segment burns exactly the
    fetch retry budget, so the reducer declares the map output lost."""
    tracer = Tracer()
    plan = FaultPlan(shuffle_failures={(0, 0): 4})  # == FetchRetryPolicy.max_retries
    HadoopEngine(_cluster(CLICKS), fault_plan=plan, tracer=tracer).run(
        per_user_count_job("in", "out")
    )
    return [tracer]


def _scenario_onepass_checkpoint():
    """checkpoint.saved / checkpoint.restored / replay span: both reducers
    die once and restore from their latest durable checkpoint."""
    tracer = Tracer()
    OnePassEngine(
        _cluster(CLICKS),
        fault_plan=FaultPlan(reduce_failures={0: 1, 1: 1}),
        checkpoint_interval=3,
        tracer=tracer,
    ).run(per_user_count_onepass_job("in", "out"))
    return [tracer]


def _scenario_speculation():
    """speculative.launched/win/lost: an 8x straggler loses to its backup;
    a 1.6x straggler finishes before a backup that started one
    mean-duration late."""
    tracers = []
    for slowdown in (8.0, 1.6):
        tracer = Tracer()
        HadoopEngine(
            _cluster(CLICKS),
            fault_plan=FaultPlan(slow_nodes={"node01": slowdown}),
            speculation=SpeculationPolicy(min_completed=1),
            tracer=tracer,
        ).run(per_user_count_job("in", "out"))
        tracers.append(tracer)
    return tracers


def _scenario_chaos_sweep(tmp_path):
    """journal.commit/resume/truncated, journal-replay, chaos.crashpoint:
    an exhaustive crashpoint sweep visits every journal-append site in
    both crash modes, resuming (and re-replaying) each time."""
    records = list(
        generate_clicks(ClickStreamConfig(num_clicks=600, num_users=40, num_urls=30, seed=7))
    )
    tracer = Tracer()
    target = ChaosTarget(
        name="hadoop",
        make_cluster=lambda: _cluster(records),
        make_engine=lambda cluster, journal: HadoopEngine(
            cluster, journal=journal, tracer=tracer
        ),
        make_job=lambda: per_user_count_job("in", "out"),
    )
    run_crashpoint_sweep(target, str(tmp_path), mode="exhaustive", tracer=tracer)
    return [tracer]


def _scenario_chain_cache():
    """cache.register/cache.spill events, batch.encode span and the
    cache.resident.bytes gauge: a 4 KiB cache spills under pressure."""
    tracer = Tracer()
    cluster = LocalCluster(num_nodes=3, block_size=16 * 1024)
    cluster.hdfs.write_records("in", CLICKS[:2000])
    stages = [
        ChainStage(session_log_onepass_job("in", "mid", gap=5.0)),
        ChainStage(counting_onepass_job("chain-count", user_of_session, "mid", "out")),
    ]
    run_chain(cluster, stages, cache_bytes=4096, tracer=tracer)
    return [tracer]


@pytest.fixture(scope="module")
def emitted(tmp_path_factory):
    """name -> set of scenario labels that emitted it, per kind."""
    scenarios = {
        "hadoop-matrix": _scenario_hadoop_matrix,
        "hop-snapshot": _scenario_hop_snapshot,
        "onepass-hash-spill": _scenario_onepass_hash_spill,
        "hadoop-node-crash": _scenario_hadoop_node_crash,
        "fetch-failure": _scenario_fetch_failure,
        "onepass-checkpoint": _scenario_onepass_checkpoint,
        "speculation": _scenario_speculation,
        "chaos-sweep": lambda: _scenario_chaos_sweep(
            tmp_path_factory.mktemp("chaos")
        ),
        "chain-cache": _scenario_chain_cache,
    }
    spans: dict[str, set[str]] = {}
    events: dict[str, set[str]] = {}
    metrics: dict[str, set[str]] = {}
    for label, fn in scenarios.items():
        for tracer in fn():
            for span in tracer.spans:
                spans.setdefault(span.name, set()).add(label)
            for event in tracer.events:
                events.setdefault(event.name, set()).add(label)
            for name in tracer.metrics.as_report():
                metrics.setdefault(name, set()).add(label)
    return {"spans": spans, "events": events, "metrics": metrics}


class TestRegistryCoverage:
    """Registered ⊆ emitted: a name nothing emits is dead and must go."""

    def test_every_span_name_emitted(self, emitted):
        dead = SPAN_NAMES - emitted["spans"].keys()
        assert not dead, f"registered span names never emitted: {sorted(dead)}"

    def test_every_event_name_emitted(self, emitted):
        dead = EVENT_NAMES - emitted["events"].keys()
        assert not dead, f"registered event names never emitted: {sorted(dead)}"

    def test_every_metric_name_emitted(self, emitted):
        dead = METRIC_NAMES - emitted["metrics"].keys()
        assert not dead, f"registered metric names never emitted: {sorted(dead)}"


class TestEmissionDiscipline:
    """Emitted ⊆ registered: engines must not invent names on the fly."""

    def test_no_unregistered_span_names(self, emitted):
        rogue = emitted["spans"].keys() - SPAN_NAMES
        assert not rogue, f"unregistered span names emitted: {sorted(rogue)}"

    def test_no_unregistered_event_names(self, emitted):
        rogue = emitted["events"].keys() - EVENT_NAMES
        assert not rogue, f"unregistered event names emitted: {sorted(rogue)}"

    def test_no_unregistered_metric_names(self, emitted):
        # Metrics.histogram()/gauge() already raise on unknown names; this
        # guards the registry audit itself staying in sync with that gate.
        rogue = emitted["metrics"].keys() - METRIC_NAMES
        assert not rogue, f"unregistered metric names emitted: {sorted(rogue)}"

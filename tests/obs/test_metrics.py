"""Deterministic metrics: bucketization, gauge sampling, merge semantics."""

import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    NULL_METRICS,
    Gauge,
    Histogram,
    Metrics,
    NullMetrics,
)
from repro.obs.tracer import NULL_TRACER, Tracer

H = "map.sort.records"  # registered histogram name
G = "hash.resident.keys"  # registered gauge name


class TestHistogram:
    def test_bucketization_power_of_four(self):
        h = Histogram(H)
        for v in (0, 1, 2, 4, 5, 16, 17):
            h.observe(v)
        # bounds are 4**i: bucket index = bisect_left(bounds, v)
        assert h.counts[0] == 2  # 0, 1
        assert h.counts[1] == 2  # 2, 4
        assert h.counts[2] == 2  # 5, 16
        assert h.counts[3] == 1  # 17
        assert h.count == 7
        assert h.total == 0 + 1 + 2 + 4 + 5 + 16 + 17

    def test_overflow_bucket(self):
        h = Histogram(H)
        h.observe(DEFAULT_BOUNDS[-1] + 1)
        assert h.counts[-1] == 1
        assert sum(h.counts[:-1]) == 0

    def test_bounds_shape(self):
        assert DEFAULT_BOUNDS == tuple(4**i for i in range(16))
        assert len(Histogram(H).counts) == len(DEFAULT_BOUNDS) + 1


class TestGauge:
    def test_samples_keep_order_and_coerce_ints(self):
        g = Gauge(G)
        g.record(3, 10)
        g.record(7.0, 2.0)
        assert g.samples == [(3, 10), (7, 2)]


class TestMetricsRegistry:
    def test_same_name_same_instance(self):
        m = Metrics()
        assert m.histogram(H) is m.histogram(H)
        assert m.gauge(G) is m.gauge(G)

    def test_unregistered_name_rejected(self):
        m = Metrics()
        with pytest.raises(ValueError, match="REP008"):
            m.histogram("map.sorted.records")
        with pytest.raises(ValueError, match="not registered"):
            m.gauge("hash.keys")

    def test_truthiness_tracks_content(self):
        m = Metrics()
        assert not m
        m.histogram(H)
        assert m


class TestExportAbsorb:
    def test_empty_export_is_none(self):
        assert Metrics().export() is None
        Metrics().absorb(None)  # must be a no-op, not an error

    def test_export_is_picklable(self):
        m = Metrics()
        m.histogram(H).observe(5)
        m.gauge(G).record(1, 2)
        export = pickle.loads(pickle.dumps(m.export()))
        merged = Metrics()
        merged.absorb(export)
        assert merged.histogram(H).count == 1
        assert merged.gauge(G).samples == [(1, 2)]

    def test_histogram_counts_add_elementwise(self):
        a, b = Metrics(), Metrics()
        for v in (1, 100):
            a.histogram(H).observe(v)
        for v in (1, 5000):
            b.histogram(H).observe(v)
        a.absorb(b.export())
        h = a.histogram(H)
        assert h.count == 4
        assert h.total == 1 + 100 + 1 + 5000
        assert sum(h.counts) == 4

    def test_gauge_ticks_rebase_on_base(self):
        worker = Metrics()
        worker.gauge(G).record(2, 40)
        worker.gauge(G).record(5, 80)
        coord = Metrics()
        coord.gauge(G).record(1, 10)
        coord.absorb(worker.export(), base=100)
        assert coord.gauge(G).samples == [(1, 10), (102, 40), (105, 80)]

    def test_bounds_mismatch_refused(self):
        src = Metrics()
        src.histogram(H).observe(1)
        histograms, gauges = src.export()
        bounds, counts, count, total = histograms[H]
        doctored = ({H: ((1, 2, 3), counts, count, total)}, gauges)
        with pytest.raises(ValueError, match="bounds mismatch"):
            Metrics().absorb(doctored)


class TestAsReport:
    def test_histogram_report_sparse_buckets(self):
        m = Metrics()
        for v in (1, 1, 70000):
            m.histogram(H).observe(v)
        rep = m.as_report()[H]
        assert rep["type"] == "histogram"
        assert rep["count"] == 3
        assert rep["total"] == 70002
        assert rep["buckets"] == [{"le": 1, "n": 2}, {"le": 262144, "n": 1}]

    def test_gauge_report_summary(self):
        m = Metrics()
        for tick, v in ((1, 5), (2, 9), (3, 4)):
            m.gauge(G).record(tick, v)
        rep = m.as_report()[G]
        assert rep == {
            "type": "gauge",
            "count": 3,
            "min": 4,
            "max": 9,
            "last": 4,
            "samples": [[1, 5], [2, 9], [3, 4]],
        }

    def test_names_sorted(self):
        m = Metrics()
        m.gauge(G).record(1, 1)
        m.histogram(H).observe(1)
        m.histogram("shuffle.segment.bytes").observe(2)
        assert list(m.as_report()) == sorted([G, H, "shuffle.segment.bytes"])


class TestNullMetrics:
    def test_inert_and_shared(self):
        n = NullMetrics()
        n.histogram("not.registered").observe(5)  # no validation, no effect
        n.gauge("also.not").record(1, 2)
        assert not n
        assert n.export() is None
        assert n.as_report() == {}
        n.absorb(("bogus", "export"))
        assert NULL_TRACER.metrics is NULL_METRICS


class TestTracerIntegration:
    def test_export_is_four_tuple_with_metrics(self):
        t = Tracer()
        t.metrics.histogram(H).observe(3)
        spans, events, clock, metrics = t.export()
        assert metrics is not None
        assert metrics[0][H][2] == 1  # count

    def test_absorb_merges_and_rebases_metrics(self):
        coord = Tracer()
        with coord.span("map", "map", cost=10):
            pass
        worker = Tracer()
        with worker.span("sort", "sort", cost=4):
            worker.metrics.histogram(H).observe(8)
            worker.metrics.gauge(G).record(worker.clock, 7)
        coord.absorb(worker.export())
        assert coord.metrics.histogram(H).count == 1
        # worker tick 1 rebased by the coordinator clock at absorb time (11)
        assert coord.metrics.gauge(G).samples == [(12, 7)]

    def test_absorb_accepts_historical_three_tuple(self):
        coord = Tracer()
        worker = Tracer()
        with worker.span("sort", "sort"):
            pass
        spans, events, clock, _ = worker.export()
        coord.absorb((spans, events, clock))
        assert len(coord.spans) == 1
        assert not coord.metrics

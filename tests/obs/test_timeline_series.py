"""Phase timeline and binned-series tests."""

import numpy as np

from repro.obs.series import bytes_rate, span_activity
from repro.obs.timeline import PHASE_ORDER, phase_table, phase_totals, recovery_timeline
from repro.obs.tracer import Tracer


def sample_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("map", "map", node="n0", task="map:00000", cost=100):
        pass
    with tr.span("sort", "sort", node="n0", task="map:00000", cost=40):
        pass
    with tr.span("fetch", "shuffle", node="n1", task="reduce:000", cost=10, bytes=640):
        pass
    with tr.span("reduce", "reduce", node="n1", task="reduce:000", cost=30):
        pass
    return tr


class TestPhaseTotals:
    def test_ticks_per_category(self):
        totals = phase_totals(sample_tracer().spans)
        assert totals["map"]["ticks"] == 100
        assert totals["sort"]["ticks"] == 40
        assert totals["shuffle"]["spans"] == 1
        assert totals["reduce"]["ticks"] == 30

    def test_empty_cat_bucketed_as_other(self):
        tr = Tracer()
        with tr.span("misc", "", node="n0", cost=5):
            pass
        assert phase_totals(tr.spans)["other"]["spans"] == 1

    def test_empty_spans(self):
        assert phase_totals([]) == {}


class TestPhaseTable:
    def test_rows_follow_phase_order(self):
        text = phase_table(sample_tracer().spans, title="by category")
        lines = text.splitlines()
        sep = next(i for i, line in enumerate(lines) if set(line) <= {"-", "+", " "} and "-" in line)
        order = [line.split("|")[0].strip() for line in lines[sep + 1 :] if "|" in line]
        assert order == ["map", "sort", "shuffle", "reduce"]
        assert order == sorted(order, key=PHASE_ORDER.index)
        assert "by category" in text


class TestRecoveryTimeline:
    def test_empty_without_recovery_events(self):
        tr = sample_tracer()
        tr.event("checkpoint.saved", "checkpoint", node="n0")
        assert recovery_timeline(tr.events) == ""

    def test_lists_recovery_events_in_tick_order(self):
        tr = Tracer()
        tr.event("node.crash", "recovery", node="n1")
        tr.event("task.killed", "recovery", node="n1", task="map:00002")
        text = recovery_timeline(tr.events)
        assert text.index("node.crash") < text.index("task.killed")


class TestSpanActivity:
    def test_busy_mass_equals_span_ticks(self):
        tr = sample_tracer()
        centers, busy = span_activity(tr.spans, cat="map", bins=30)
        width = centers[1] - centers[0]
        assert np.isclose(busy.sum() * width, 100.0)

    def test_node_filter(self):
        _, busy0 = span_activity(sample_tracer().spans, node="n0", bins=10)
        _, busy1 = span_activity(sample_tracer().spans, node="n1", bins=10)
        assert busy0.sum() > busy1.sum()

    def test_empty_spans(self):
        centers, busy = span_activity([], bins=5)
        assert len(centers) == 5 and busy.sum() == 0.0


class TestBytesRate:
    def test_mass_equals_declared_bytes(self):
        tr = sample_tracer()
        centers, rate = bytes_rate(tr.spans, cat="shuffle", bins=20)
        width = centers[1] - centers[0]
        assert np.isclose(rate.sum() * width, 640.0)

    def test_spans_without_bytes_contribute_nothing(self):
        _, rate = bytes_rate(sample_tracer().spans, cat="map", bins=20)
        assert rate.sum() == 0.0

"""Unit tests for the trace-derived performance analyzer.

Every analysis pass is exercised on hand-built spans with arithmetic
worked out by hand, so a regression in the DAG construction, interval
algebra or report assembly fails with exact numbers rather than a vague
shape mismatch.  A single small engine run at the end smoke-tests the
full ``analyze_tracer`` -> render pipeline against real traces.
"""

import json

import pytest

from repro.mapreduce.journal import JobJournal
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.obs.analyze import (
    JOURNAL_SCHEMA,
    SCHEMA,
    TraceModel,
    analyze_journal,
    analyze_model,
    analyze_tracer,
    attribute_regression,
    barrier_report,
    critical_path,
    delta_rows,
    diff_reports,
    interval_union,
    load_trace,
    phase_ticks,
    render_delta_table,
    render_html,
    render_json,
    render_text,
    skew_report,
    union_length,
    validate_report,
)
from repro.obs.tracer import Span, TraceEvent, Tracer
from repro.workloads import per_user_count_job
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks


def span(name, cat, t0, t1, *, node="", task="", **args):
    return Span(name, cat, t0, t1, node=node, task=task, args=args)


# -- critical path -------------------------------------------------------------


class TestCriticalPath:
    def test_program_order_and_fetch_edge(self):
        """map -> sort (program order) -> reduce (map_task arg) chains."""
        spans = [
            span("map", "map", 0, 10, task="map:00000"),
            span("sort", "sort", 10, 14, task="map:00000"),
            span("reduce", "reduce", 20, 25, task="reduce:000", map_task=0),
            span("map", "map", 0, 4, task="map:00001"),  # short, off-path
        ]
        cp = critical_path(spans)
        assert cp["total_ticks"] == 19
        assert cp["makespan"] == 25
        assert cp["share"] == round(19 / 25, 4)
        assert cp["spans_on_path"] == 3
        assert [s["name"] for s in cp["chain"]] == ["map", "sort", "reduce"]
        assert cp["by_cat"] == {"map": 10, "reduce": 5, "sort": 4}

    def test_slack(self):
        """Off-path spans report how far they are from mattering."""
        spans = [
            span("map", "map", 0, 10, task="map:00000"),
            span("sort", "sort", 10, 14, task="map:00000"),
            span("reduce", "reduce", 20, 25, task="reduce:000", map_task=0),
            span("map", "map", 0, 4, task="map:00001"),
        ]
        slack = critical_path(spans)["slack"]
        # The three chained spans have zero slack; the 4-tick stray map
        # could grow by 19 - 4 = 15 ticks before tying the path.
        assert slack == {"zero": 3, "mean": round(15 / 4, 4), "max": 15}

    def test_push_partitions_edge(self):
        """A producer push span links to each fed partition's next span."""
        spans = [
            span("map", "map", 0, 4, task="map:00001"),
            span("push", "push", 4, 8, task="map:00001", partitions=[0, 1]),
            span("accept", "reduce", 9, 12, task="reduce:000"),
            span("accept", "reduce", 10, 11, task="reduce:001"),
        ]
        cp = critical_path(spans)
        assert cp["total_ticks"] == 4 + 4 + 3
        assert [s["task"] for s in cp["chain"]] == [
            "map:00001",
            "map:00001",
            "reduce:000",
        ]

    def test_phase_envelopes_excluded(self):
        spans = [
            span("map", "map", 0, 10, task="map:00000"),
            span("map-phase", "phase", 0, 500),
        ]
        cp = critical_path(spans)
        assert cp["total_ticks"] == 10
        assert cp["makespan"] == 10  # envelope does not stretch the axis

    def test_empty_and_phase_only(self):
        zeros = critical_path([])
        assert zeros["total_ticks"] == 0
        assert zeros["chain"] == []
        assert zeros["slack"] == {"zero": 0, "mean": 0.0, "max": 0}
        assert critical_path([span("p", "phase", 0, 9)]) == zeros

    def test_max_chain_truncates_listing_not_totals(self):
        spans = [
            span("s", "map", 10 * i, 10 * (i + 1), task="map:00000")
            for i in range(5)
        ]
        cp = critical_path(spans, max_chain=2)
        assert cp["total_ticks"] == 50
        assert cp["spans_on_path"] == 5
        assert len(cp["chain"]) == 2


# -- barriers & pipelining -----------------------------------------------------


class TestIntervalAlgebra:
    def test_union_merges_overlaps_and_touching(self):
        assert interval_union([(3, 8), (0, 5), (10, 12)]) == [(0, 8), (10, 12)]
        assert interval_union([(0, 5), (5, 7)]) == [(0, 7)]
        assert union_length([(3, 8), (0, 5), (10, 12)]) == 10


class TestBarrierReport:
    BLOCKING = [
        span("map", "map", 0, 10, task="map:00000"),
        span("map", "map", 10, 18, task="map:00001"),
        span("sort", "sort", 18, 20, task="map:00000"),
        span("reduce", "reduce", 24, 30, task="reduce:000"),
    ]

    def test_blocking_run_stalls_at_the_barrier(self):
        rep = barrier_report(self.BLOCKING)
        assert rep["map_window"] == [0, 20]  # sort rides the map task
        assert rep["reduce_window"] == [24, 30]
        assert rep["window_overlap_ticks"] == 0
        assert rep["pipelining_efficiency"] == 0.0
        assert rep["barrier_stall_ticks"] == 4
        assert rep["sort_merge_ticks"] == 2
        assert rep["work_ticks"] == 26
        assert rep["sort_merge_share"] == round(2 / 26, 4)

    def test_pipelined_run_overlaps_the_map_window(self):
        rep = barrier_report(
            [
                span("map", "map", 0, 10, task="map:00000"),
                span("accept", "reduce", 3, 5, task="reduce:000"),
                span("accept", "reduce", 12, 14, task="reduce:000"),
            ]
        )
        assert rep["map_window"] == [0, 10]
        assert rep["reduce_window"] == [3, 14]
        assert rep["window_overlap_ticks"] == 7
        assert rep["pipelined_reduce_ticks"] == 2  # only the [3,5] accept
        assert rep["pipelining_efficiency"] == 0.5
        assert rep["barrier_stall_ticks"] == 0
        assert rep["sort_merge_ticks"] == 0

    def test_empty(self):
        rep = barrier_report([])
        assert rep["map_window"] == [0, 0]
        assert rep["work_ticks"] == 0
        assert rep["pipelining_efficiency"] == 0.0


# -- skew ----------------------------------------------------------------------


class TestSkewReport:
    SPANS = [
        span("reduce", "reduce", 0, 30, node="n1", task="reduce:000", bytes=100),
        span("reduce", "reduce", 0, 10, node="n2", task="reduce:001", bytes=40),
        span("reduce", "reduce", 0, 8, node="n2", task="reduce:002"),
        span("map", "map", 0, 12, node="n1", task="map:00000"),
    ]
    EVENTS = [
        TraceEvent("speculative.launched", "recovery", 5, task="map:00001"),
        TraceEvent("speculative.launched", "recovery", 6, task="map:00002"),
        TraceEvent("speculative.win", "recovery", 9, task="map:00001"),
        TraceEvent("speculative.lost", "recovery", 9, task="map:00002"),
        TraceEvent("node.crash", "recovery", 2, node="n2"),
    ]

    def test_partition_attribution(self):
        rep = skew_report(self.SPANS)
        assert rep["partitions"] == {
            "reduce:000": {"ticks": 30, "bytes": 100},
            "reduce:001": {"ticks": 10, "bytes": 40},
            "reduce:002": {"ticks": 8, "bytes": 0},
        }
        # values (30, 10, 8): mean 16, population stddev sqrt(296/3)
        assert rep["partition_cov"] == 0.6208
        assert rep["partition_max_over_mean"] == round(30 / 16, 4)
        # straggler threshold is 1.5 * mean = 24; only reduce:000 exceeds it
        assert rep["stragglers"] == ["reduce:000"]

    def test_node_imbalance(self):
        rep = skew_report(self.SPANS)
        assert rep["nodes"] == {"n1": 42, "n2": 18}
        assert rep["node_imbalance"] == round(42 / 30, 4)

    def test_speculation_and_recovery_accounting(self):
        rep = skew_report(self.SPANS, self.EVENTS)
        assert rep["speculation"] == {
            "launched": 2,
            "wins": 1,
            "losses": 1,
            "winning_tasks": ["map:00001"],
        }
        assert rep["recovery_events"] == {
            "node.crash": 1,
            "speculative.launched": 2,
            "speculative.lost": 1,
            "speculative.win": 1,
        }

    def test_empty(self):
        rep = skew_report([])
        assert rep["partitions"] == {}
        assert rep["partition_cov"] == 0.0
        assert rep["stragglers"] == []
        assert rep["node_imbalance"] == 0.0
        assert rep["speculation"]["launched"] == 0


# -- diff / regression attribution ---------------------------------------------


class TestDiff:
    def test_phase_ticks_excludes_envelopes(self):
        assert phase_ticks(
            [
                span("map", "map", 0, 10),
                span("sort", "sort", 10, 14),
                span("sort", "sort", 14, 16),
                span("map-phase", "phase", 0, 99),
                span("anon", "", 16, 17),
            ]
        ) == {"map": 10, "other": 1, "sort": 6}

    def test_delta_rows_sorted_by_regression(self):
        rows = delta_rows({"sort": 10, "map": 5}, {"sort": 25, "map": 5, "spill": 3})
        assert [r["key"] for r in rows] == ["sort", "spill", "map"]
        assert rows[0] == {
            "key": "sort", "base": 10, "new": 25, "delta": 15, "ratio": 2.5,
        }
        assert rows[1]["ratio"] == 0.0  # new key: base is zero

    def test_attribute_regression(self):
        assert attribute_regression({"sort": 10}, {"sort": 30, "map": 2}) == "sort"
        assert attribute_regression({"sort": 10, "map": 5}, {"sort": 10, "map": 3}) is None
        assert attribute_regression({}, {}) is None

    def test_diff_reports_names_the_regressed_phase(self):
        base = {
            "job": "base", "makespan": 100,
            "phases": {"map": {"ticks": 50}, "sort": {"ticks": 10}},
            "critical_path": {"total_ticks": 80},
            "barriers": {"barrier_stall_ticks": 5, "sort_merge_ticks": 10},
        }
        new = {
            "job": "new", "makespan": 130,
            "phases": {"map": {"ticks": 50}, "sort": {"ticks": 38}},
            "critical_path": {"total_ticks": 95},
            "barriers": {"barrier_stall_ticks": 9, "sort_merge_ticks": 38},
        }
        diff = diff_reports(base, new)
        assert diff["schema"] == "repro.analyze.diff/v1"
        assert diff["base_job"] == "base" and diff["new_job"] == "new"
        assert diff["regressed_phase"] == "sort"
        assert diff["headlines"]["makespan"] == {"base": 100, "new": 130}
        assert diff["headlines"]["barrier_stall_ticks"] == {"base": 5, "new": 9}
        assert diff["phases"][0]["key"] == "sort"

    def test_render_delta_table(self):
        text = render_delta_table(
            delta_rows({"sort": 10}, {"sort": 25, "spill": 3})
        )
        assert "2.50x" in text  # grown phase, as a ratio
        assert "new" in text  # phase absent from the baseline
        assert "phase" in text and "delta" in text


# -- report assembly, rendering, validation ------------------------------------


def _model():
    return TraceModel(
        spans=[
            span("map", "map", 0, 10, node="n1", task="map:00000"),
            span("sort", "sort", 10, 14, node="n1", task="map:00000"),
            span("reduce", "reduce", 20, 25, node="n2", task="reduce:000", map_task=0),
            span("map-phase", "phase", 0, 25),
        ],
        events=[TraceEvent("node.crash", "recovery", 2, node="n2")],
        metrics={},
        job_name="hand-built",
    )


class TestAnalyzeModel:
    def test_report_shape_and_phase_shares(self):
        report = analyze_model(_model())
        assert report["schema"] == SCHEMA
        assert report["job"] == "hand-built"
        assert report["makespan"] == 25
        assert report["spans"] == 4 and report["events"] == 1
        # shares are over work spans only; the phase envelope is excluded
        assert report["phases"]["map"] == {
            "spans": 1, "ticks": 10, "share": round(10 / 19, 4),
        }
        assert sum(r["share"] for r in report["phases"].values()) == pytest.approx(
            1.0, abs=0.001
        )
        assert validate_report(report) == []

    def test_render_json_is_canonical(self):
        report = analyze_model(_model())
        text = render_json(report)
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(render_json(json.loads(text)))
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_render_text_and_html(self):
        report = analyze_model(_model())
        text = render_text(report)
        assert "performance analysis: hand-built" in text
        assert "critical path" in text and "barriers & pipelining" in text
        html = render_html(report)
        assert html.startswith("<!doctype html>")
        assert "<table>" in html and "repro.analyze/v1" in html

    def test_validate_report_rejects_malformed(self):
        assert validate_report([]) == ["top level must be an object, got list"]
        assert "unknown schema" in validate_report({"schema": "bogus"})[0]
        broken = analyze_model(_model())
        broken["makespan"] = "fast"
        broken["critical_path"]["chain"][0]["t0"] = None
        errors = validate_report(broken)
        assert any("makespan" in e for e in errors)
        assert any("chain[0].t0" in e for e in errors)


# -- loading trace files -------------------------------------------------------


class TestLoadTrace:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "job": "wc"}) + "\n"
            + json.dumps(
                {
                    "type": "span", "name": "map", "cat": "map",
                    "t0": 0, "t1": 10, "task": "map:00000", "wall_us": 1500,
                }
            )
            + "\n"
            + json.dumps({"type": "event", "name": "node.crash", "cat": "recovery", "ts": 2})
            + "\n"
            + json.dumps(
                {
                    "type": "metric", "name": "map.sort.records",
                    "metric": {"type": "gauge", "count": 1},
                }
            )
            + "\n"
        )
        model = load_trace(str(path))
        assert model.job_name == "wc"
        assert model.spans[0].t1 == 10 and model.spans[0].wall_s == 0.0015
        assert model.events[0].name == "node.crash"
        assert model.metrics["map.sort.records"]["count"] == 1
        assert model.makespan == 10

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello world\n")
        with pytest.raises(ValueError, match="not a jsonl or chrome trace"):
            load_trace(str(path))

    def test_rejects_unknown_jsonl_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "bogus"}\n')
        with pytest.raises(ValueError, match="unknown jsonl record type"):
            load_trace(str(path))


# -- end to end on a real (small) run ------------------------------------------


@pytest.fixture(scope="module")
def small_run(tmp_path_factory):
    """One journaled Hadoop run; returns (tracer, journal_dir)."""
    records = list(
        generate_clicks(
            ClickStreamConfig(num_clicks=500, num_users=40, num_urls=25, seed=3)
        )
    )
    cluster = LocalCluster(num_nodes=2, block_size=16 * 1024)
    cluster.hdfs.write_records("in", records)
    journal_dir = tmp_path_factory.mktemp("wal")
    tracer = Tracer()
    journal = JobJournal(journal_dir)
    HadoopEngine(cluster, tracer=tracer, journal=journal).run(
        per_user_count_job("in", "out")
    )
    return tracer, journal_dir


class TestEndToEnd:
    def test_analyze_tracer_validates_and_renders(self, small_run):
        tracer, _ = small_run
        report = analyze_tracer(tracer, job_name="per-user-count")
        assert validate_report(report) == []
        assert report["makespan"] == tracer.clock
        assert report["phases"]  # map/sort/shuffle/reduce all attributed
        assert report["critical_path"]["total_ticks"] > 0
        assert report["barriers"]["work_ticks"] > 0
        for render in (render_text, render_json, render_html):
            assert render(report)

    def test_blocking_engine_reads_as_blocking(self, small_run):
        """The paper's Fig. 4 signature: sort-merge pipelines ~nothing."""
        tracer, _ = small_run
        report = analyze_tracer(tracer)
        assert report["barriers"]["pipelining_efficiency"] < 0.5
        assert report["barriers"]["sort_merge_ticks"] > 0

    def test_analyze_journal(self, small_run):
        _, journal_dir = small_run
        report = analyze_journal(str(journal_dir))
        assert report["schema"] == JOURNAL_SCHEMA
        assert validate_report(report) == []
        assert report["engine"] == "hadoop"
        assert report["maps_committed"] > 0
        assert report["output"]["commits"] == 1
        assert report["output"]["digest"]
        assert "session" not in report

    def test_analyze_journal_detail(self, small_run):
        _, journal_dir = small_run
        report = analyze_journal(str(journal_dir), detail=True)
        assert report["session"]["records"] > 0
        assert report["session"]["truncated_bytes"] == 0
        text = render_text(report)
        assert "journal committed state" in text
        assert render_html(report).startswith("<!doctype html>")

"""Tracer unit tests: logical clock, spans, events, absorb, null path."""

import pickle

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    byte_cost,
    task_tracer,
)


class TestLogicalClock:
    def test_span_advances_clock_by_cost(self):
        tr = Tracer()
        with tr.span("map", "map", node="n0", cost=100):
            pass
        assert tr.clock == 101  # +1 on entry, +100 on exit
        (span,) = tr.spans
        assert (span.t0, span.t1) == (1, 101)

    def test_default_cost_is_one(self):
        tr = Tracer()
        with tr.span("x", "map", node="n0"):
            pass
        assert tr.clock == 2
        assert tr.spans[0].t1 - tr.spans[0].t0 == 1

    def test_set_cost_inside_block(self):
        tr = Tracer()
        with tr.span("sort", "sort", node="n0") as span:
            span.set_cost(50)
        assert tr.spans[0].t1 - tr.spans[0].t0 == 50

    def test_cost_floor_is_one(self):
        tr = Tracer()
        with tr.span("x", "map", node="n0", cost=0):
            pass
        assert tr.spans[0].t1 > tr.spans[0].t0

    def test_nested_spans_enclose_children(self):
        tr = Tracer()
        with tr.span("outer", "map", node="n0", cost=10):
            with tr.span("inner", "sort", node="n0", cost=5):
                pass
        inner = next(s for s in tr.spans if s.name == "inner")
        outer = next(s for s in tr.spans if s.name == "outer")
        assert outer.t0 < inner.t0
        assert outer.t1 > inner.t1

    def test_event_ticks_clock(self):
        tr = Tracer()
        tr.event("task.killed", "recovery", node="n1", task="map:00001")
        assert tr.clock == 1
        (event,) = tr.events
        assert event.ts == 1
        assert event.node == "n1"

    def test_add_span_does_not_advance_clock(self):
        tr = Tracer()
        c0 = tr.clock
        tr.add_span("map-phase", "phase", 0, 100, wall_s=1.5)
        assert tr.clock == c0
        assert tr.spans[0].wall_s == 1.5

    def test_wall_clock_is_advisory_only(self):
        tr = Tracer()
        with tr.span("map", "map", node="n0", cost=10):
            pass
        span = tr.spans[0]
        assert span.wall_s >= 0.0
        assert (span.t1 - span.t0) == 10  # unaffected by wall time


class TestSpanArgs:
    def test_kwargs_and_set(self):
        tr = Tracer()
        with tr.span("spill", "spill", node="n0", bytes=1024) as span:
            span.set(segments=3)
        assert tr.spans[0].args == {"bytes": 1024, "segments": 3}

    def test_task_label(self):
        tr = Tracer()
        with tr.span("map", "map", node="n0", task="map:00007"):
            pass
        assert tr.spans[0].task == "map:00007"


class TestAbsorb:
    def test_rebases_child_ticks(self):
        child = Tracer()
        with child.span("map", "map", node="n0", cost=10):
            pass
        parent = Tracer()
        with parent.span("setup", "phase", node="", cost=5):
            pass
        base = parent.clock
        parent.absorb(child.export())
        span = next(s for s in parent.spans if s.name == "map")
        assert span.t0 == base + 1
        assert parent.clock == base + child.clock

    def test_absorb_in_order_is_deterministic(self):
        def child(n):
            tr = Tracer()
            with tr.span(f"map{n}", "map", node=f"n{n}", cost=n + 1):
                pass
            return tr.export()

        a, b = Tracer(), Tracer()
        exports = [child(0), child(1), child(2)]
        for e in exports:
            a.absorb(e)
        for e in exports:
            b.absorb(e)
        assert [(s.name, s.t0, s.t1) for s in a.spans] == [
            (s.name, s.t0, s.t1) for s in b.spans
        ]

    def test_absorb_none_is_noop(self):
        tr = Tracer()
        tr.absorb(None)
        assert tr.clock == 0 and not tr.spans

    def test_absorb_events(self):
        child = Tracer()
        child.event("task.killed", "recovery", node="n0")
        parent = Tracer()
        with parent.span("x", "map", node="n0", cost=7):
            pass
        base = parent.clock
        parent.absorb(child.export())
        assert parent.events[0].ts == base + 1

    def test_export_is_picklable(self):
        tr = Tracer()
        with tr.span("map", "map", node="n0", cost=3, bytes=10):
            pass
        tr.event("e", "recovery", node="n0")
        export = pickle.loads(pickle.dumps(tr.export()))
        other = Tracer()
        other.absorb(export)
        assert other.spans[0].name == "map"
        assert other.events[0].name == "e"


class TestNullTracer:
    def test_singleton_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_all_operations_noop(self):
        with NULL_TRACER.span("x", "map", node="n0", cost=5) as h:
            h.set_cost(10)
            h.set(bytes=1)
        NULL_TRACER.event("e", "c", node="n0")
        NULL_TRACER.add_span("p", "phase", 0, 10)
        assert NULL_TRACER.export() is None
        assert NULL_TRACER.clock == 0

    def test_task_tracer_factory(self):
        assert task_tracer(False) is NULL_TRACER
        on = task_tracer(True)
        assert on.enabled and on.clock == 0 and on is not NULL_TRACER


class TestByteCost:
    def test_scaling(self):
        assert byte_cost(0) == 1
        assert byte_cost(63) == 1
        assert byte_cost(64) == 1
        assert byte_cost(6400) == 100

    def test_monotone(self):
        costs = [byte_cost(n) for n in range(0, 10_000, 123)]
        assert costs == sorted(costs)


class TestTracerEnabled:
    def test_real_tracer_enabled(self):
        assert Tracer().enabled is True

    def test_add_span_enforces_min_width(self):
        tr = Tracer()
        tr.add_span("p", "phase", 5, 5)
        assert tr.spans[0].t1 == 6

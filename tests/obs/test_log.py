"""Structured-logging tests: levels, formatting, off-by-default."""

import io

import pytest

from repro.obs.log import LEVELS, Logger, get_level, get_logger, set_level


@pytest.fixture(autouse=True)
def reset_level():
    yield
    set_level("off")


class TestLevels:
    def test_default_is_off(self):
        assert get_level() == "off"

    def test_off_emits_nothing(self):
        buf = io.StringIO()
        set_level("off", stream=buf)
        get_logger("t").error("boom", code=1)
        assert buf.getvalue() == ""

    def test_level_gating(self):
        buf = io.StringIO()
        set_level("warn", stream=buf)
        log = get_logger("t")
        log.error("e")
        log.warn("w")
        log.info("i")
        log.debug("d")
        lines = buf.getvalue().splitlines()
        assert [line.split()[0] for line in lines] == ["ERROR", "WARN"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            set_level("verbose")

    def test_levels_ordering(self):
        assert LEVELS == ("off", "error", "warn", "info", "debug")


class TestFormat:
    def test_keyed_fields(self):
        buf = io.StringIO()
        set_level("info", stream=buf)
        get_logger("hadoop").info("map.phase.done", tasks=4, wall_ms=1.23456789)
        line = buf.getvalue().strip()
        assert line.startswith("INFO hadoop map.phase.done")
        assert "tasks=4" in line
        assert "wall_ms=1.23457" in line  # floats trimmed to 6 sig figs

    def test_values_with_spaces_are_quoted(self):
        buf = io.StringIO()
        set_level("info", stream=buf)
        get_logger("t").info("e", msg="two words")
        assert "msg='two words'" in buf.getvalue()


class TestRegistry:
    def test_get_logger_is_cached(self):
        assert get_logger("same") is get_logger("same")
        assert isinstance(get_logger("same"), Logger)

"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "page-frequency"])
        args.engine == "onepass"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])


class TestCommands:
    def test_run_each_engine(self, capsys):
        for engine in ("hadoop", "hop", "onepass"):
            rc = main(
                [
                    "run",
                    "--workload",
                    "page-frequency",
                    "--engine",
                    engine,
                    "--records",
                    "3000",
                ]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "wall time" in out
            assert engine in out

    def test_run_inverted_index(self, capsys):
        rc = main(
            ["run", "--workload", "inverted-index", "--engine", "onepass", "--records", "3000"]
        )
        assert rc == 0
        assert "output records" in capsys.readouterr().out

    def test_simulate_with_override_and_export(self, capsys, tmp_path):
        rc = main(
            [
                "simulate",
                "--workload",
                "per-user-count",
                "--engine",
                "onepass",
                "--input-gb",
                "4",
                "--bucket",
                "5",
                "--export-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cpu util" in out
        assert (tmp_path / "per-user-count-onepass.json").exists()

    def test_simulate_hop_engine(self, capsys):
        rc = main(
            [
                "simulate",
                "--workload",
                "sessionization",
                "--engine",
                "hop",
                "--input-gb",
                "4",
                "--bucket",
                "5",
            ]
        )
        assert rc == 0
        assert "merge" in capsys.readouterr().out

    def test_simulate_architectures(self, capsys):
        for flag in ("--ssd", "--separate-storage"):
            rc = main(
                [
                    "simulate",
                    "--workload",
                    "sessionization",
                    "--input-gb",
                    "4",
                    "--bucket",
                    "5",
                    flag,
                ]
            )
            assert rc == 0

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--workload", "per-user-count", "--records", "5000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sort-merge" in out and "one-pass" in out
        assert "saves" in out


class TestJournalCommands:
    def test_run_with_journal_then_resume(self, capsys, tmp_path):
        journal_dir = str(tmp_path / "wal")
        rc = main(
            [
                "run",
                "--workload",
                "per-user-count",
                "--engine",
                "onepass",
                "--records",
                "2000",
                "--journal",
                journal_dir,
            ]
        )
        assert rc == 0
        first = capsys.readouterr().out
        assert "output records" in first

        # The run committed, so resume is a pure replay: same output
        # records, zero map work.
        rc = main(["resume", journal_dir])
        assert rc == 0
        resumed = capsys.readouterr().out
        assert "resumed per-user-count on onepass" in resumed
        assert "map input records  | 0" in resumed
        # Both tables report the same output record count.
        def output_records(table):
            row = next(l for l in table.splitlines() if l.startswith("output records"))
            return int(row.split("|")[1])

        assert output_records(resumed) == output_records(first) > 0

    def test_resume_requires_run_config(self, tmp_path):
        from repro.mapreduce.journal import K_MAP_COMMIT, JobJournal

        j = JobJournal(tmp_path / "wal")
        j.append(K_MAP_COMMIT, task=0, node="n")
        j.finalize()
        with pytest.raises(SystemExit, match="run-config"):
            main(["resume", str(tmp_path / "wal")])

    def test_chaos_sampled_sweep(self, capsys, tmp_path):
        rc = main(
            [
                "chaos",
                "--workload",
                "page-frequency",
                "--engine",
                "hadoop",
                "--records",
                "1200",
                "--mode",
                "sampled",
                "--samples",
                "2",
                "--seed",
                "3",
                "--crash-mode",
                "after",
                "--workdir",
                str(tmp_path / "sweep"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        # --workdir keeps the per-site journals around for inspection.
        assert any((tmp_path / "sweep").iterdir())


class TestAnalyzeCommand:
    def _trace(self, tmp_path, fmt):
        path = str(tmp_path / f"trace.{fmt}")
        rc = main(
            [
                "run",
                "--workload",
                "per-user-count",
                "--engine",
                "hadoop",
                "--records",
                "2000",
                "--trace",
                path,
                "--trace-format",
                fmt,
            ]
        )
        assert rc == 0
        return path

    def test_run_analyze_inline(self, capsys):
        rc = main(
            [
                "run",
                "--workload",
                "per-user-count",
                "--engine",
                "onepass",
                "--records",
                "2000",
                "--analyze",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "performance analysis" in out
        assert "critical path" in out

    def test_analyze_trace_file_terminal(self, capsys, tmp_path):
        path = self._trace(tmp_path, "jsonl")
        capsys.readouterr()
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "performance analysis" in out
        assert "barriers & pipelining" in out

    def test_analyze_json_identical_for_both_trace_formats(self, capsys, tmp_path):
        """jsonl and chrome traces of the same run analyze identically."""
        import json

        from repro.obs.analyze import validate_report

        reports = []
        for fmt in ("jsonl", "chrome"):
            path = self._trace(tmp_path, fmt)
            capsys.readouterr()
            assert main(["analyze", path, "--format", "json"]) == 0
            reports.append(capsys.readouterr().out)
        assert reports[0] == reports[1]
        assert validate_report(json.loads(reports[0])) == []

    def test_analyze_out_writes_html(self, capsys, tmp_path):
        path = self._trace(tmp_path, "jsonl")
        out_path = str(tmp_path / "report.html")
        assert main(["analyze", path, "--format", "html", "--out", out_path]) == 0
        assert "wrote html report" in capsys.readouterr().out
        with open(out_path, encoding="utf-8") as fh:
            assert fh.read().startswith("<!doctype html>")

    def test_analyze_journal_directory(self, capsys, tmp_path):
        journal_dir = str(tmp_path / "wal")
        rc = main(
            [
                "run",
                "--workload",
                "per-user-count",
                "--engine",
                "onepass",
                "--records",
                "2000",
                "--journal",
                journal_dir,
            ]
        )
        assert rc == 0
        capsys.readouterr()
        assert main(["analyze", journal_dir]) == 0
        out = capsys.readouterr().out
        assert "journal committed state" in out
        assert "task grants" not in out  # volatile stats need --detail
        assert main(["analyze", journal_dir, "--detail"]) == 0
        assert "task grants" in capsys.readouterr().out

    def test_analyze_baseline_names_regressed_phase(self, capsys, tmp_path):
        import json

        path = self._trace(tmp_path, "jsonl")
        base_path = str(tmp_path / "base.json")
        assert main(["analyze", path, "--format", "json", "--out", base_path]) == 0
        capsys.readouterr()

        # Same trace vs itself: nothing regressed.
        assert main(["analyze", path, "--baseline", base_path]) == 0
        assert "no phase regressed" in capsys.readouterr().out

        # Shrink the baseline's sort ticks: the current trace now reads
        # as a sort regression, and the delta table names it.
        with open(base_path, encoding="utf-8") as fh:
            base = json.load(fh)
        base["phases"]["sort"]["ticks"] //= 10
        with open(base_path, "w", encoding="utf-8") as fh:
            json.dump(base, fh)
        assert main(["analyze", path, "--baseline", base_path]) == 0
        assert "regressed phase: sort" in capsys.readouterr().out

    def test_compare_analyze_prints_delta(self, capsys):
        rc = main(
            [
                "compare",
                "--workload",
                "per-user-count",
                "--records",
                "4000",
                "--analyze",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase delta: sort-merge -> one-pass" in out
        assert out.count("performance analysis") == 2

"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "page-frequency"])
        args.engine == "onepass"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])


class TestCommands:
    def test_run_each_engine(self, capsys):
        for engine in ("hadoop", "hop", "onepass"):
            rc = main(
                [
                    "run",
                    "--workload",
                    "page-frequency",
                    "--engine",
                    engine,
                    "--records",
                    "3000",
                ]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "wall time" in out
            assert engine in out

    def test_run_inverted_index(self, capsys):
        rc = main(
            ["run", "--workload", "inverted-index", "--engine", "onepass", "--records", "3000"]
        )
        assert rc == 0
        assert "output records" in capsys.readouterr().out

    def test_simulate_with_override_and_export(self, capsys, tmp_path):
        rc = main(
            [
                "simulate",
                "--workload",
                "per-user-count",
                "--engine",
                "onepass",
                "--input-gb",
                "4",
                "--bucket",
                "5",
                "--export-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cpu util" in out
        assert (tmp_path / "per-user-count-onepass.json").exists()

    def test_simulate_hop_engine(self, capsys):
        rc = main(
            [
                "simulate",
                "--workload",
                "sessionization",
                "--engine",
                "hop",
                "--input-gb",
                "4",
                "--bucket",
                "5",
            ]
        )
        assert rc == 0
        assert "merge" in capsys.readouterr().out

    def test_simulate_architectures(self, capsys):
        for flag in ("--ssd", "--separate-storage"):
            rc = main(
                [
                    "simulate",
                    "--workload",
                    "sessionization",
                    "--input-gb",
                    "4",
                    "--bucket",
                    "5",
                    flag,
                ]
            )
            assert rc == 0

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--workload", "per-user-count", "--records", "5000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sort-merge" in out and "one-pass" in out
        assert "saves" in out

"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "page-frequency"])
        args.engine == "onepass"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])


class TestCommands:
    def test_run_each_engine(self, capsys):
        for engine in ("hadoop", "hop", "onepass"):
            rc = main(
                [
                    "run",
                    "--workload",
                    "page-frequency",
                    "--engine",
                    engine,
                    "--records",
                    "3000",
                ]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "wall time" in out
            assert engine in out

    def test_run_inverted_index(self, capsys):
        rc = main(
            ["run", "--workload", "inverted-index", "--engine", "onepass", "--records", "3000"]
        )
        assert rc == 0
        assert "output records" in capsys.readouterr().out

    def test_simulate_with_override_and_export(self, capsys, tmp_path):
        rc = main(
            [
                "simulate",
                "--workload",
                "per-user-count",
                "--engine",
                "onepass",
                "--input-gb",
                "4",
                "--bucket",
                "5",
                "--export-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cpu util" in out
        assert (tmp_path / "per-user-count-onepass.json").exists()

    def test_simulate_hop_engine(self, capsys):
        rc = main(
            [
                "simulate",
                "--workload",
                "sessionization",
                "--engine",
                "hop",
                "--input-gb",
                "4",
                "--bucket",
                "5",
            ]
        )
        assert rc == 0
        assert "merge" in capsys.readouterr().out

    def test_simulate_architectures(self, capsys):
        for flag in ("--ssd", "--separate-storage"):
            rc = main(
                [
                    "simulate",
                    "--workload",
                    "sessionization",
                    "--input-gb",
                    "4",
                    "--bucket",
                    "5",
                    flag,
                ]
            )
            assert rc == 0

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--workload", "per-user-count", "--records", "5000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sort-merge" in out and "one-pass" in out
        assert "saves" in out


class TestJournalCommands:
    def test_run_with_journal_then_resume(self, capsys, tmp_path):
        journal_dir = str(tmp_path / "wal")
        rc = main(
            [
                "run",
                "--workload",
                "per-user-count",
                "--engine",
                "onepass",
                "--records",
                "2000",
                "--journal",
                journal_dir,
            ]
        )
        assert rc == 0
        first = capsys.readouterr().out
        assert "output records" in first

        # The run committed, so resume is a pure replay: same output
        # records, zero map work.
        rc = main(["resume", journal_dir])
        assert rc == 0
        resumed = capsys.readouterr().out
        assert "resumed per-user-count on onepass" in resumed
        assert "map input records  | 0" in resumed
        # Both tables report the same output record count.
        def output_records(table):
            row = next(l for l in table.splitlines() if l.startswith("output records"))
            return int(row.split("|")[1])

        assert output_records(resumed) == output_records(first) > 0

    def test_resume_requires_run_config(self, tmp_path):
        from repro.mapreduce.journal import K_MAP_COMMIT, JobJournal

        j = JobJournal(tmp_path / "wal")
        j.append(K_MAP_COMMIT, task=0, node="n")
        j.finalize()
        with pytest.raises(SystemExit, match="run-config"):
            main(["resume", str(tmp_path / "wal")])

    def test_chaos_sampled_sweep(self, capsys, tmp_path):
        rc = main(
            [
                "chaos",
                "--workload",
                "page-frequency",
                "--engine",
                "hadoop",
                "--records",
                "1200",
                "--mode",
                "sampled",
                "--samples",
                "2",
                "--seed",
                "3",
                "--crash-mode",
                "after",
                "--workdir",
                str(tmp_path / "sweep"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        # --workdir keeps the per-site journals around for inspection.
        assert any((tmp_path / "sweep").iterdir())

"""Run-to-run determinism: same inputs, same outputs, same byte counters.

The engines are deliberately deterministic (stable hashing, seeded
generators, ordered scheduling); everything except wall-clock timers must
be identical across runs — the property that makes the benchmark reports
reproducible.
"""

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.page_frequency import page_frequency_job, page_frequency_onepass_job
from repro.workloads.per_user_count import per_user_count_onepass_job


def nontimer_counters(result):
    return {
        name: value
        for name, value in result.counters.as_dict().items()
        if not name.startswith("time.")
    }


def fresh_cluster(clicks):
    cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
    cluster.hdfs.write_records("in", clicks)
    return cluster


class TestDeterminism:
    def test_hadoop_identical_across_runs(self, clicks):
        outputs, counters = [], []
        for _ in range(2):
            cluster = fresh_cluster(clicks)
            result = HadoopEngine(cluster).run(page_frequency_job("in", "out"))
            outputs.append(sorted(cluster.hdfs.read_records("out")))
            counters.append(nontimer_counters(result))
        assert outputs[0] == outputs[1]
        assert counters[0] == counters[1]

    def test_hop_identical_across_runs(self, clicks):
        snapshots, counters = [], []
        for _ in range(2):
            cluster = fresh_cluster(clicks)
            result = HOPEngine(
                cluster, hop_config=HOPConfig(snapshot_fractions=(0.5,))
            ).run(page_frequency_job("in", "out"))
            snapshots.append(sorted(result.snapshots[0].records))
            counters.append(nontimer_counters(result))
        assert snapshots[0] == snapshots[1]
        assert counters[0] == counters[1]

    def test_onepass_identical_across_runs_all_modes(self, clicks):
        for mode in ("incremental", "hybrid", "hotset"):
            results = []
            for _ in range(2):
                cluster = fresh_cluster(clicks)
                cfg = OnePassConfig(
                    mode=mode, hotset_capacity=64, map_side_combine=False
                )
                result = OnePassEngine(cluster).run(
                    per_user_count_onepass_job("in", "out", config=cfg)
                )
                results.append(
                    (
                        sorted(cluster.hdfs.read_records("out")),
                        nontimer_counters(result),
                    )
                )
            assert results[0] == results[1], f"mode={mode} not deterministic"

    def test_early_emission_order_deterministic(self, clicks):
        from repro.core.incremental import count_threshold_policy

        orders = []
        for _ in range(2):
            cluster = fresh_cluster(clicks)
            job = page_frequency_onepass_job(
                "in",
                "out",
                config=OnePassConfig(mode="incremental", map_side_combine=False),
            )
            job.emit_policy = count_threshold_policy(10)
            result = OnePassEngine(cluster).run(job)
            orders.append(result.extras["early_emitted"])
        assert orders[0] == orders[1]

    def test_simulator_identical_across_runs(self):
        from repro.simulator.calibration import GB, SESSIONIZATION, ClusterSpec
        from repro.simulator.pipelines import HadoopPipeline

        profile = SESSIONIZATION.scaled(4 * GB)
        runs = [
            HadoopPipeline(ClusterSpec(reducers=4), profile, metric_bucket=5.0).run()
            for _ in range(2)
        ]
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].totals.merge_passes == runs[1].totals.merge_passes
        assert (runs[0].series.cpu_utilization == runs[1].series.cpu_utilization).all()

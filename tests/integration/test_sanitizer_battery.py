"""Integration: sanitized engine runs are violation-free and byte-identical.

The quick tests run a few representative legs in-process; the slow test
replays a larger slice of the committed matrix against
``san-baseline.json``.
"""

from pathlib import Path

import pytest

from repro.san.matrix import (
    load_baseline,
    matrix_legs,
    run_leg,
)

ROOT = Path(__file__).resolve().parents[2]

pytestmark = pytest.mark.no_reprosan  # every test installs its own sanitizer


QUICK_LEGS = [
    ("per-user-count", "onepass", "serial"),
    ("sessionization", "hadoop", "threads:2"),
    ("inverted-index", "hop", "processes:2"),
]


class TestQuickLegs:
    @pytest.mark.parametrize("workload,engine,executor", QUICK_LEGS)
    def test_leg_is_clean_and_byte_identical(self, workload, engine, executor):
        result = run_leg(workload, engine, executor, records=500)
        assert result.report.clean, result.report.to_text()
        assert result.sanitized_digest == result.digest

    def test_detector_subset_run_is_clean(self):
        result = run_leg(
            "page-frequency", "hadoop", "serial",
            records=500, detectors=("resource", "pickle"),
        )
        assert result.report.clean, result.report.to_text()
        assert result.report.detectors == ("resource", "pickle")


class TestCommittedBaseline:
    def test_baseline_file_covers_the_full_matrix(self):
        baseline = load_baseline(ROOT / "san-baseline.json")
        expected = {f"{w}/{e}/{x}" for w, e, x in matrix_legs()}
        assert set(baseline) == expected
        assert all(len(d) == 64 for d in baseline.values())

    def test_baseline_digests_executor_invariant(self):
        # The determinism contract: per workload+engine, every executor
        # produces the same bytes — the baseline must reflect that.
        baseline = load_baseline(ROOT / "san-baseline.json")
        by_pair = {}
        for leg, digest in baseline.items():
            workload, engine, _ = leg.split("/")
            by_pair.setdefault((workload, engine), set()).add(digest)
        for pair, digests in by_pair.items():
            assert len(digests) == 1, pair

    @pytest.mark.slow
    def test_committed_digests_reproduce(self):
        baseline = load_baseline(ROOT / "san-baseline.json")
        for workload, engine, executor in matrix_legs():
            leg = f"{workload}/{engine}/{executor}"
            result = run_leg(workload, engine, executor)
            assert result.report.clean, (leg, result.report.to_text())
            assert result.digest == baseline[leg], leg
            assert result.sanitized_digest == baseline[leg], leg

"""Tuple-vs-batch byte identity: the batch kernel path's contract.

``--batch`` switches the hot kernels (partition fanout, sorting,
combining, merging, hash aggregation) to the columnar batch-at-a-time
implementations in :mod:`repro.io.batch` and the ``add_batch`` /
``update_batch`` fast paths.  The contract is *byte identity*: every
observable of a run — output records in order, HDFS file bytes, all
counters except wall-clock timers — must be exactly what the tuple path
produces, on every engine, under every executor, and under injected
faults with a journal resume in the middle.  Anything less and the
batch path would not be an optimisation but a different engine.
"""

import dataclasses

import pytest

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.api import JobConfig
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster

from tests.integration.test_engines_agree import (
    _snapshot,
    _workload_jobs,
    fresh_cluster,
)

WORKLOADS = (
    "page-frequency",
    "per-user-count",
    "sessionization",
    "inverted-index",
)
ENGINE_CLASSES = {
    "hadoop": HadoopEngine,
    "hop": HOPEngine,
    "onepass": OnePassEngine,
}


def _job_for(engine, workload, batch, config=None):
    sm_job, op_job, _ = _workload_jobs(workload)
    if engine == "onepass":
        job = op_job("in", "out")
        cfg = config if config is not None else job.config
        if batch:
            cfg = dataclasses.replace(cfg, batch=True)
        return dataclasses.replace(job, config=cfg)
    job = sm_job("in", "out")
    if config is not None:
        job = dataclasses.replace(job, config=config)
    if batch:
        job = job.with_config(batch=True)
    return job


class TestFourWorkloadsThreeEngines:
    """The full matrix: every workload on every engine, tuple vs batch."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("engine", sorted(ENGINE_CLASSES))
    def test_batch_is_byte_identical(self, request, engine, workload):
        records = request.getfixturevalue(_workload_jobs(workload)[2])

        def run(batch):
            cluster = fresh_cluster(records)
            result = ENGINE_CLASSES[engine](cluster).run(
                _job_for(engine, workload, batch)
            )
            return _snapshot(cluster, result)

        assert run(True) == run(False), (engine, workload)


class TestSpillPressure:
    """Identity must survive the memory-pressure paths — spills, multipass
    merges, hash freezes — where the batch code's trigger checks have to
    fire on exactly the pair the tuple path fires on."""

    @pytest.mark.parametrize("engine", ["hadoop", "hop"])
    def test_sortmerge_spilling_config(self, clicks, engine):
        config = JobConfig(reduce_buffer_bytes=8 * 1024, merge_factor=2)

        def run(batch):
            cluster = fresh_cluster(clicks)
            kwargs = (
                {"hop_config": HOPConfig(granularity_records=100)}
                if engine == "hop"
                else {}
            )
            result = ENGINE_CLASSES[engine](cluster, **kwargs).run(
                _job_for(engine, "per-user-count", batch, config=config)
            )
            return _snapshot(cluster, result)

        assert run(True) == run(False)

    @pytest.mark.parametrize("mode", ["incremental", "hybrid", "hotset"])
    def test_onepass_constrained_memory(self, clicks, mode):
        config = OnePassConfig(
            mode=mode,
            map_memory_bytes=16 * 1024,
            reduce_memory_bytes=32 * 1024,
            map_side_combine=False,
        )

        def run(batch):
            cluster = fresh_cluster(clicks)
            result = OnePassEngine(cluster).run(
                _job_for("onepass", "per-user-count", batch, config=config)
            )
            return _snapshot(cluster, result)

        assert run(True) == run(False), mode


class TestExecutors:
    """Batch output must not depend on the executor either — and it must
    equal the *serial tuple* run, closing the square."""

    @pytest.mark.slow
    @pytest.mark.parametrize("executor", [None, "threads:2", "processes:2"])
    @pytest.mark.parametrize("engine", sorted(ENGINE_CLASSES))
    def test_batch_across_executors(self, clicks, engine, executor):
        def run(batch, executor):
            cluster = fresh_cluster(clicks)
            result = ENGINE_CLASSES[engine](cluster, executor=executor).run(
                _job_for(engine, "per-user-count", batch)
            )
            return _snapshot(cluster, result)

        assert run(True, executor) == run(False, None), (engine, executor)


class TestUnderFaults:
    @pytest.mark.slow
    @pytest.mark.parametrize("engine", sorted(ENGINE_CLASSES))
    def test_batch_under_seeded_fault_plan(self, clicks, engine):
        """A seeded FaultPlan injects the same failures into both runs;
        recovery reruns and reshuffles must not perturb batch output."""
        from repro.mapreduce.faults import FaultPlan

        def cluster():
            c = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
            c.hdfs.write_records("in", clicks)
            return c

        n_tasks = len(cluster().hdfs.input_splits("in"))

        def run(batch):
            c = cluster()
            plan = FaultPlan.random(
                seed=29,
                num_map_tasks=n_tasks,
                num_reducers=2,
                nodes=c.nodes,
                shuffle_failure_rate=0.05,
                crash_after=3,
            )
            kwargs = {"fault_plan": plan}
            if engine == "onepass":
                kwargs["checkpoint_interval"] = 4
            result = ENGINE_CLASSES[engine](cluster=c, **kwargs).run(
                _job_for(engine, "per-user-count", batch)
            )
            return _snapshot(c, result)

        assert run(True) == run(False), engine

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", sorted(ENGINE_CLASSES))
    def test_batch_survives_journal_resume(self, engine, tmp_path):
        """Crash the coordinator mid-run and resume from the journal with
        ``batch`` on: the sweep harness itself verifies the resumed run's
        output is byte-identical to an uncrashed reference."""
        from repro.testing import ChaosTarget, run_crashpoint_sweep
        from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

        records = list(
            generate_clicks(
                ClickStreamConfig(num_clicks=900, num_users=40, num_urls=30)
            )
        )

        def make_cluster():
            c = LocalCluster(num_nodes=3, block_size=32 * 1024)
            c.hdfs.write_records("in", records)
            return c

        target = ChaosTarget(
            name=f"{engine}-batch",
            make_cluster=make_cluster,
            make_engine=lambda cluster, journal: ENGINE_CLASSES[engine](
                cluster, journal=journal
            ),
            make_job=lambda: _job_for(engine, "per-user-count", batch=True),
        )
        report = run_crashpoint_sweep(
            target,
            str(tmp_path),
            mode="sampled",
            samples=2,
            seed=7,
            crash_modes=("after",),
        )
        assert report.crashes == report.resumes == 2
        assert report.output_records > 0

"""End-to-end fault recovery across workloads and engines."""

import pytest

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.counters import C
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hop import HOPEngine
from repro.mapreduce.recovery import SpeculationPolicy
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.inverted_index import (
    inverted_index_job,
    inverted_index_onepass_job,
    reference_index,
)
from repro.workloads.sessionization import (
    reference_sessions,
    sessionization_job,
    sessionization_onepass_job,
)


def every_other_task_fails(cluster, path):
    n = len(cluster.hdfs.input_splits(path))
    return FaultPlan(map_failures={t: 1 for t in range(0, n, 2)})


class TestSessionizationUnderFaults:
    def test_hadoop(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        plan = every_other_task_fails(cluster, "in")
        result = HadoopEngine(cluster, fault_plan=plan).run(
            sessionization_job("in", "out", gap=5.0)
        )
        assert sorted(cluster.hdfs.read_records("out")) == reference_sessions(
            clicks, gap=5.0
        )
        assert result.counters[C.MAP_TASK_RETRIES] == plan.total_failures_injected

    def test_onepass_holistic_job(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        plan = every_other_task_fails(cluster, "in")
        OnePassEngine(cluster, fault_plan=plan).run(
            sessionization_onepass_job("in", "out", gap=5.0)
        )
        assert sorted(cluster.hdfs.read_records("out")) == reference_sessions(
            clicks, gap=5.0
        )


class TestInvertedIndexUnderFaults:
    def test_hadoop(self, documents):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", documents)
        plan = FaultPlan(map_failures={0: 2})
        HadoopEngine(cluster, fault_plan=plan).run(inverted_index_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_index(documents)

    def test_onepass_hotset_with_faults(self, documents):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", documents)
        plan = FaultPlan(map_failures={1: 1})
        OnePassEngine(cluster, fault_plan=plan).run(
            inverted_index_onepass_job("in", "out")
        )
        assert dict(cluster.hdfs.read_records("out")) == reference_index(documents)


class TestFaultsPlusReplication:
    def test_retry_on_another_node_reads_remote_replica(self, clicks):
        """A retried task lands on a different node; with replication=2 it
        may still find a local replica — either way the answer holds."""
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024, replication=2)
        cluster.hdfs.write_records("in", clicks)
        plan = every_other_task_fails(cluster, "in")
        from repro.workloads.page_frequency import (
            page_frequency_job,
            reference_page_counts,
        )

        HadoopEngine(cluster, fault_plan=plan).run(page_frequency_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_storage_loss_plus_task_failures(self, clicks):
        """The full gauntlet: one DataNode wiped *and* map attempts killed."""
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024, replication=2)
        cluster.hdfs.write_records("in", clicks)
        cluster.nodes["node02"].hdfs_disk.delete_prefix("hdfs/")
        plan = FaultPlan(map_failures={0: 1, 3: 1})
        from repro.workloads.per_user_count import (
            per_user_count_job,
            reference_user_counts,
        )

        HadoopEngine(cluster, fault_plan=plan).run(per_user_count_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)


def replicated_cluster(clicks):
    cluster = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
    cluster.hdfs.write_records("in", clicks)
    return cluster


def jobs_for(name):
    from repro.workloads.per_user_count import (
        per_user_count_job,
        per_user_count_onepass_job,
    )

    return per_user_count_onepass_job if name == "onepass" else per_user_count_job


def run_engine(name, cluster, out, plan=None, **kwargs):
    job = jobs_for(name)("in", out)
    if name == "hadoop":
        engine = HadoopEngine(cluster, fault_plan=plan, **kwargs)
    elif name == "hop":
        engine = HOPEngine(cluster, fault_plan=plan, **kwargs)
    else:
        engine = OnePassEngine(cluster, fault_plan=plan, **kwargs)
    return engine.run(job)


ENGINES = ("hadoop", "hop", "onepass")


class TestNodeCrashRecovery:
    """A whole node dies mid-job: intermediate data, HDFS replicas, tasks."""

    @pytest.mark.parametrize("name", ENGINES)
    def test_byte_identical_after_crash(self, clicks, name):
        clean = replicated_cluster(clicks)
        run_engine(name, clean, "out")
        expected = list(clean.hdfs.read_records("out"))

        crashed = replicated_cluster(clicks)
        result = run_engine(
            name, crashed, "out", plan=FaultPlan(node_crashes={"node01": 3})
        )
        assert list(crashed.hdfs.read_records("out")) == expected
        assert result.counters[C.NODE_CRASHES] == 1
        assert result.counters[C.TASKS_RERUN] > 0
        assert result.counters[C.BLOCKS_REREPLICATED] > 0
        assert result.counters[C.T_RECOVERY] > 0

    def test_hadoop_reshuffles_lost_map_output(self, clicks):
        cluster = replicated_cluster(clicks)
        result = run_engine(
            "hadoop", cluster, "out", plan=FaultPlan(node_crashes={"node01": 3})
        )
        # Reruns re-serve segments from disk: visible as reshuffled bytes.
        assert result.counters[C.BYTES_RESHUFFLED] > 0

    @pytest.mark.parametrize("name", ("hop", "onepass"))
    def test_push_engines_replay_partition_logs(self, clicks, name):
        cluster = replicated_cluster(clicks)
        result = run_engine(
            name, cluster, "out", plan=FaultPlan(node_crashes={"node01": 3})
        )
        # Durable delivery logs were written, and recovery either replayed
        # them or restored nothing because no reducer lived on the node —
        # the crash itself must at least re-home replicas.
        assert result.counters[C.LOG_BYTES] > 0

    def test_two_crashes_survived(self, clicks):
        from repro.workloads.per_user_count import reference_user_counts

        cluster = replicated_cluster(clicks)
        result = run_engine(
            "hadoop",
            cluster,
            "out",
            plan=FaultPlan(node_crashes={"node01": 3, "node03": 6}),
        )
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)
        assert result.counters[C.NODE_CRASHES] == 2


class TestReduceFailureRecovery:
    @pytest.mark.parametrize("name", ENGINES)
    def test_byte_identical_after_reduce_failures(self, clicks, name):
        clean = replicated_cluster(clicks)
        run_engine(name, clean, "out")
        expected = list(clean.hdfs.read_records("out"))

        faulty = replicated_cluster(clicks)
        plan = FaultPlan(reduce_failures={0: 1, 1: 2})
        result = run_engine(name, faulty, "out", plan=plan)
        assert list(faulty.hdfs.read_records("out")) == expected
        assert result.counters[C.REDUCE_TASK_RETRIES] == 3

    def test_onepass_checkpoint_replays_less(self, clicks):
        plan = lambda: FaultPlan(reduce_failures={0: 1, 1: 1})
        full = replicated_cluster(clicks)
        full_result = run_engine("onepass", full, "out", plan=plan())
        ckpt = replicated_cluster(clicks)
        ckpt_result = run_engine(
            "onepass", ckpt, "out", plan=plan(), checkpoint_interval=3
        )
        assert list(ckpt.hdfs.read_records("out")) == list(
            full.hdfs.read_records("out")
        )
        assert ckpt_result.counters[C.CHECKPOINT_RESTORES] > 0
        assert (
            ckpt_result.counters[C.REPLAYED_RECORDS]
            < full_result.counters[C.REPLAYED_RECORDS]
        )


class TestSpeculativeExecution:
    @pytest.mark.parametrize("name", ENGINES)
    def test_slow_node_triggers_backups(self, clicks, name):
        clean = replicated_cluster(clicks)
        run_engine(name, clean, "out")
        expected = list(clean.hdfs.read_records("out"))

        slow = replicated_cluster(clicks)
        result = run_engine(
            name,
            slow,
            "out",
            plan=FaultPlan(slow_nodes={"node01": 8.0}),
            speculation=SpeculationPolicy(min_completed=1),
        )
        assert list(slow.hdfs.read_records("out")) == expected
        assert result.counters[C.SPECULATIVE_LAUNCHED] > 0
        assert result.counters[C.SPECULATIVE_WINS] > 0
        assert result.counters[C.SPECULATIVE_WASTED_MS] > 0

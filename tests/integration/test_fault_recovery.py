"""End-to-end fault recovery across workloads and engines."""

import pytest

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.counters import C
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.inverted_index import (
    inverted_index_job,
    inverted_index_onepass_job,
    reference_index,
)
from repro.workloads.sessionization import (
    reference_sessions,
    sessionization_job,
    sessionization_onepass_job,
)


def every_other_task_fails(cluster, path):
    n = len(cluster.hdfs.input_splits(path))
    return FaultPlan(map_failures={t: 1 for t in range(0, n, 2)})


class TestSessionizationUnderFaults:
    def test_hadoop(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        plan = every_other_task_fails(cluster, "in")
        result = HadoopEngine(cluster, fault_plan=plan).run(
            sessionization_job("in", "out", gap=5.0)
        )
        assert sorted(cluster.hdfs.read_records("out")) == reference_sessions(
            clicks, gap=5.0
        )
        assert result.counters[C.MAP_TASK_RETRIES] == plan.total_failures_injected

    def test_onepass_holistic_job(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        plan = every_other_task_fails(cluster, "in")
        OnePassEngine(cluster, fault_plan=plan).run(
            sessionization_onepass_job("in", "out", gap=5.0)
        )
        assert sorted(cluster.hdfs.read_records("out")) == reference_sessions(
            clicks, gap=5.0
        )


class TestInvertedIndexUnderFaults:
    def test_hadoop(self, documents):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", documents)
        plan = FaultPlan(map_failures={0: 2})
        HadoopEngine(cluster, fault_plan=plan).run(inverted_index_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_index(documents)

    def test_onepass_hotset_with_faults(self, documents):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", documents)
        plan = FaultPlan(map_failures={1: 1})
        OnePassEngine(cluster, fault_plan=plan).run(
            inverted_index_onepass_job("in", "out")
        )
        assert dict(cluster.hdfs.read_records("out")) == reference_index(documents)


class TestFaultsPlusReplication:
    def test_retry_on_another_node_reads_remote_replica(self, clicks):
        """A retried task lands on a different node; with replication=2 it
        may still find a local replica — either way the answer holds."""
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024, replication=2)
        cluster.hdfs.write_records("in", clicks)
        plan = every_other_task_fails(cluster, "in")
        from repro.workloads.page_frequency import (
            page_frequency_job,
            reference_page_counts,
        )

        HadoopEngine(cluster, fault_plan=plan).run(page_frequency_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_storage_loss_plus_task_failures(self, clicks):
        """The full gauntlet: one DataNode wiped *and* map attempts killed."""
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024, replication=2)
        cluster.hdfs.write_records("in", clicks)
        cluster.nodes["node02"].hdfs_disk.delete_prefix("hdfs/")
        plan = FaultPlan(map_failures={0: 1, 3: 1})
        from repro.workloads.per_user_count import (
            per_user_count_job,
            reference_user_counts,
        )

        HadoopEngine(cluster, fault_plan=plan).run(per_user_count_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)

"""Storage-architecture variants of the executable engine (§III.C)."""

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.page_frequency import page_frequency_job, reference_page_counts
from repro.workloads.per_user_count import per_user_count_job, reference_user_counts


class TestSSDArchitecture:
    def test_intermediate_data_lands_on_ssd(self, clicks):
        cluster = LocalCluster(num_nodes=2, with_ssd=True, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks)
        job = per_user_count_job(
            "in", "out", with_combiner=False
        ).with_config(reduce_buffer_bytes=16 * 1024)
        HadoopEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)
        ssd_writes = sum(
            node.disks["ssd"].stats.bytes_written for node in cluster.nodes.values()
        )
        assert ssd_writes > 0
        # HDFS data stays on the HDDs.
        hdd_hdfs = sum(
            node.disks["hdd"].stats.bytes_written for node in cluster.nodes.values()
        )
        assert hdd_hdfs > 0
        for node in cluster.nodes.values():
            assert not node.disks["hdd"].list_files("reduce/")

    def test_hdd_relieved_of_intermediate_traffic(self, clicks):
        def hdd_bytes(with_ssd):
            cluster = LocalCluster(
                num_nodes=2, with_ssd=with_ssd, block_size=48 * 1024
            )
            cluster.hdfs.write_records("in", clicks)
            job = per_user_count_job("in", "out", with_combiner=False).with_config(
                reduce_buffer_bytes=16 * 1024
            )
            HadoopEngine(cluster).run(job)
            return sum(
                n.disks["hdd"].stats.total_bytes for n in cluster.nodes.values()
            )

        assert hdd_bytes(with_ssd=True) < hdd_bytes(with_ssd=False)


class TestSeparateStorage:
    def test_no_data_locality(self, clicks):
        cluster = LocalCluster(num_nodes=4, storage_nodes=2, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks)
        result = HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        assert result.schedule.locality_rate == 0.0
        assert result.network_bytes >= cluster.hdfs.file_bytes("in")
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_compute_disks_carry_no_hdfs_blocks(self, clicks):
        cluster = LocalCluster(num_nodes=4, storage_nodes=2, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks)
        HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        for name in cluster.compute_node_names:
            assert cluster.nodes[name].hdfs_disk.list_files("hdfs/") == []

    def test_output_written_back_to_storage_nodes(self, clicks):
        cluster = LocalCluster(num_nodes=3, storage_nodes=1, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks)
        HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        storage = cluster.storage_node_names[0]
        assert any(
            "out" in f for f in cluster.nodes[storage].hdfs_disk.list_files("hdfs/")
        )

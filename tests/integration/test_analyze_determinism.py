"""Analyzer reports are deterministic artifacts.

``repro analyze`` output is logical-clock arithmetic over the trace, so
the canonical JSON rendering must be byte-identical whether the run used
the serial, thread or process executor — clean or under a seeded fault
plan — and a journal report must converge to the same bytes whether the
journal came from an uninterrupted run or a crash-and-resume at an
arbitrary append site (the exactly-once guarantee, observed through the
analyzer instead of the output file).
"""

import json

import pytest

from repro.core.engine import OnePassEngine
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hop import HOPEngine
from repro.mapreduce.journal import CoordinatorCrash, JobJournal
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.obs.analyze import (
    analyze_journal,
    analyze_tracer,
    render_json,
    validate_report,
)
from repro.obs.tracer import Tracer
from repro.workloads import per_user_count_job, per_user_count_onepass_job
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

EXECUTORS = (None, "threads:2", "processes:2")
ENGINES = ("hadoop", "hop", "onepass")

CLICKS = list(
    generate_clicks(
        ClickStreamConfig(num_clicks=2_500, num_users=120, num_urls=60, seed=13)
    )
)


def _report_json(engine, executor, *, faults=False):
    """One traced run -> the canonical JSON report bytes."""
    if faults:
        cluster = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
    else:
        cluster = LocalCluster(num_nodes=3, block_size=48 * 1024)
    cluster.hdfs.write_records("in", CLICKS)
    tracer = Tracer()
    kwargs = {"executor": executor, "tracer": tracer}
    if faults:
        kwargs["fault_plan"] = FaultPlan.random(
            seed=29,
            num_map_tasks=len(cluster.hdfs.input_splits("in")),
            num_reducers=2,
            nodes=cluster.nodes,
            map_failure_rate=0.2,
            shuffle_failure_rate=0.05,
            reduce_failure_rate=0.3,
            crash_after=3,
        )
    if engine == "hadoop":
        HadoopEngine(cluster, **kwargs).run(per_user_count_job("in", "out"))
    elif engine == "hop":
        HOPEngine(cluster, **kwargs).run(per_user_count_job("in", "out"))
    else:
        if faults:
            kwargs["checkpoint_interval"] = 4
        OnePassEngine(cluster, **kwargs).run(
            per_user_count_onepass_job("in", "out")
        )
    return render_json(analyze_tracer(tracer, job_name=f"{engine}:per-user-count"))


class TestReportDeterminism:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_byte_identical_across_executors(self, engine):
        reference = _report_json(engine, None)
        assert validate_report(json.loads(reference)) == []
        for executor in EXECUTORS[1:]:
            assert _report_json(engine, executor) == reference, (engine, executor)

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ENGINES)
    def test_byte_identical_under_seeded_faults(self, engine):
        reference = _report_json(engine, None, faults=True)
        report = json.loads(reference)
        assert validate_report(report) == []
        # The plan actually bit: recovery shows up in the skew section.
        assert report["skew"]["recovery_events"], engine
        for executor in EXECUTORS[1:]:
            assert _report_json(engine, executor, faults=True) == reference, (
                engine,
                executor,
            )


class TestJournalReportConvergence:
    def test_crash_resume_report_matches_uninterrupted(self, tmp_path):
        def fresh_cluster():
            cluster = LocalCluster(num_nodes=3, block_size=48 * 1024)
            cluster.hdfs.write_records("in", CLICKS)
            return cluster

        ref_journal = JobJournal(tmp_path / "ref")
        HadoopEngine(fresh_cluster(), journal=ref_journal).run(
            per_user_count_job("in", "out")
        )
        reference = render_json(analyze_journal(str(tmp_path / "ref")))
        site = ref_journal.appends // 2
        assert site > 0

        for crash_mode in ("after", "torn"):
            journal_dir = tmp_path / f"site-{crash_mode}"
            with pytest.raises(CoordinatorCrash):
                HadoopEngine(
                    fresh_cluster(),
                    journal=JobJournal(journal_dir, crash_at=site, crash_mode=crash_mode),
                ).run(per_user_count_job("in", "out"))
            HadoopEngine(fresh_cluster(), journal=JobJournal(journal_dir)).run(
                per_user_count_job("in", "out")
            )
            # Converged view: identical bytes to the uninterrupted history.
            assert render_json(analyze_journal(str(journal_dir))) == reference
            # The per-session detail legitimately differs and says so.
            detail = analyze_journal(str(journal_dir), detail=True)
            assert detail["session"]["records"] > 0

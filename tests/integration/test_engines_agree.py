"""Cross-engine agreement: the portability claim, exercised end to end.

The same analytical query must yield identical answers on the sort-merge
baseline, MapReduce Online and the hash-based one-pass engine — that is
what justifies swapping the implementation beneath the MapReduce API.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.api import JobConfig
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.inverted_index import (
    inverted_index_job,
    inverted_index_onepass_job,
    reference_index,
)
from repro.workloads.page_frequency import (
    page_frequency_job,
    page_frequency_onepass_job,
    reference_page_counts,
)
from repro.workloads.per_user_count import (
    per_user_count_job,
    per_user_count_onepass_job,
    reference_user_counts,
)
from repro.workloads.sessionization import (
    reference_sessions,
    sessionization_job,
    sessionization_onepass_job,
)


def fresh_cluster(records, path="in", **kwargs):
    cluster = LocalCluster(num_nodes=3, block_size=48 * 1024, **kwargs)
    cluster.hdfs.write_records(path, records)
    return cluster


class TestFourWorkloadsThreeEngines:
    def test_page_frequency(self, clicks):
        cluster = fresh_cluster(clicks)
        ref = reference_page_counts(clicks)
        HadoopEngine(cluster).run(page_frequency_job("in", "o1"))
        HOPEngine(cluster).run(page_frequency_job("in", "o2"))
        OnePassEngine(cluster).run(page_frequency_onepass_job("in", "o3"))
        for out in ("o1", "o2", "o3"):
            assert dict(cluster.hdfs.read_records(out)) == ref

    def test_per_user_count(self, clicks):
        cluster = fresh_cluster(clicks)
        ref = reference_user_counts(clicks)
        HadoopEngine(cluster).run(per_user_count_job("in", "o1"))
        HOPEngine(cluster).run(per_user_count_job("in", "o2"))
        OnePassEngine(cluster).run(per_user_count_onepass_job("in", "o3"))
        for out in ("o1", "o2", "o3"):
            assert dict(cluster.hdfs.read_records(out)) == ref

    def test_sessionization(self, clicks):
        cluster = fresh_cluster(clicks)
        ref = reference_sessions(clicks, gap=5.0)
        HadoopEngine(cluster).run(sessionization_job("in", "o1", gap=5.0))
        HOPEngine(cluster).run(sessionization_job("in", "o2", gap=5.0))
        OnePassEngine(cluster).run(sessionization_onepass_job("in", "o3", gap=5.0))
        for out in ("o1", "o2", "o3"):
            assert sorted(cluster.hdfs.read_records(out)) == ref

    def test_inverted_index(self, documents):
        cluster = fresh_cluster(documents)
        ref = reference_index(documents)
        HadoopEngine(cluster).run(inverted_index_job("in", "o1"))
        HOPEngine(cluster).run(inverted_index_job("in", "o2"))
        OnePassEngine(cluster).run(inverted_index_onepass_job("in", "o3"))
        for out in ("o1", "o2", "o3"):
            assert dict(cluster.hdfs.read_records(out)) == ref


class TestConfigurationInvariance:
    """Answers must not depend on tuning knobs, only on the data."""

    @pytest.mark.parametrize("reducers", [1, 3, 7])
    def test_reducer_count(self, clicks, reducers):
        cluster = fresh_cluster(clicks)
        job = page_frequency_job("in", "out", config=JobConfig(num_reducers=reducers))
        HadoopEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    @pytest.mark.parametrize("buffer_bytes", [1024, 64 * 1024, 16 * 1024 * 1024])
    def test_map_buffer_size(self, clicks, buffer_bytes):
        cluster = fresh_cluster(clicks)
        job = per_user_count_job(
            "in", "out", config=JobConfig(map_buffer_bytes=buffer_bytes)
        )
        HadoopEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)

    @pytest.mark.parametrize("merge_factor", [2, 3, 10])
    def test_merge_factor(self, clicks, merge_factor):
        cluster = fresh_cluster(clicks)
        job = per_user_count_job(
            "in",
            "out",
            with_combiner=False,
            config=JobConfig(
                merge_factor=merge_factor, reduce_buffer_bytes=16 * 1024
            ),
        )
        HadoopEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)

    @pytest.mark.parametrize("granularity", [50, 500, 50_000])
    def test_hop_granularity(self, clicks, granularity):
        cluster = fresh_cluster(clicks)
        HOPEngine(
            cluster, hop_config=HOPConfig(granularity_records=granularity)
        ).run(page_frequency_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    @pytest.mark.parametrize("memory", [4 * 1024, 256 * 1024, 64 * 1024 * 1024])
    def test_onepass_reduce_memory(self, clicks, memory):
        cluster = fresh_cluster(clicks)
        cfg = OnePassConfig(
            mode="incremental", reduce_memory_bytes=memory, map_side_combine=False
        )
        OnePassEngine(cluster).run(
            per_user_count_onepass_job("in", "out", config=cfg)
        )
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)


class TestAgreementUnderRandomFaults:
    """The portability claim must survive a hostile cluster.

    Each engine runs under its *own* FaultPlan instance derived from the
    same seed (plans are stateful), so all three see the same injected
    map/reduce failures, shuffle faults and node crash — and must still
    produce exactly the answer of a fault-free run.
    """

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [7, 23, 51])
    def test_three_engines_agree_under_faults(self, clicks, seed):
        from repro.mapreduce.faults import FaultPlan

        def cluster():
            c = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
            c.hdfs.write_records("in", clicks)
            return c

        probe = cluster()
        n_tasks = len(probe.hdfs.input_splits("in"))

        def plan():
            return FaultPlan.random(
                seed=seed,
                num_map_tasks=n_tasks,
                num_reducers=2,
                nodes=probe.nodes,
                shuffle_failure_rate=0.05,
                crash_after=3,
            )

        ref = reference_user_counts(clicks)
        runs = {
            "hadoop": lambda c: HadoopEngine(c, fault_plan=plan()).run(
                per_user_count_job("in", "out")
            ),
            "hop": lambda c: HOPEngine(c, fault_plan=plan()).run(
                per_user_count_job("in", "out")
            ),
            "onepass": lambda c: OnePassEngine(
                c, fault_plan=plan(), checkpoint_interval=4
            ).run(per_user_count_onepass_job("in", "out")),
        }
        for name, run in runs.items():
            faulty = cluster()
            run(faulty)
            assert dict(faulty.hdfs.read_records("out")) == ref, name

    def test_faulty_run_matches_clean_run_exactly(self, clicks):
        """Not just the same dict — the same bytes, in the same order."""
        from repro.mapreduce.faults import FaultPlan

        for engine_cls, job in (
            (HadoopEngine, per_user_count_job),
            (HOPEngine, per_user_count_job),
            (OnePassEngine, per_user_count_onepass_job),
        ):
            def cluster():
                c = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
                c.hdfs.write_records("in", clicks)
                return c

            clean_cluster = cluster()
            engine_cls(clean_cluster).run(job("in", "out"))
            expected = list(clean_cluster.hdfs.read_records("out"))

            faulty_cluster = cluster()
            plan = FaultPlan(
                map_failures={0: 1, 2: 1},
                reduce_failures={1: 1},
                node_crashes={"node02": 4},
            )
            engine_cls(faulty_cluster, fault_plan=plan).run(job("in", "out"))
            assert (
                list(faulty_cluster.hdfs.read_records("out")) == expected
            ), engine_cls.__name__


def _workload_jobs(workload):
    """Return (sortmerge_job_fn, onepass_job_fn, fixture_name)."""
    if workload == "sessionization":
        return (
            lambda i, o: sessionization_job(i, o, gap=5.0),
            lambda i, o: sessionization_onepass_job(i, o, gap=5.0),
            "clicks",
        )
    if workload == "page-frequency":
        return page_frequency_job, page_frequency_onepass_job, "clicks"
    if workload == "per-user-count":
        return per_user_count_job, per_user_count_onepass_job, "clicks"
    return inverted_index_job, inverted_index_onepass_job, "documents"


def _run_with_executor(engine, cluster, workload, executor, **engine_kwargs):
    sm_job, op_job, _ = _workload_jobs(workload)
    if engine == "hadoop":
        return HadoopEngine(cluster, executor=executor, **engine_kwargs).run(
            sm_job("in", "out")
        )
    if engine == "hop":
        return HOPEngine(cluster, executor=executor, **engine_kwargs).run(
            sm_job("in", "out")
        )
    return OnePassEngine(cluster, executor=executor, **engine_kwargs).run(
        op_job("in", "out")
    )


def _snapshot(cluster, result, out="out"):
    """Everything a run observably produced, minus wall-clock timers."""
    counters = {
        k: v
        for k, v in result.counters.as_dict().items()
        if not k.startswith("time.")
    }
    return (
        list(cluster.hdfs.read_records(out)),
        cluster.hdfs.file_bytes(out),
        counters,
        result.output_records,
    )


class TestExecutorDeterminism:
    """Executors must be interchangeable, not merely equivalent.

    Threaded and multiprocess execution must reproduce the serial run
    byte for byte — same output records in the same order, same HDFS file
    bytes, and the same counters (wall-clock ``time.*`` timers excluded,
    as they are the one legitimately nondeterministic observable).
    """

    EXECUTORS = ("threads:2", "processes:2")
    WORKLOADS = (
        "page-frequency",
        "per-user-count",
        "sessionization",
        "inverted-index",
    )

    @pytest.mark.slow
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("engine", ["hadoop", "hop", "onepass"])
    def test_byte_identical_across_executors(self, request, engine, workload):
        records = request.getfixturevalue(_workload_jobs(workload)[2])

        def run(executor):
            cluster = fresh_cluster(records)
            result = _run_with_executor(engine, cluster, workload, executor)
            return _snapshot(cluster, result)

        reference = run(None)
        for executor in self.EXECUTORS:
            assert run(executor) == reference, (engine, workload, executor)

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["hadoop", "hop", "onepass"])
    def test_byte_identical_under_seeded_faults(self, clicks, engine):
        """Parallel executors must also replay fault injection exactly:
        the FaultPlan is consulted on the coordinator, so worker count
        cannot change which attempts die or what recovery rebuilds."""
        from repro.mapreduce.faults import FaultPlan

        def cluster():
            c = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
            c.hdfs.write_records("in", clicks)
            return c

        n_tasks = len(cluster().hdfs.input_splits("in"))

        def run(executor):
            c = cluster()
            plan = FaultPlan.random(
                seed=29,
                num_map_tasks=n_tasks,
                num_reducers=2,
                nodes=c.nodes,
                shuffle_failure_rate=0.05,
                crash_after=3,
            )
            kwargs = {"fault_plan": plan}
            if engine == "onepass":
                kwargs["checkpoint_interval"] = 4
            result = _run_with_executor(
                engine, c, "per-user-count", executor, **kwargs
            )
            return _snapshot(c, result)

        reference = run(None)
        for executor in self.EXECUTORS:
            assert run(executor) == reference, (engine, executor)


@pytest.mark.slow
class TestPropertyRandomStreams:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(50, 800),
        users=st.integers(1, 40),
    )
    @settings(max_examples=12, deadline=None)
    def test_engines_agree_on_random_streams(self, seed, n, users):
        from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

        clicks = list(
            generate_clicks(
                ClickStreamConfig(
                    num_clicks=n, num_users=users, num_urls=20, seed=seed
                )
            )
        )
        cluster = fresh_cluster(clicks)
        ref = reference_user_counts(clicks)
        HadoopEngine(cluster).run(per_user_count_job("in", "o1"))
        OnePassEngine(cluster).run(per_user_count_onepass_job("in", "o2"))
        assert dict(cluster.hdfs.read_records("o1")) == ref
        assert dict(cluster.hdfs.read_records("o2")) == ref

"""Codec permutations across engines and JobResult introspection."""

import pytest

from repro.core.engine import OnePassEngine
from repro.io.serialization import RawLineCodec
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.clickstream import click_text_codec
from repro.workloads.page_frequency import (
    page_frequency_job,
    page_frequency_onepass_job,
    reference_page_counts,
)


class TestCodecsAcrossEngines:
    @pytest.mark.parametrize("codec_name", ["binary", "text"])
    def test_onepass_both_codecs(self, clicks, codec_name):
        cluster = LocalCluster(num_nodes=2, block_size=64 * 1024)
        if codec_name == "text":
            cluster.hdfs.write_records("in", clicks, codec=click_text_codec())
        else:
            cluster.hdfs.write_records("in", clicks)
        OnePassEngine(cluster).run(page_frequency_onepass_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_rawline_codec_with_parsing_map(self, clicks):
        cluster = LocalCluster(num_nodes=2, block_size=64 * 1024)
        lines = [f"{ts}\t{user}\t{url}" for ts, user, url in clicks]
        cluster.hdfs.write_records("in", lines, codec=RawLineCodec())

        def line_map(line):
            yield (line.rsplit("\t", 1)[1], 1)

        job = MapReduceJob(
            "raw-count",
            line_map,
            lambda k, v: [(k, sum(v))],
            input_path="in",
            output_path="out",
        )
        HadoopEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_text_codec_floats_roundtrip_exactly(self, clicks):
        # repr(float) -> float is exact in Python; the text format must not
        # perturb timestamps (sessionization depends on exact ordering).
        codec = click_text_codec()
        decoded = list(codec.decode(codec.encode(clicks)))
        assert decoded == clicks


class TestJobResultIntrospection:
    def test_summary_fields(self, clicks):
        cluster = LocalCluster(num_nodes=2, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        result = HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        summary = result.summary()
        assert summary["map_input_bytes"] == result.counters[C.MAP_INPUT_BYTES]
        assert summary["output_records"] == result.output_records
        assert summary["wall_time"] == result.wall_time
        assert set(summary) == {
            "wall_time",
            "map_input_bytes",
            "map_output_bytes",
            "reduce_spill_bytes",
            "merge_read_bytes",
            "output_records",
            "network_bytes",
        }

    def test_engine_names_distinct(self, clicks):
        from repro.mapreduce.hop import HOPEngine

        cluster = LocalCluster(num_nodes=2, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        names = set()
        names.add(HadoopEngine(cluster).run(page_frequency_job("in", "o1")).engine)
        names.add(HOPEngine(cluster).run(page_frequency_job("in", "o2")).engine)
        names.add(
            OnePassEngine(cluster).run(page_frequency_onepass_job("in", "o3")).engine
        )
        assert names == {"hadoop", "hop", "onepass"}

    def test_cluster_disk_stats_cover_all_devices(self, clicks):
        cluster = LocalCluster(num_nodes=2, with_ssd=True, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        stats = cluster.disk_stats()
        assert len(stats) == 4  # 2 nodes x (hdd + ssd)
        total = cluster.total_disk_stats()
        assert total.bytes_written == sum(s.bytes_written for s in stats.values())

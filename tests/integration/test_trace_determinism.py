"""Traces must be reproducible: same job, same trace, on every executor.

The tracer's x-axis is a deterministic logical clock — worker-side spans
are absorbed by the coordinator in task order, not completion order — so
the same job on the same data must produce byte-identical span and event
streams whether it runs serially, on threads, or on forked processes.
Only the advisory ``wall_s``/wall-clock fields may differ.
"""

import pytest

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.obs.tracer import Tracer
from repro.workloads.inverted_index import (
    inverted_index_job,
    inverted_index_onepass_job,
)
from repro.workloads.page_frequency import (
    page_frequency_job,
    page_frequency_onepass_job,
)
from repro.workloads.per_user_count import (
    per_user_count_job,
    per_user_count_onepass_job,
)
from repro.workloads.sessionization import (
    sessionization_job,
    sessionization_onepass_job,
)

EXECUTORS = (None, "threads:2", "processes:2")
WORKLOADS = ("page-frequency", "per-user-count", "sessionization", "inverted-index")


def _jobs(workload):
    if workload == "sessionization":
        return (
            lambda i, o: sessionization_job(i, o, gap=5.0),
            lambda i, o: sessionization_onepass_job(i, o, gap=5.0),
            "clicks",
        )
    if workload == "page-frequency":
        return page_frequency_job, page_frequency_onepass_job, "clicks"
    if workload == "per-user-count":
        return per_user_count_job, per_user_count_onepass_job, "clicks"
    return inverted_index_job, inverted_index_onepass_job, "documents"


def normalize(tracer):
    """Everything in a trace except the advisory wall-clock fields."""
    spans = [
        (s.name, s.cat, s.t0, s.t1, s.node, s.task, tuple(sorted(s.args.items())))
        for s in tracer.spans
    ]
    events = [
        (e.name, e.cat, e.ts, e.node, e.task, tuple(sorted(e.args.items())))
        for e in tracer.events
    ]
    return spans, events, tracer.clock


def run_traced(engine, records, workload, executor, **engine_kwargs):
    cluster = LocalCluster(num_nodes=3, block_size=48 * 1024)
    cluster.hdfs.write_records("in", records)
    sm_job, op_job, _ = _jobs(workload)
    tracer = Tracer()
    if engine == "hadoop":
        HadoopEngine(cluster, executor=executor, tracer=tracer, **engine_kwargs).run(
            sm_job("in", "out")
        )
    elif engine == "hop":
        HOPEngine(cluster, executor=executor, tracer=tracer, **engine_kwargs).run(
            sm_job("in", "out")
        )
    else:
        OnePassEngine(cluster, executor=executor, tracer=tracer, **engine_kwargs).run(
            op_job("in", "out")
        )
    return normalize(tracer)


class TestTraceDeterminism:
    @pytest.mark.slow
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("engine", ["hadoop", "hop", "onepass"])
    def test_identical_trace_across_executors(self, request, engine, workload):
        records = request.getfixturevalue(_jobs(workload)[2])
        reference = run_traced(engine, records, workload, None)
        spans, events, clock = reference
        assert spans, (engine, workload)
        assert clock > 0
        for executor in EXECUTORS[1:]:
            assert run_traced(engine, records, workload, executor) == reference, (
                engine,
                workload,
                executor,
            )

    @pytest.mark.parametrize("engine", ["hadoop", "hop", "onepass"])
    def test_expected_phase_categories_present(self, clicks, engine):
        spans, _, _ = run_traced(engine, clicks, "per-user-count", None)
        cats = {cat for _, cat, *_ in spans}
        assert {"map", "reduce", "phase"} <= cats, (engine, cats)
        if engine == "hadoop":
            assert {"sort", "shuffle"} <= cats
        if engine == "onepass":
            assert "shuffle" in cats  # push-based sink deliveries

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["hadoop", "hop", "onepass"])
    def test_identical_trace_under_seeded_faults(self, clicks, engine):
        """Fault injection replays identically, so recovery spans and
        events must land on the same logical ticks on every executor."""

        def run(executor):
            cluster = LocalCluster(num_nodes=4, block_size=64 * 1024, replication=2)
            cluster.hdfs.write_records("in", clicks)
            plan = FaultPlan.random(
                seed=29,
                num_map_tasks=len(cluster.hdfs.input_splits("in")),
                num_reducers=2,
                nodes=cluster.nodes,
                shuffle_failure_rate=0.05,
                crash_after=3,
            )
            sm_job, op_job, _ = _jobs("per-user-count")
            tracer = Tracer()
            kwargs = {"fault_plan": plan, "executor": executor, "tracer": tracer}
            if engine == "hadoop":
                HadoopEngine(cluster, **kwargs).run(sm_job("in", "out"))
            elif engine == "hop":
                HOPEngine(cluster, **kwargs).run(sm_job("in", "out"))
            else:
                OnePassEngine(cluster, checkpoint_interval=4, **kwargs).run(
                    op_job("in", "out")
                )
            return normalize(tracer)

        reference = run(None)
        _, events, _ = reference
        assert any(
            cat == "recovery" for _, cat, *_ in events
        ), "seeded fault run produced no recovery events"
        for executor in EXECUTORS[1:]:
            assert run(executor) == reference, (engine, executor)

    def test_disabled_tracer_leaves_no_trace(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks)
        result = HadoopEngine(cluster).run(per_user_count_job("in", "out"))
        assert result.trace is None

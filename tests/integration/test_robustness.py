"""Edge cases and degenerate inputs across engines."""

import pytest

from repro.core.aggregates import COUNT
from repro.core.engine import OnePassConfig, OnePassEngine, OnePassJob
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.hop import HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster


def fresh(records):
    cluster = LocalCluster(num_nodes=2, block_size=32 * 1024)
    cluster.hdfs.write_records("in", records)
    return cluster


def count_job(**kwargs):
    return MapReduceJob(
        "count",
        lambda r: [(r, 1)],
        lambda k, v: [(k, sum(v))],
        input_path="in",
        output_path="out",
        **kwargs,
    )


def count_onepass(**kwargs):
    return OnePassJob(
        "count",
        lambda r: [(r, 1)],
        aggregator=COUNT,
        input_path="in",
        output_path="out",
        **kwargs,
    )


class TestDegenerateInputs:
    def test_empty_input_all_engines(self):
        for engine_cls, job in (
            (HadoopEngine, count_job()),
            (HOPEngine, count_job()),
            (OnePassEngine, count_onepass()),
        ):
            cluster = fresh([])
            result = engine_cls(cluster).run(job)
            assert result.output_records == 0
            assert list(cluster.hdfs.read_records("out")) == []

    def test_single_record(self):
        cluster = fresh(["only"])
        HadoopEngine(cluster).run(count_job())
        assert list(cluster.hdfs.read_records("out")) == [("only", 1)]

    def test_map_emitting_nothing(self):
        cluster = fresh(list(range(100)))
        job = MapReduceJob(
            "silent",
            lambda r: [],
            lambda k, v: [(k, sum(v))],
            input_path="in",
            output_path="out",
        )
        result = HadoopEngine(cluster).run(job)
        assert result.output_records == 0

    def test_map_fanout(self):
        # One record explodes into many pairs.
        cluster = fresh([10, 20])
        job = MapReduceJob(
            "fanout",
            lambda n: [(i, 1) for i in range(n)],
            lambda k, v: [(k, sum(v))],
            input_path="in",
            output_path="out",
        )
        HadoopEngine(cluster).run(job)
        got = dict(cluster.hdfs.read_records("out"))
        assert got == {i: (2 if i < 10 else 1) for i in range(20)}

    def test_all_records_same_key(self):
        cluster = fresh(["k"] * 5_000)
        OnePassEngine(cluster).run(count_onepass())
        assert list(cluster.hdfs.read_records("out")) == [("k", 5_000)]


class TestKeyTypes:
    def test_hash_engine_handles_incomparable_keys(self):
        """The hash group-by removes sort-merge's ordering requirement.

        Mixed-type keys (int vs str vs tuple) cannot be compared in
        Python, so the sort-merge baseline necessarily fails on them —
        while the hash engine only needs hashability.  This is a concrete
        consequence of replacing sort with hash that the paper's design
        discussion implies.
        """
        mixed = [1, "1", (1,), 2.5, "a", ("a", 1)] * 10
        cluster = fresh(mixed)
        OnePassEngine(cluster).run(count_onepass())
        got = dict(cluster.hdfs.read_records("out"))
        assert got == {k: 10 for k in set(mixed)}

        cluster2 = fresh(mixed)
        with pytest.raises(TypeError):
            HadoopEngine(cluster2).run(count_job())

    def test_unicode_keys(self):
        keys = ["héllo", "世界", "🙂", "ascii"]
        cluster = fresh(keys * 3)
        HadoopEngine(cluster).run(count_job())
        assert dict(cluster.hdfs.read_records("out")) == {k: 3 for k in keys}

    def test_long_keys(self):
        keys = ["x" * 10_000, "y" * 10_000]
        cluster = fresh(keys * 2)
        OnePassEngine(cluster).run(count_onepass())
        assert dict(cluster.hdfs.read_records("out")) == {k: 2 for k in keys}

    def test_none_key(self):
        cluster = fresh([None, None, None])
        OnePassEngine(cluster).run(count_onepass())
        assert dict(cluster.hdfs.read_records("out")) == {None: 3}


class TestBoundaryConfigs:
    def test_one_reducer(self):
        cluster = fresh([f"k{i % 7}" for i in range(500)])
        job = count_onepass(config=OnePassConfig(num_reducers=1))
        OnePassEngine(cluster).run(job)
        assert len(dict(cluster.hdfs.read_records("out"))) == 7

    def test_more_reducers_than_keys(self):
        cluster = fresh(["a", "b"] * 10)
        job = count_onepass(config=OnePassConfig(num_reducers=16))
        OnePassEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == {"a": 10, "b": 10}

    def test_single_node_cluster(self):
        cluster = LocalCluster(num_nodes=1, block_size=32 * 1024)
        cluster.hdfs.write_records("in", [f"k{i % 5}" for i in range(200)])
        HadoopEngine(cluster).run(count_job())
        assert len(dict(cluster.hdfs.read_records("out"))) == 5

"""Crashpoint chaos sweeps: kill the coordinator everywhere, resume, verify.

The acceptance bar for the journal subsystem: an exhaustive sweep — crash
at *every* journal-append site, in both crash modes — must hold all five
invariants (byte-identical output, exactly-once commits, no orphans,
counter consistency, idempotent replay) on every engine, with and without
a seeded :class:`FaultPlan` running underneath.
"""

import pytest

from repro.core.engine import OnePassEngine
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hop import HOPEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.testing import ChaosTarget, run_crashpoint_sweep
from repro.testing.chaos import _pick_sites
from repro.workloads import per_user_count_job, per_user_count_onepass_job
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

RECORDS = list(
    generate_clicks(ClickStreamConfig(num_clicks=900, num_users=40, num_urls=30))
)

ENGINES = {
    "hadoop": (HadoopEngine, per_user_count_job),
    "hop": (HOPEngine, per_user_count_job),
    "onepass": (OnePassEngine, per_user_count_onepass_job),
}


def make_cluster():
    cluster = LocalCluster(num_nodes=3, block_size=32 * 1024)
    cluster.hdfs.write_records("in", RECORDS)
    return cluster


def target_for(engine, *, fault_seed=None, **engine_kwargs):
    engine_cls, job_fn = ENGINES[engine]

    def make_engine(cluster, journal):
        kwargs = dict(engine_kwargs)
        if fault_seed is not None:
            # A fresh plan per engine instance: plans are stateful, and the
            # same seed gives crash and resume identical fault schedules.
            kwargs["fault_plan"] = FaultPlan.random(
                fault_seed,
                num_map_tasks=8,
                num_reducers=3,
                map_failure_rate=0.3,
                reduce_failure_rate=0.3,
                torn_write_rate=1.0,
                short_read_rate=1.0,
            )
        return engine_cls(cluster, journal=journal, **kwargs)

    return ChaosTarget(
        name=engine,
        make_cluster=make_cluster,
        make_engine=make_engine,
        make_job=lambda: job_fn("in", "out"),
    )


class TestExhaustiveSweep:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_all_sites_both_crash_modes(self, engine, tmp_path):
        report = run_crashpoint_sweep(
            target_for(engine), str(tmp_path), mode="exhaustive"
        )
        assert report.sites >= 5
        assert report.sites_swept == list(range(1, report.sites + 1))
        assert report.crashes == report.resumes == report.replays == 2 * report.sites
        assert report.output_records > 0

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_under_seeded_fault_plan(self, engine, tmp_path):
        kwargs = {"checkpoint_interval": 3} if engine == "onepass" else {}
        report = run_crashpoint_sweep(
            target_for(engine, fault_seed=23, **kwargs),
            str(tmp_path),
            mode="exhaustive",
        )
        assert report.crashes == 2 * report.sites
        assert report.output_records > 0


class TestSampledSweep:
    def test_sampled_mode_is_a_subset(self, tmp_path):
        report = run_crashpoint_sweep(
            target_for("onepass"),
            str(tmp_path),
            mode="sampled",
            samples=3,
            seed=42,
            crash_modes=("after",),
        )
        assert len(report.sites_swept) == 3
        assert all(1 <= k <= report.sites for k in report.sites_swept)
        assert report.crashes == report.resumes == 3

    def test_site_sampling_is_seeded(self):
        assert _pick_sites(20, "sampled", 5, 7) == _pick_sites(20, "sampled", 5, 7)
        assert _pick_sites(20, "sampled", 5, 7) != _pick_sites(20, "sampled", 5, 8)
        assert _pick_sites(3, "sampled", 10, 0) == [1, 2, 3]
        assert _pick_sites(4, "exhaustive", 1, 0) == [1, 2, 3, 4]
        with pytest.raises(ValueError, match="unknown sweep mode"):
            _pick_sites(4, "randomly", 1, 0)


class TestHarnessGuards:
    def test_journal_less_engine_rejected(self, tmp_path):
        engine_cls, job_fn = ENGINES["hadoop"]
        silent = ChaosTarget(
            name="no-journal",
            make_cluster=make_cluster,
            # Drops the journal on the floor: the reference run appends
            # nothing, which the harness must flag instead of vacuously
            # passing a zero-site sweep.
            make_engine=lambda cluster, journal: engine_cls(cluster),
            make_job=lambda: job_fn("in", "out"),
        )
        with pytest.raises(ValueError, match="no journal appends"):
            run_crashpoint_sweep(silent, str(tmp_path))

    def test_unknown_crash_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown crash modes"):
            run_crashpoint_sweep(
                target_for("hadoop"), str(tmp_path), crash_modes=("during",)
            )


@pytest.mark.no_reprosan  # each test installs its own sanitizer
class TestSanitizerInterplay:
    """Sanitizer x FaultPlan x crashpoint interplay (reprosan).

    Injected faults and simulated coordinator crashes are *modelled*
    failures: the sanitizer must neither report their unwound resources
    as leaks nor perturb the recovered output.
    """

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_crashpoint_sweep_is_sanitizer_clean(self, engine, tmp_path):
        from repro.san import Sanitizer

        with Sanitizer() as san:
            report = run_crashpoint_sweep(
                target_for(engine),
                str(tmp_path),
                mode="sampled",
                samples=3,
                seed=11,
            )
        assert report.output_records > 0
        assert san.report.clean, san.report.to_text()

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_faulted_sweep_under_all_detectors(self, engine, tmp_path):
        from repro.san import Sanitizer

        kwargs = {"checkpoint_interval": 3} if engine == "onepass" else {}
        with Sanitizer() as san:
            report = run_crashpoint_sweep(
                target_for(engine, fault_seed=23, **kwargs),
                str(tmp_path),
                mode="sampled",
                samples=3,
                seed=11,
            )
        # Both crash modes at each sampled site.
        assert report.crashes == report.resumes == 2 * 3
        assert san.report.clean, san.report.to_text()

    def test_faulted_run_output_unperturbed_by_sanitizer(self, tmp_path):
        # Same seeded faults with and without the sanitizer installed:
        # recovered output must be byte-identical.
        from repro.san import Sanitizer

        def run_once():
            cluster = make_cluster()
            engine_cls, job_fn = ENGINES["hadoop"]
            engine = engine_cls(
                cluster,
                fault_plan=FaultPlan.random(
                    23,
                    num_map_tasks=8,
                    num_reducers=3,
                    map_failure_rate=0.3,
                    reduce_failure_rate=0.3,
                    torn_write_rate=1.0,
                    short_read_rate=1.0,
                ),
            )
            engine.run(job_fn("in", "out"))
            return repr(list(cluster.hdfs.read_records("out")))

        plain = run_once()
        with Sanitizer() as san:
            sanitized = run_once()
        assert san.report.clean, san.report.to_text()
        assert sanitized == plain

"""Text-vs-binary input (§III.B.1) and one-pass streaming behaviour."""

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.core.incremental import count_threshold_policy
from repro.core.queries import ThresholdQuery
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.clickstream import click_text_codec
from repro.workloads.page_frequency import (
    page_frequency_job,
    page_frequency_onepass_job,
    reference_page_counts,
)


class TestParsingCostExperiment:
    def test_text_and_binary_same_answer(self, clicks):
        ref = reference_page_counts(clicks)
        for codec in (None, click_text_codec()):
            cluster = LocalCluster(num_nodes=2, block_size=48 * 1024)
            if codec is None:
                cluster.hdfs.write_records("in", clicks)
            else:
                cluster.hdfs.write_records("in", clicks, codec=codec)
            HadoopEngine(cluster).run(page_frequency_job("in", "out"))
            assert dict(cluster.hdfs.read_records("out")) == ref

    def test_parse_time_tracked_for_text(self, clicks):
        cluster = LocalCluster(num_nodes=2, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks, codec=click_text_codec())
        result = HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        assert result.counters[C.T_PARSE] > 0


class TestIncrementalAnswersVsBatch:
    def test_early_answers_are_a_subset_of_final(self, clicks):
        cluster = LocalCluster(num_nodes=2, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks)
        threshold = 15
        query = ThresholdQuery(threshold)
        job = page_frequency_onepass_job(
            "in",
            "out",
            config=OnePassConfig(mode="incremental", map_side_combine=False),
        )
        job.emit_policy = count_threshold_policy(threshold)
        result = OnePassEngine(cluster).run(job)
        final = dict(cluster.hdfs.read_records("out"))
        early_keys = {k for k, _ in result.extras["early_emitted"]}
        final_matching = {k for k, v in query.filter_final(final.items())}
        assert early_keys == final_matching

    def test_batch_engine_needs_filter_at_end(self, clicks):
        # The baseline can answer the same query, but only after the
        # blocking merge: no early_emitted ever exists.
        cluster = LocalCluster(num_nodes=2, block_size=48 * 1024)
        cluster.hdfs.write_records("in", clicks)
        result = HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        assert "early_emitted" not in result.extras

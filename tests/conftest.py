"""Shared fixtures: small clusters and workload samples."""

from __future__ import annotations

import pytest

from repro.io.device import RAMDISK
from repro.io.disk import LocalDisk
from repro.mapreduce.runtime import LocalCluster
from repro.workloads.clickstream import ClickStreamConfig, generate_clicks
from repro.workloads.documents import DocumentConfig, generate_documents


@pytest.fixture
def disk() -> LocalDisk:
    """A fresh accounted RAM-backed disk."""
    return LocalDisk(RAMDISK, name="testdisk")


@pytest.fixture
def cluster() -> LocalCluster:
    """A 3-node cluster with small blocks (fast, multi-wave scheduling)."""
    return LocalCluster(num_nodes=3, block_size=64 * 1024)


@pytest.fixture(scope="session")
def clicks() -> list[tuple[float, int, str]]:
    """A deterministic small click log: 8k clicks, 400 users, 150 urls."""
    cfg = ClickStreamConfig(
        num_clicks=8_000, num_users=400, num_urls=150, user_skew=1.1, seed=11
    )
    return list(generate_clicks(cfg))


@pytest.fixture(scope="session")
def documents() -> list[tuple[int, str]]:
    """A deterministic small document collection."""
    cfg = DocumentConfig(num_docs=120, vocab_size=800, mean_doc_words=40, seed=5)
    return list(generate_documents(cfg))

"""Sort-merge map and reduce task behaviour."""

import pytest

from repro.io.disk import LocalDisk
from repro.io.runio import read_run
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.mapreduce.counters import C
from repro.mapreduce.sortmerge import SortMergeMapTask, SortMergeReduceTask


def word_map(record):
    for word in record.split():
        yield (word, 1)


def sum_reduce(key, values):
    yield (key, sum(values))


def sum_combine(key, values):
    yield (key, sum(values))


def make_job(**cfg):
    return MapReduceJob(
        "wordcount",
        word_map,
        sum_reduce,
        combine_fn=cfg.pop("combine", None),
        config=JobConfig(**cfg),
    )


class TestMapTask:
    def test_output_is_partitioned_and_sorted(self):
        job = make_job(num_reducers=3)
        disk = LocalDisk()
        task = SortMergeMapTask(job, 0, "n0", disk)
        out = task.run(["a b c d e f g h", "a b a b"])
        assert set(out.segments) <= {0, 1, 2}
        for seg in out.segments.values():
            pairs = read_run(disk, seg.path)
            keys = [k for k, _ in pairs]
            assert keys == sorted(keys)
        assert out.total_records == 12
        assert task.counters[C.MAP_INPUT_RECORDS] == 2
        assert task.counters[C.MAP_OUTPUT_RECORDS] == 12

    def test_sort_time_attributed(self):
        job = make_job()
        task = SortMergeMapTask(job, 0, "n0", LocalDisk())
        task.run(["x y z"] * 50)
        assert task.counters[C.T_SORT] > 0
        assert task.counters[C.T_MAP_FN] > 0
        assert task.counters[C.SORT_RECORDS] == 150

    def test_single_spill_has_no_merge_io(self):
        job = make_job(map_buffer_bytes=64 * 1024 * 1024)
        task = SortMergeMapTask(job, 0, "n0", LocalDisk())
        task.run(["a b c"] * 20)
        assert task.counters[C.MAP_SPILLS] == 1
        assert task.counters[C.MERGE_READ_BYTES] == 0

    def test_small_buffer_forces_spills_and_merge(self):
        job = make_job(map_buffer_bytes=2048)
        task = SortMergeMapTask(job, 0, "n0", LocalDisk())
        out = task.run([f"w{i} w{i + 1} w{i + 2}" for i in range(200)])
        assert task.counters[C.MAP_SPILLS] > 1
        assert task.counters[C.MERGE_READ_BYTES] > 0
        assert out.total_records == 600

    def test_combiner_shrinks_output(self):
        base = make_job(map_buffer_bytes=64 * 1024 * 1024)
        with_comb = make_job(combine=sum_combine, map_buffer_bytes=64 * 1024 * 1024)
        records = ["the quick the lazy the dog"] * 30
        out_plain = SortMergeMapTask(base, 0, "n0", LocalDisk()).run(list(records))
        out_comb = SortMergeMapTask(with_comb, 0, "n0", LocalDisk()).run(list(records))
        assert out_comb.total_records < out_plain.total_records
        assert out_comb.total_bytes < out_plain.total_bytes

    def test_combiner_partial_sums_are_correct(self):
        job = make_job(combine=sum_combine, num_reducers=1)
        disk = LocalDisk()
        out = SortMergeMapTask(job, 0, "n0", disk).run(["a a a b"] * 5)
        pairs = read_run(disk, out.segments[0].path)
        assert dict(pairs) == {"a": 15, "b": 5}

    def test_combiner_applied_across_spills(self):
        job = make_job(combine=sum_combine, num_reducers=1, map_buffer_bytes=1500)
        disk = LocalDisk()
        out = SortMergeMapTask(job, 0, "n0", disk).run(["a b c d e"] * 100)
        pairs = read_run(disk, out.segments[0].path)
        assert dict(pairs) == {w: 100 for w in "abcde"}

    def test_empty_input(self):
        job = make_job()
        out = SortMergeMapTask(job, 0, "n0", LocalDisk()).run([])
        assert out.segments == {}


class TestReduceTask:
    def feed(self, task, pairs_by_seg):
        for pairs in pairs_by_seg:
            pairs = sorted(pairs, key=lambda p: p[0])
            task.accept_segment(pairs, nbytes=64 * len(pairs))

    def test_in_memory_reduce(self):
        job = make_job(num_reducers=1)
        task = SortMergeReduceTask(job, 0, "n0", LocalDisk())
        self.feed(task, [[("a", 1), ("b", 2)], [("a", 3)]])
        output, groups = task.run()
        assert sorted(output) == [("a", 4), ("b", 2)]
        assert groups == 2
        assert task.counters[C.REDUCE_SPILL_BYTES] == 0

    def test_spill_path_produces_same_answer(self):
        job = make_job(num_reducers=1, reduce_buffer_bytes=512, merge_factor=2)
        task = SortMergeReduceTask(job, 0, "n0", LocalDisk())
        segments = [[(f"k{i % 7}", 1) for i in range(j, j + 20)] for j in range(0, 200, 20)]
        self.feed(task, segments)
        output, _ = task.run()
        total = sum(v for _, v in output)
        assert total == 200
        assert task.counters[C.REDUCE_SPILL_BYTES] > 0

    def test_reduce_counters(self):
        job = make_job(num_reducers=1)
        task = SortMergeReduceTask(job, 0, "n0", LocalDisk())
        self.feed(task, [[("a", 1), ("a", 2), ("b", 1)]])
        output, _ = task.run()
        assert task.counters[C.REDUCE_INPUT_RECORDS] == 3
        assert task.counters[C.REDUCE_INPUT_GROUPS] == 2
        assert task.counters[C.REDUCE_OUTPUT_RECORDS] == len(output)

    def test_combiner_on_reduce_spill(self):
        job = MapReduceJob(
            "wc",
            word_map,
            sum_reduce,
            combine_fn=sum_combine,
            config=JobConfig(num_reducers=1, reduce_buffer_bytes=512),
        )
        task = SortMergeReduceTask(job, 0, "n0", LocalDisk())
        self.feed(task, [[("a", 1)] * 30 for _ in range(10)])
        output, _ = task.run()
        assert output == [("a", 300)]
        assert task.counters[C.COMBINE_INPUT_RECORDS] > 0

    def test_empty_reduce(self):
        job = make_job(num_reducers=1)
        task = SortMergeReduceTask(job, 0, "n0", LocalDisk())
        output, groups = task.run()
        assert output == []
        assert groups == 0

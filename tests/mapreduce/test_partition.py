"""Stable hashing and partitioning — includes determinism properties."""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.partition import HashPartitioner, hash_partitioner, stable_hash

keys = st.one_of(
    st.text(max_size=30),
    st.integers(-(2**62), 2**62),
    st.binary(max_size=30),
    st.tuples(st.integers(), st.text(max_size=5)),
)


class TestStableHash:
    @given(keys)
    @settings(max_examples=100)
    def test_deterministic_within_process(self, key):
        assert stable_hash(key) == stable_hash(key)

    @given(keys)
    @settings(max_examples=100)
    def test_32bit_range(self, key):
        h = stable_hash(key)
        assert 0 <= h < 2**32

    def test_known_values_stable_across_processes(self):
        # The whole point of stable_hash: identical values in a fresh
        # interpreter (str hashes would be salted differently).
        code = (
            "from repro.mapreduce.partition import stable_hash;"
            "print(stable_hash('user-42'), stable_hash(1234567))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        ).stdout.split()
        assert int(out[0]) == stable_hash("user-42")
        assert int(out[1]) == stable_hash(1234567)

    def test_distinct_types_hash_differently_enough(self):
        # Not a strict requirement, but catches degenerate implementations.
        values = ["a", "b", "c", 1, 2, 3, ("a", 1), b"a"]
        assert len({stable_hash(v) for v in values}) >= 7


class TestHashPartitioner:
    @given(keys, st.integers(1, 64))
    @settings(max_examples=100)
    def test_in_range(self, key, n):
        assert 0 <= hash_partitioner(key, n) < n

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            hash_partitioner("k", 0)

    def test_spreads_keys(self):
        n = 8
        counts = [0] * n
        for i in range(4000):
            counts[hash_partitioner(f"key-{i}", n)] += 1
        # Every partition sees a meaningful share (within 2x of fair).
        assert min(counts) > 4000 / n / 2
        assert max(counts) < 4000 / n * 2

    def test_callable_class(self):
        p = HashPartitioner()
        assert p("abc", 10) == hash_partitioner("abc", 10)

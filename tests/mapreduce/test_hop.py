"""MapReduce Online engine: pipelining, snapshots, backpressure."""

import pytest

from repro.mapreduce.counters import C
from repro.mapreduce.hop import HOPConfig, HOPEngine
from repro.mapreduce.runtime import LocalCluster
from repro.workloads.page_frequency import page_frequency_job, reference_page_counts
from repro.workloads.sessionization import reference_sessions, sessionization_job


class TestHOPConfig:
    def test_defaults(self):
        cfg = HOPConfig()
        assert cfg.granularity_records >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"granularity_records": 0},
            {"snapshot_fractions": (0.5, 0.25)},
            {"snapshot_fractions": (0.0,)},
            {"snapshot_fractions": (1.0,)},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            HOPConfig(**kwargs)


class TestHOPEngine:
    def test_final_answer_matches_reference(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        HOPEngine(cluster).run(page_frequency_job("clicks", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_snapshots_produced_at_fractions(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        engine = HOPEngine(
            cluster, hop_config=HOPConfig(snapshot_fractions=(0.5,))
        )
        result = engine.run(page_frequency_job("clicks", "out"))
        assert [s.fraction for s in result.snapshots] == [0.5]
        assert result.counters[C.SNAPSHOTS] == 2  # one per reducer

    def test_snapshot_counts_grow_toward_final(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        engine = HOPEngine(
            cluster, hop_config=HOPConfig(snapshot_fractions=(0.25, 0.75))
        )
        result = engine.run(page_frequency_job("clicks", "out"))
        early, late = result.snapshots
        total_early = sum(v for _, v in early.records)
        total_late = sum(v for _, v in late.records)
        assert total_early < total_late <= len(clicks)

    def test_snapshot_is_prefix_consistent(self, cluster, clicks):
        # Counts in a snapshot never exceed the final counts.
        cluster.hdfs.write_records("clicks", clicks)
        engine = HOPEngine(cluster, hop_config=HOPConfig(snapshot_fractions=(0.5,)))
        engine_result = engine.run(page_frequency_job("clicks", "out"))
        final = dict(cluster.hdfs.read_records("out"))
        snap = dict(engine_result.snapshots[0].records)
        for url, count in snap.items():
            assert count <= final[url]

    def test_sessionization_matches_hadoop_semantics(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        HOPEngine(cluster).run(sessionization_job("clicks", "out", gap=5.0))
        got = sorted(cluster.hdfs.read_records("out"))
        assert got == reference_sessions(clicks, gap=5.0)

    def test_backpressure_stages_to_disk(self, clicks):
        cluster = LocalCluster(num_nodes=2, block_size=64 * 1024)
        cluster.hdfs.write_records("clicks", clicks)
        hop = HOPConfig(granularity_records=100, backpressure_bytes=1)
        result = HOPEngine(cluster, hop_config=hop).run(
            page_frequency_job("clicks", "out", with_combiner=False)
        )
        # With an absurdly low threshold everything past the first chunk
        # stages on the mapper's disk — counted as map spill.
        assert result.counters[C.MAP_SPILL_BYTES] > 0
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_pipelining_moves_sort_and_shuffle_earlier(self, cluster, clicks):
        # HOP produces shuffle traffic during the map phase by design;
        # we simply verify shuffle bytes exist and snapshots cost merge reads.
        cluster.hdfs.write_records("clicks", clicks)
        hop = HOPConfig(granularity_records=200, snapshot_fractions=(0.5,))
        result = HOPEngine(cluster, hop_config=hop).run(
            page_frequency_job("clicks", "out", with_combiner=False)
        )
        assert result.counters[C.SHUFFLE_BYTES] > 0
        assert result.counters[C.SORT_RECORDS] > 0

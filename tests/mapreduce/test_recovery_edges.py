"""Recovery edge cases: corrupt replicas, torn writes, short reads, replays.

Complements ``test_recovery.py``: these fixtures attack the durable state
itself — checksum-rejected checkpoints, truncated partition-log replicas,
seeded disk faults via :class:`FaultPlan` — and verify the recovery layer
detects the damage and falls back instead of returning corrupt bytes.
"""

import pytest

from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.recovery import CheckpointStore, PartitionLog


def two_replicas():
    return [("n0", LocalDisk(name="n0")), ("n1", LocalDisk(name="n1"))]


def _corrupt(disk, path):
    """Flip a byte in the middle of ``path`` (checksums must catch this)."""
    data = bytearray(disk.peek(path))
    data[len(data) // 2] ^= 0xFF
    disk.write(path, bytes(data), overwrite=True)


def _truncate(disk, path):
    """Cut ``path`` to half its length (a torn trailing frame)."""
    data = disk.peek(path)
    disk.write(path, data[: len(data) // 2], overwrite=True)


class TestCheckpointCorruption:
    def test_one_corrupt_replica_falls_back_to_other(self):
        counters = Counters()
        replicas = two_replicas()
        store = CheckpointStore(0, replicas, counters)
        store.save(7, b"state-at-7")
        _corrupt(replicas[0][1], "faultchk/p000/s000007")

        assert store.latest() == (7, b"state-at-7")
        assert counters[C.CHECKPOINT_REJECTED] == 1

    def test_all_replicas_corrupt_falls_back_to_prior_seq(self):
        counters = Counters()
        replicas = two_replicas()
        store = CheckpointStore(0, replicas, counters)
        store.save(3, b"old-state")
        store.save(7, b"new-state")
        for _, disk in replicas:
            _corrupt(disk, "faultchk/p000/s000007")

        assert store.latest() == (3, b"old-state")
        assert counters[C.CHECKPOINT_REJECTED] == 2

    def test_truncated_payload_rejected(self):
        counters = Counters()
        replicas = two_replicas()
        store = CheckpointStore(0, replicas, counters)
        store.save(1, b"a longer payload than the crc header")
        for _, disk in replicas:
            _truncate(disk, "faultchk/p000/s000001")

        assert store.latest() is None
        assert counters[C.CHECKPOINT_REJECTED] == 2

    def test_payload_shorter_than_header_rejected(self):
        counters = Counters()
        replicas = two_replicas()
        store = CheckpointStore(0, replicas, counters)
        store.save(1, b"payload")
        for _, disk in replicas:
            disk.write("faultchk/p000/s000001", b"\x01", overwrite=True)

        assert store.latest() is None
        assert counters[C.CHECKPOINT_REJECTED] == 2

    def test_everything_corrupt_and_empty_both_yield_none(self):
        assert CheckpointStore(0, two_replicas(), Counters()).latest() is None


class TestPartitionLogCorruption:
    def test_truncated_replica_falls_back(self):
        counters = Counters()
        replicas = two_replicas()
        log = PartitionLog(0, replicas, counters)
        log.append([("a", 1), ("b", 2)], nbytes=10)
        log.append([("c", 3)], nbytes=5)
        _truncate(replicas[0][1], "faultlog/p000/c000001")

        replayed = [(seq, pairs) for seq, pairs, _ in log.replay()]
        assert replayed == [(1, [("a", 1), ("b", 2)]), (2, [("c", 3)])]
        assert counters[C.LOG_REPLICAS_REJECTED] == 1

    def test_all_replicas_truncated_raises(self):
        counters = Counters()
        replicas = two_replicas()
        log = PartitionLog(0, replicas, counters)
        log.append([("a", 1), ("b", 2)], nbytes=10)
        for _, disk in replicas:
            _truncate(disk, "faultlog/p000/c000001")

        with pytest.raises(FileNotFoundError, match="replicas"):
            list(log.replay())
        assert counters[C.LOG_REPLICAS_REJECTED] == 2

    def test_replay_is_idempotent(self):
        log = PartitionLog(0, two_replicas(), Counters())
        log.append([("a", 1)], nbytes=4)
        log.append([("b", 2)], nbytes=4)
        first = [(seq, pairs) for seq, pairs, _ in log.replay()]
        second = [(seq, pairs) for seq, pairs, _ in log.replay()]
        assert first == second == [(1, [("a", 1)]), (2, [("b", 2)])]


class TestDiskFaultInjection:
    def test_torn_write_detected_by_checkpoint_crc(self):
        counters = Counters()
        replicas = two_replicas()
        plan = FaultPlan(torn_writes={"faultchk/": 1})
        replicas[0][1].fault_injector = plan
        store = CheckpointStore(0, replicas, counters)
        store.save(5, b"state worth checkpointing")

        assert plan.torn_writes_injected == 1
        # The torn replica fails its crc; the clean one serves the bytes.
        assert store.latest() == (5, b"state worth checkpointing")
        assert counters[C.CHECKPOINT_REJECTED] == 1

    def test_short_read_detected_by_log_framing(self):
        counters = Counters()
        replicas = two_replicas()
        plan = FaultPlan(short_reads={"faultlog/": 1})
        replicas[0][1].fault_injector = plan
        log = PartitionLog(0, replicas, counters)
        log.append([("a", 1), ("b", 2)], nbytes=10)

        replayed = [(seq, pairs) for seq, pairs, _ in log.replay()]
        assert replayed == [(1, [("a", 1), ("b", 2)])]
        assert plan.short_reads_injected == 1
        assert counters[C.LOG_REPLICAS_REJECTED] == 1

    def test_fault_budget_is_consumed(self):
        plan = FaultPlan(torn_writes={"x/": 1})
        disk = LocalDisk()
        disk.fault_injector = plan
        disk.append("x/a", b"0123456789")
        disk.append("x/b", b"0123456789")
        assert disk.size("x/a") == 5  # torn: only the leading half landed
        assert disk.size("x/b") == 10  # budget exhausted
        assert not FaultPlan().has_disk_faults
        assert plan.has_disk_faults

    def test_single_byte_writes_never_torn_to_nothing(self):
        plan = FaultPlan(torn_writes={"x/": 5})
        disk = LocalDisk()
        disk.fault_injector = plan
        disk.append("x/tiny", b"z")
        assert disk.peek("x/tiny") == b"z"

    def test_negative_disk_fault_counts_rejected(self):
        with pytest.raises(ValueError, match="disk-fault"):
            FaultPlan(torn_writes={"x/": -1})
        with pytest.raises(ValueError, match="disk-fault"):
            FaultPlan(short_reads={"x/": -2})

    def test_random_plan_rates_are_deterministic(self):
        kw = dict(num_map_tasks=4, num_reducers=2,
                  torn_write_rate=1.0, short_read_rate=1.0)
        a = FaultPlan.random(11, **kw)
        b = FaultPlan.random(11, **kw)
        assert a.torn_writes == b.torn_writes
        assert a.short_reads == b.short_reads
        assert "faultchk/" in a.torn_writes
        assert "faultlog/" in a.short_reads

        off = FaultPlan.random(11, num_map_tasks=4, num_reducers=2)
        assert not off.has_disk_faults

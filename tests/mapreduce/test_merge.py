"""Sorted merging, grouping and the multi-pass merger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.merge import MultiPassMerger, group_sorted, merge_sorted

sorted_runs = st.lists(
    st.lists(st.tuples(st.integers(0, 50), st.integers()), max_size=30).map(
        lambda run: sorted(run, key=lambda p: p[0])
    ),
    max_size=6,
)


class TestMergeSorted:
    def test_empty(self):
        assert list(merge_sorted([])) == []
        assert list(merge_sorted([iter([]), iter([])])) == []

    def test_two_streams(self):
        a = [(1, "a"), (3, "a")]
        b = [(2, "b"), (3, "b")]
        merged = list(merge_sorted([iter(a), iter(b)]))
        assert [k for k, _ in merged] == [1, 2, 3, 3]

    def test_stability_by_stream_index(self):
        a = [(1, "first")]
        b = [(1, "second")]
        assert list(merge_sorted([iter(a), iter(b)])) == [(1, "first"), (1, "second")]

    @given(sorted_runs)
    @settings(max_examples=60)
    def test_property_globally_sorted_and_complete(self, runs):
        merged = list(merge_sorted([iter(r) for r in runs]))
        keys = [k for k, _ in merged]
        assert keys == sorted(keys)
        assert sorted(merged) == sorted(p for run in runs for p in run)


class TestGroupSorted:
    def test_empty(self):
        assert list(group_sorted([])) == []

    def test_groups_consecutive_keys(self):
        pairs = [(1, "a"), (1, "b"), (2, "c")]
        groups = [(k, list(v)) for k, v in group_sorted(pairs)]
        assert groups == [(1, ["a", "b"]), (2, ["c"])]

    def test_single_group(self):
        groups = [(k, list(v)) for k, v in group_sorted([(5, i) for i in range(4)])]
        assert groups == [(5, [0, 1, 2, 3])]

    def test_unconsumed_values_are_drained(self):
        pairs = [(1, "a"), (1, "b"), (2, "c"), (3, "d")]
        keys = [k for k, _values in group_sorted(pairs)]
        assert keys == [1, 2, 3]

    def test_partially_consumed_group(self):
        pairs = [(1, x) for x in "abcde"] + [(2, "z")]
        out = []
        for key, values in group_sorted(pairs):
            out.append((key, next(values, None)))
        assert out == [(1, "a"), (2, "z")]

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers()), max_size=60))
    @settings(max_examples=60)
    def test_property_groups_partition_the_stream(self, pairs):
        pairs = sorted(pairs, key=lambda p: p[0])
        reassembled = []
        for key, values in group_sorted(pairs):
            for v in values:
                reassembled.append((key, v))
        assert reassembled == pairs


class TestMultiPassMerger:
    def make(self, factor=3):
        disk = LocalDisk()
        counters = Counters()
        return MultiPassMerger(disk, "red", factor=factor, counters=counters), disk, counters

    @staticmethod
    def run_of(lo, n):
        return [(k, k) for k in range(lo, lo + n)]

    def test_single_run_passthrough(self):
        merger, _, counters = self.make()
        merger.add_run(self.run_of(0, 5))
        assert list(merger.final_merge()) == self.run_of(0, 5)
        assert counters[C.MERGE_PASSES] == 0

    def test_final_is_globally_sorted(self):
        merger, _, _ = self.make(factor=3)
        for i in range(7):
            merger.add_run(sorted((k * 7 + i, i) for k in range(10)))
        merged = list(merger.final_merge())
        keys = [k for k, _ in merged]
        assert keys == sorted(keys)
        assert len(merged) == 70

    def test_background_merge_triggers_at_2f_minus_1(self):
        merger, _, counters = self.make(factor=3)
        for i in range(4):
            merger.add_run(self.run_of(i, 2))
        assert counters[C.MERGE_PASSES] == 0  # below 2F-1 = 5
        merger.add_run(self.run_of(9, 2))
        assert counters[C.MERGE_PASSES] == 1
        assert merger.run_count == 3  # F-1 small + 1 merged

    def test_merge_io_counted(self):
        merger, _, counters = self.make(factor=2)
        for i in range(6):
            merger.add_run(self.run_of(i * 10, 4))
        list(merger.final_merge())
        assert counters[C.MERGE_READ_BYTES] > 0
        assert counters[C.MERGE_WRITE_BYTES] > 0
        assert counters[C.REDUCE_SPILL_BYTES] > 0
        assert counters[C.REDUCE_SPILLS] == 6

    def test_rewrite_volume_is_logarithmic_not_quadratic(self):
        # The 2F-1 policy must not re-merge large runs on every trigger:
        # total rewrite stays within ~log_F(runs) passes over the data.
        # (The naive merge-at-F policy rewrites ~runs/F times the data.)
        import math

        merger, _, counters = self.make(factor=4)
        n_runs = 40
        for i in range(n_runs):
            merger.add_run(self.run_of(i * 5, 5))
        total_spill = counters[C.REDUCE_SPILL_BYTES]
        list(merger.final_merge())
        bound = math.ceil(math.log(n_runs, 4)) * total_spill
        assert counters[C.MERGE_WRITE_BYTES] <= bound

    def test_add_after_final_raises(self):
        merger, _, _ = self.make()
        merger.add_run(self.run_of(0, 2))
        merger.final_merge()
        with pytest.raises(RuntimeError):
            merger.add_run(self.run_of(0, 2))
        with pytest.raises(RuntimeError):
            merger.final_merge()

    def test_cleanup_removes_files(self):
        merger, disk, _ = self.make()
        for i in range(4):
            merger.add_run(self.run_of(i, 3))
        merger.cleanup()
        assert disk.list_files("red/") == []

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            MultiPassMerger(LocalDisk(), "x", factor=1)

"""PartitionCache and run_chain: in-memory intermediate reuse.

The cache must be invisible in every observable except disk traffic —
same chain output, same per-stage counters — while deduplicating
re-stored blocks, spilling FIFO under byte pressure, surviving node
loss without phantom re-replication, and cleaning up when intermediates
are deleted.
"""

import pytest

from repro.hdfs.blocks import BlockId
from repro.io.disk import LocalDisk
from repro.mapreduce.chain import ChainStage, PartitionCache, run_chain
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.counting import counting_onepass_job
from repro.workloads.sessionization import (
    session_count_job,
    session_log_job,
    session_log_onepass_job,
    user_of_session,
)

BLOCK = b"x" * 1000


def make_cache(capacity=2500, disk=True):
    return PartitionCache(
        capacity_bytes=capacity,
        spill_disk=LocalDisk(name="cachespill") if disk else None,
    )


class TestCacheBasics:
    def test_store_and_get_roundtrip(self):
        cache = make_cache()
        cache.register("mid", "fp1")
        assert cache.captures("mid") and not cache.captures("other")
        block = BlockId("mid", 0)
        cache.store(block, BLOCK)
        assert cache.holds(block)
        assert cache.get(block) == BLOCK
        assert cache.counters["cache.hits"] == 1

    def test_unknown_block_is_a_miss(self):
        cache = make_cache()
        cache.register("mid", "fp1")
        assert cache.get(BlockId("mid", 9)) is None
        assert cache.counters["cache.misses"] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PartitionCache(capacity_bytes=0)


class TestDedup:
    def test_same_fingerprint_and_index_stored_once(self):
        """A resumed or re-run stage re-produces identical blocks; the
        cache must recognise them by (fingerprint, index) and not double
        its footprint."""
        cache = make_cache()
        cache.register("mid", "fp1")
        cache.store(BlockId("mid", 0), BLOCK)
        used = cache.used_bytes
        # Same stage output under a different path name (re-run).
        cache.register("mid-rerun", "fp1")
        cache.store(BlockId("mid-rerun", 0), BLOCK)
        assert cache.used_bytes == used
        assert cache.counters["cache.dedup.hits"] == 1
        # Both block identities resolve to the one entry.
        assert cache.get(BlockId("mid", 0)) == BLOCK
        assert cache.get(BlockId("mid-rerun", 0)) == BLOCK

    def test_distinct_indices_are_distinct_entries(self):
        cache = make_cache(capacity=10_000)
        cache.register("mid", "fp1")
        cache.store(BlockId("mid", 0), BLOCK)
        cache.store(BlockId("mid", 1), BLOCK)
        assert cache.used_bytes == 2 * len(BLOCK)
        assert cache.counters["cache.dedup.hits"] == 0


class TestSpillPressure:
    def test_fifo_spill_order_and_unspill(self):
        cache = make_cache(capacity=2500)  # holds two 1000-byte blocks
        cache.register("mid", "fp1")
        for i in range(4):
            cache.store(BlockId("mid", i), bytes([i]) * 1000)
        # Insertion (FIFO) order: the two oldest blocks hit the disk.
        assert cache.spilled_blocks == 2
        assert cache.resident_blocks == 2
        assert cache.used_bytes <= 2500
        assert cache.counters["cache.spills"] == 2
        assert cache.counters["cache.spill.bytes"] == 2000
        spilled = cache.spill_disk.list_files("chaincache/")
        assert spilled == ["chaincache/fp1/blk-000000", "chaincache/fp1/blk-000001"]
        # Spilled entries still serve reads (unspill path), and count hits.
        for i in range(4):
            assert cache.get(BlockId("mid", i)) == bytes([i]) * 1000
        assert cache.counters["cache.hits"] == 4

    def test_over_capacity_without_spill_disk_raises(self):
        cache = make_cache(capacity=1500, disk=False)
        cache.register("mid", "fp1")
        cache.store(BlockId("mid", 0), BLOCK)
        with pytest.raises(RuntimeError, match="no spill disk"):
            cache.store(BlockId("mid", 1), BLOCK)


class TestRelease:
    def test_release_drops_entries_and_spill_files(self):
        cache = make_cache(capacity=2500)
        cache.register("mid", "fp1")
        for i in range(4):
            cache.store(BlockId("mid", i), BLOCK)
        assert cache.spilled_blocks == 2
        cache.release("mid")
        assert not cache.captures("mid")
        assert cache.resident_blocks == cache.spilled_blocks == 0
        assert cache.used_bytes == 0
        assert cache.spill_disk.list_files("chaincache/") == []

    def test_release_unknown_path_is_a_noop(self):
        cache = make_cache()
        cache.release("never-registered")


class TestHdfsIntegration:
    def _cluster_with_cached_file(self):
        cluster = LocalCluster(num_nodes=3, block_size=2 * 1024)
        cache = PartitionCache(
            capacity_bytes=64 * 1024 * 1024,
            spill_disk=cluster.nodes[cluster.compute_node_names[0]].intermediate_disk,
        )
        cluster.hdfs.block_cache = cache
        cache.register("mid", "fp1")
        records = [(f"k{i:04d}", i) for i in range(500)]
        cluster.hdfs.write_records("mid", records)
        return cluster, cache, records

    def test_registered_path_bypasses_datanodes(self):
        cluster, cache, records = self._cluster_with_cached_file()
        assert cache.resident_blocks > 0
        for node in cluster.hdfs.datanodes.values():
            assert all("hdfs/mid/" not in name for name in node.block_names())
        # Metadata (placement, splits) still exists as if stored normally.
        assert len(cluster.hdfs.input_splits("mid")) == cache.resident_blocks
        assert list(cluster.hdfs.read_records("mid")) == records

    def test_node_loss_skips_cache_held_blocks(self):
        cluster, cache, records = self._cluster_with_cached_file()
        for node in list(cluster.hdfs.namenode.node_names)[:-1]:
            report = cluster.hdfs.handle_node_loss(node)
            assert all(b.path != "mid" for b in report.lost_blocks)
        assert list(cluster.hdfs.read_records("mid")) == records

    def test_delete_file_releases_cache(self):
        cluster, cache, _ = self._cluster_with_cached_file()
        cluster.hdfs.delete_file("mid")
        assert not cache.captures("mid")
        assert cache.resident_blocks == 0
        with pytest.raises(FileNotFoundError):
            cluster.hdfs.namenode.file_info("mid")


class TestRunChain:
    GAP = 5.0

    def _clicks(self):
        from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

        return list(
            generate_clicks(
                ClickStreamConfig(num_clicks=2_000, num_users=60, num_urls=40, seed=3)
            )
        )

    def _stages(self):
        return [
            ChainStage(session_log_onepass_job("in", "mid", gap=self.GAP)),
            ChainStage(
                counting_onepass_job("chain-count", user_of_session, "mid", "out")
            ),
        ]

    def test_chain_output_matches_uncached_run(self):
        clicks = self._clicks()

        uncached = LocalCluster(num_nodes=3, block_size=16 * 1024)
        uncached.hdfs.write_records("in", clicks)
        from repro.core.engine import OnePassEngine

        for stage in self._stages():
            OnePassEngine(uncached).run(stage.job)
        expected = list(uncached.hdfs.read_records("out"))

        cached = LocalCluster(num_nodes=3, block_size=16 * 1024)
        cached.hdfs.write_records("in", clicks)
        chain = run_chain(cached, self._stages())
        assert list(cached.hdfs.read_records("out")) == expected
        assert chain.counters["cache.hits"] > 0

    def test_stage_counters_stay_cache_free(self):
        """Per-job counters must be byte-identical cache on or off; the
        cache's own traffic appears only in the merged chain counters."""
        cached = LocalCluster(num_nodes=3, block_size=16 * 1024)
        cached.hdfs.write_records("in", self._clicks())
        chain = run_chain(cached, self._stages())
        for result in chain.results:
            for name in result.counters.as_dict():
                assert not name.startswith("cache."), name
        assert chain.counters["cache.hits"] > 0

    def test_intermediates_deleted_unless_kept(self):
        cached = LocalCluster(num_nodes=3, block_size=16 * 1024)
        cached.hdfs.write_records("in", self._clicks())
        chain = run_chain(cached, self._stages())
        with pytest.raises(FileNotFoundError):
            cached.hdfs.namenode.file_info("mid")
        assert not chain.cache.captures("mid")

        kept = LocalCluster(num_nodes=3, block_size=16 * 1024)
        kept.hdfs.write_records("in", self._clicks())
        chain = run_chain(kept, self._stages(), keep_intermediates=True)
        assert kept.hdfs.namenode.file_info("mid").records > 0

    def test_block_cache_detached_after_chain(self):
        cluster = LocalCluster(num_nodes=3, block_size=16 * 1024)
        cluster.hdfs.write_records("in", self._clicks())
        assert cluster.hdfs.block_cache is None
        run_chain(cluster, self._stages())
        assert cluster.hdfs.block_cache is None

    def test_mixed_engine_chain(self):
        """A sort-merge stage feeding a sort-merge counter through the
        cache — the engines need not match for the chain to work."""
        clicks = self._clicks()
        uncached = LocalCluster(num_nodes=3, block_size=16 * 1024)
        uncached.hdfs.write_records("in", clicks)
        HadoopEngine(uncached).run(session_log_job("in", "mid", gap=self.GAP))
        HadoopEngine(uncached).run(session_count_job("mid", "out"))
        expected = list(uncached.hdfs.read_records("out"))

        cached = LocalCluster(num_nodes=3, block_size=16 * 1024)
        cached.hdfs.write_records("in", clicks)
        stages = [
            ChainStage(session_log_job("in", "mid", gap=self.GAP), engine="hadoop"),
            ChainStage(session_count_job("mid", "out"), engine="hadoop"),
        ]
        chain = run_chain(cached, stages)
        assert list(cached.hdfs.read_records("out")) == expected
        assert chain.counters["cache.hits"] > 0

    def test_empty_chain_rejected(self):
        cluster = LocalCluster(num_nodes=3)
        with pytest.raises(ValueError, match="at least one stage"):
            run_chain(cluster, [])

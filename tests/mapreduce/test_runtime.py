"""LocalCluster construction and full HadoopEngine runs."""

import pytest

from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.page_frequency import page_frequency_job, reference_page_counts
from repro.workloads.per_user_count import per_user_count_job, reference_user_counts
from repro.workloads.clickstream import click_text_codec


class TestLocalCluster:
    def test_default_colocated(self):
        c = LocalCluster(num_nodes=4)
        assert c.compute_node_names == c.storage_node_names
        assert not c.separate_storage

    def test_ssd_cluster_routes_intermediate(self):
        c = LocalCluster(num_nodes=2, with_ssd=True)
        node = c.node("node00")
        assert node.intermediate == "ssd"
        assert node.intermediate_disk is node.disks["ssd"]
        assert node.hdfs_disk is node.disks["hdd"]

    def test_separate_storage_cluster(self):
        c = LocalCluster(num_nodes=4, storage_nodes=2)
        assert c.separate_storage
        assert len(c.storage_node_names) == 2
        assert len(c.compute_node_names) == 2
        assert set(c.hdfs.datanodes) == set(c.storage_node_names)

    def test_storage_nodes_must_leave_compute(self):
        with pytest.raises(ValueError):
            LocalCluster(num_nodes=2, storage_nodes=2)

    def test_disk_stats_keys(self):
        c = LocalCluster(num_nodes=2, with_ssd=True)
        stats = c.disk_stats()
        assert "node00.hdd" in stats and "node00.ssd" in stats

    def test_total_disk_stats_aggregates(self, clicks):
        c = LocalCluster(num_nodes=2, block_size=32 * 1024)
        c.hdfs.write_records("clicks", clicks[:1000])
        total = c.total_disk_stats()
        assert total.bytes_written > 0


class TestHadoopEngine:
    def test_page_frequency_correct(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        result = HadoopEngine(cluster).run(page_frequency_job("clicks", "out"))
        got = dict(cluster.hdfs.read_records("out"))
        assert got == reference_page_counts(clicks)
        assert result.output_records == len(got)

    def test_per_user_count_without_combiner_matches(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        job = per_user_count_job("clicks", "out", with_combiner=False)
        HadoopEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)

    def test_counters_populated(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        result = HadoopEngine(cluster).run(page_frequency_job("clicks", "out"))
        c = result.counters
        assert c[C.MAP_INPUT_RECORDS] == len(clicks)
        assert c[C.MAP_TASKS] == len(cluster.hdfs.input_splits("clicks"))
        assert c[C.REDUCE_TASKS] == 2
        assert c[C.T_SORT] > 0
        assert c[C.MAP_OUTPUT_BYTES] > 0
        assert result.wall_time > 0
        assert set(result.phase_times) == {"map", "reduce"}

    def test_text_input(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks, codec=click_text_codec())
        result = HadoopEngine(cluster).run(page_frequency_job("clicks", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)
        assert result.counters[C.T_PARSE] > 0

    def test_more_reducers_same_answer(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        job = page_frequency_job("clicks", "out", config=JobConfig(num_reducers=5))
        HadoopEngine(cluster).run(job)
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

    def test_missing_paths_rejected(self, cluster):
        job = MapReduceJob("j", lambda r: [(r, 1)], lambda k, v: [(k, sum(v))])
        with pytest.raises(ValueError):
            HadoopEngine(cluster).run(job)

    def test_separate_storage_counts_remote_reads(self, clicks):
        c = LocalCluster(num_nodes=3, storage_nodes=1, block_size=64 * 1024)
        c.hdfs.write_records("clicks", clicks[:2000])
        result = HadoopEngine(c).run(page_frequency_job("clicks", "out"))
        assert result.schedule is not None
        assert result.schedule.locality_rate == 0.0
        assert result.network_bytes > 0
        assert dict(c.hdfs.read_records("out")) == reference_page_counts(clicks[:2000])

"""Fault injection and task re-execution on both engines."""

import pytest

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.counters import C
from repro.mapreduce.faults import FaultPlan, TaskFailure
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.page_frequency import page_frequency_job, reference_page_counts
from repro.workloads.per_user_count import (
    per_user_count_onepass_job,
    reference_user_counts,
)


class TestFaultPlan:
    def test_clean_plan_always_succeeds(self):
        plan = FaultPlan()
        assert plan.start_map_attempt(0) == 1
        assert plan.start_map_attempt(0) == 2

    def test_scheduled_failures_then_success(self):
        plan = FaultPlan(map_failures={3: 2})
        with pytest.raises(TaskFailure):
            plan.start_map_attempt(3)
        with pytest.raises(TaskFailure):
            plan.start_map_attempt(3)
        assert plan.start_map_attempt(3) == 3
        assert plan.attempts_of(3) == 3

    def test_max_attempts_enforced(self):
        plan = FaultPlan(map_failures={1: 10}, max_attempts=3)
        for _ in range(3):
            with pytest.raises(TaskFailure):
                plan.start_map_attempt(1)
        with pytest.raises(RuntimeError):
            plan.start_map_attempt(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPlan(map_failures={0: -1})

    def test_failure_exception_carries_context(self):
        plan = FaultPlan(map_failures={7: 1})
        try:
            plan.start_map_attempt(7)
        except TaskFailure as e:
            assert e.task_id == 7
            assert e.attempt == 1
            assert e.kind == "map"

    def test_total_failures(self):
        assert FaultPlan(map_failures={1: 2, 5: 1}).total_failures_injected == 3

    def test_attempts_of_does_not_mutate(self):
        plan = FaultPlan()
        assert plan.attempts_of(42) == 0
        assert plan.reduce_attempts_of(42) == 0
        # Reading an unknown task must not insert a defaultdict entry.
        assert 42 not in plan._attempts
        assert 42 not in plan._reduce_attempts

    def test_reduce_attempts_tracked_separately(self):
        plan = FaultPlan(reduce_failures={0: 1})
        with pytest.raises(TaskFailure) as e:
            plan.start_reduce_attempt(0)
        assert e.value.kind == "reduce"
        assert plan.start_reduce_attempt(0) == 2
        assert plan.reduce_attempts_of(0) == 2
        assert plan.attempts_of(0) == 0  # map side untouched

    def test_crashes_fire_once_in_order(self):
        plan = FaultPlan(node_crashes={"node02": 2, "node01": 2, "node03": 5})
        assert plan.crashes_due(1) == []
        assert plan.crashes_due(2) == ["node01", "node02"]
        assert plan.crashes_due(3) == []  # already fired
        assert plan.crashes_due(9) == ["node03"]
        assert plan.is_crashed("node01")
        assert plan.is_crashed("node03")

    def test_fetch_faults_are_consumed(self):
        plan = FaultPlan(shuffle_failures={(0, 1): 2})
        assert plan.take_fetch_fault(0, 1)
        assert plan.take_fetch_fault(0, 1)
        assert not plan.take_fetch_fault(0, 1)
        assert not plan.take_fetch_fault(9, 9)

    def test_slowdown_defaults_to_full_speed(self):
        plan = FaultPlan(slow_nodes={"node01": 4.0})
        assert plan.slowdown("node01") == 4.0
        assert plan.slowdown("node00") == 1.0
        with pytest.raises(ValueError):
            FaultPlan(slow_nodes={"node01": 0.5})

    def test_crash_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(node_crashes={"node01": 0})
        with pytest.raises(ValueError):
            FaultPlan(shuffle_failures={(0, 0): -1})

    def test_random_plans_are_seed_deterministic(self):
        def make():
            return FaultPlan.random(
                seed=99,
                num_map_tasks=10,
                num_reducers=4,
                nodes=["node00", "node01", "node02"],
                shuffle_failure_rate=0.1,
                crash_after=3,
            )

        a, b = make(), make()
        assert a.map_failures == b.map_failures
        assert a.reduce_failures == b.reduce_failures
        assert a.shuffle_failures == b.shuffle_failures
        assert a.node_crashes == b.node_crashes
        assert len(a.node_crashes) == 1
        other = FaultPlan.random(seed=100, num_map_tasks=10, num_reducers=4)
        assert (
            other.map_failures != a.map_failures
            or other.reduce_failures != a.reduce_failures
        )


class TestHadoopFaultTolerance:
    def test_answers_survive_failures(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        n_tasks = len(cluster.hdfs.input_splits("in"))
        # Kill the first attempt of every third map task.
        plan = FaultPlan(map_failures={t: 1 for t in range(0, n_tasks, 3)})
        engine = HadoopEngine(cluster, fault_plan=plan)
        result = engine.run(page_frequency_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)
        assert result.counters[C.MAP_TASK_RETRIES] == plan.total_failures_injected

    def test_rework_is_charged(self, clicks):
        def input_records(plan):
            cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
            cluster.hdfs.write_records("in", clicks)
            result = HadoopEngine(cluster, fault_plan=plan).run(
                page_frequency_job("in", "out")
            )
            return result.counters[C.MAP_INPUT_RECORDS]

        clean = input_records(None)
        faulty = input_records(FaultPlan(map_failures={0: 2}))
        # Task 0's block was read three times in total.
        assert faulty > clean

    def test_failed_attempt_files_removed(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        plan = FaultPlan(map_failures={0: 1})
        HadoopEngine(cluster, fault_plan=plan).run(page_frequency_job("in", "out"))
        # No orphaned map-output files anywhere (shuffle cleans up served
        # ones; failed attempts must not leave strays either).
        for node in cluster.nodes.values():
            leftovers = [
                f
                for f in node.intermediate_disk.list_files()
                if f.startswith(("mapout/", "mapspill/"))
            ]
            assert leftovers == []

    def test_exhausted_attempts_abort_job(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        plan = FaultPlan(map_failures={0: 99}, max_attempts=2)
        with pytest.raises(RuntimeError, match="exhausted"):
            HadoopEngine(cluster, fault_plan=plan).run(
                page_frequency_job("in", "out")
            )


class TestOnePassFaultTolerance:
    def test_answers_survive_failures(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        n_tasks = len(cluster.hdfs.input_splits("in"))
        plan = FaultPlan(map_failures={t: 1 for t in range(0, n_tasks, 4)})
        engine = OnePassEngine(cluster, fault_plan=plan)
        result = engine.run(per_user_count_onepass_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)
        assert result.counters[C.MAP_TASK_RETRIES] == plan.total_failures_injected

    def test_no_duplicate_delivery(self, clicks):
        """The staged-output protocol must not double-count a retried task.

        If the failed attempt's chunks leaked to reducers, counts would be
        inflated — exactness is the regression test.
        """
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        plan = FaultPlan(map_failures={0: 3, 1: 1}, max_attempts=5)
        OnePassEngine(cluster, fault_plan=plan).run(
            per_user_count_onepass_job("in", "out")
        )
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)

    def test_staging_overhead_counted(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        result = OnePassEngine(cluster, fault_plan=FaultPlan()).run(
            per_user_count_onepass_job("in", "out")
        )
        # With a fault plan active, every delivered byte was staged first.
        assert result.counters[C.STAGED_OUTPUT_BYTES] > 0
        assert result.counters[C.STAGED_OUTPUT_BYTES] == result.counters[C.SHUFFLE_BYTES]

    def test_no_staging_without_fault_plan(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
        cluster.hdfs.write_records("in", clicks)
        result = OnePassEngine(cluster).run(per_user_count_onepass_job("in", "out"))
        assert result.counters[C.STAGED_OUTPUT_BYTES] == 0

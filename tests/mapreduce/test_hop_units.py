"""MapReduce Online internals: the pipelined reduce task in isolation."""

import pytest

from repro.io.disk import LocalDisk
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.mapreduce.counters import C
from repro.mapreduce.hop import HOPConfig, PipelinedReduceTask


def sum_reduce(key, values):
    yield (key, sum(values))


def make_task(**cfg):
    job = MapReduceJob(
        "wc",
        lambda r: [(r, 1)],
        sum_reduce,
        config=JobConfig(num_reducers=1, **cfg),
    )
    return PipelinedReduceTask(job, 0, "n0", LocalDisk(), HOPConfig())


class TestPipelinedReduceTask:
    def chunk(self, pairs):
        return sorted(pairs, key=lambda p: p[0]), 48 * len(pairs)

    def test_accepts_chunks_and_reduces(self):
        task = make_task()
        for pairs in ([("a", 1), ("b", 1)], [("a", 2)]):
            chunk, nbytes = self.chunk(pairs)
            task.accept_chunk(chunk, nbytes)
        output = task.run()
        assert sorted(output) == [("a", 3), ("b", 1)]

    def test_backlog_tracks_memory(self):
        task = make_task()
        chunk, nbytes = self.chunk([("a", 1)] * 10)
        task.accept_chunk(chunk, nbytes)
        assert task.backlog_bytes == nbytes

    def test_memory_pressure_spills_runs(self):
        task = make_task(reduce_buffer_bytes=256)
        for i in range(20):
            chunk, nbytes = self.chunk([(f"k{j}", 1) for j in range(10)])
            task.accept_chunk(chunk, nbytes)
        assert task.counters[C.REDUCE_SPILL_BYTES] > 0
        output = task.run()
        assert dict(output) == {f"k{j}": 20 for j in range(10)}

    def test_snapshot_is_nondestructive(self):
        task = make_task(reduce_buffer_bytes=256)
        for i in range(10):
            chunk, nbytes = self.chunk([("a", 1), ("b", 1)])
            task.accept_chunk(chunk, nbytes)
        snap1 = dict(task.snapshot(0.5).records)
        snap2 = dict(task.snapshot(0.75).records)
        assert snap1 == snap2 == {"a": 10, "b": 10}
        # Final run still sees everything.
        assert dict(task.run()) == {"a": 10, "b": 10}

    def test_snapshot_reads_disk_runs(self):
        task = make_task(reduce_buffer_bytes=128)
        for i in range(30):
            chunk, nbytes = self.chunk([(f"k{i % 5}", 1)] * 4)
            task.accept_chunk(chunk, nbytes)
        before = task.counters[C.MERGE_READ_BYTES]
        task.snapshot(0.9)
        assert task.counters[C.MERGE_READ_BYTES] > before
        assert task.counters[C.SNAPSHOTS] == 1

    def test_snapshot_of_empty_task(self):
        task = make_task()
        snap = task.snapshot(0.25)
        assert snap.records == ()
        assert snap.fraction == 0.25

    def test_run_counts_groups(self):
        task = make_task()
        chunk, nbytes = self.chunk([("a", 1), ("b", 2), ("c", 3)])
        task.accept_chunk(chunk, nbytes)
        task.run()
        assert task.counters[C.REDUCE_INPUT_GROUPS] == 3
        assert task.counters[C.REDUCE_TASKS] == 1

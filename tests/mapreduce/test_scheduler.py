"""Wave scheduling and locality."""

import pytest

from repro.hdfs.blocks import BlockId
from repro.hdfs.filesystem import InputSplit
from repro.mapreduce.scheduler import WaveScheduler


def split(i, nodes):
    return InputSplit(
        block_id=BlockId("f", i), nbytes=100, records=10, preferred_nodes=tuple(nodes)
    )


class TestWaveScheduler:
    def test_all_tasks_assigned_exactly_once(self):
        sched = WaveScheduler(["n0", "n1"], map_slots=2)
        splits = [split(i, [f"n{i % 2}"]) for i in range(11)]
        assignments, stats = sched.schedule(splits)
        assert sorted(a.task_id for a in assignments) == list(range(11))
        assert stats.total_tasks == 11

    def test_perfect_locality_when_balanced(self):
        sched = WaveScheduler(["n0", "n1", "n2"], map_slots=1)
        splits = [split(i, [f"n{i % 3}"]) for i in range(9)]
        assignments, stats = sched.schedule(splits)
        assert stats.locality_rate == 1.0
        for a in assignments:
            assert a.node in a.split.preferred_nodes

    def test_remote_splits_still_run(self):
        # Splits stored on nodes outside the compute set (separate storage).
        sched = WaveScheduler(["c0", "c1"], map_slots=2)
        splits = [split(i, ["s0"]) for i in range(6)]
        assignments, stats = sched.schedule(splits)
        assert len(assignments) == 6
        assert stats.locality_rate == 0.0

    def test_waves_grow_with_load(self):
        sched = WaveScheduler(["n0"], map_slots=2)
        splits = [split(i, ["n0"]) for i in range(10)]
        _assignments, stats = sched.schedule(splits)
        assert stats.waves >= 5

    def test_wave_indices_monotone(self):
        sched = WaveScheduler(["n0", "n1"], map_slots=1)
        splits = [split(i, ["n0"]) for i in range(8)]
        assignments, _ = sched.schedule(splits)
        waves = [a.wave for a in assignments]
        assert waves == sorted(waves)

    def test_work_stealing_balances_skewed_storage(self):
        # Everything is stored on n0; n1 should steal some work.
        sched = WaveScheduler(["n0", "n1"], map_slots=1)
        splits = [split(i, ["n0"]) for i in range(12)]
        assignments, stats = sched.schedule(splits)
        nodes = {a.node for a in assignments}
        assert nodes == {"n0", "n1"}
        assert 0 < stats.local_tasks < 12

    def test_empty_splits(self):
        sched = WaveScheduler(["n0"])
        assignments, stats = sched.schedule([])
        assert assignments == []
        assert stats.locality_rate == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WaveScheduler([])
        with pytest.raises(ValueError):
            WaveScheduler(["n0"], map_slots=0)

    def test_assign_reducers_round_robin(self):
        sched = WaveScheduler(["n0", "n1", "n2"])
        placement = sched.assign_reducers(7)
        assert len(placement) == 7
        counts = {}
        for node in placement.values():
            counts[node] = counts.get(node, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1

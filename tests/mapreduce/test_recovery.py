"""Recovery primitives: retry policy, speculation, lineage, logs, checkpoints."""

import pytest

from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.recovery import (
    CheckpointStore,
    FetchRetryPolicy,
    PartitionLog,
    RecoveryManager,
    SpeculationPolicy,
    StragglerDetector,
    TaskLineage,
)


class TestFetchRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = FetchRetryPolicy(base_backoff_ms=100.0, max_backoff_ms=800.0)
        assert [policy.backoff_ms(a) for a in range(1, 6)] == [
            100.0,
            200.0,
            400.0,
            800.0,
            800.0,
        ]

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            FetchRetryPolicy().backoff_ms(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FetchRetryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            FetchRetryPolicy(base_backoff_ms=200.0, max_backoff_ms=100.0)


class TestStragglerDetector:
    def test_needs_baseline_before_flagging(self):
        detector = StragglerDetector(SpeculationPolicy(min_completed=2))
        assert not detector.is_straggler(10_000.0)
        detector.record(10.0)
        assert not detector.is_straggler(10_000.0)
        detector.record(10.0)
        assert detector.is_straggler(10_000.0)

    def test_threshold_is_relative_to_mean(self):
        detector = StragglerDetector(SpeculationPolicy(slowdown_threshold=1.5))
        detector.record(100.0)
        detector.record(100.0)
        assert detector.mean_ms == 100.0
        assert not detector.is_straggler(150.0)  # exactly at threshold
        assert detector.is_straggler(151.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(slowdown_threshold=1.0)
        with pytest.raises(ValueError):
            SpeculationPolicy(min_completed=0)
        with pytest.raises(ValueError):
            SpeculationPolicy(base_rate_bytes_per_ms=0)


class TestTaskLineage:
    def test_tracks_node_and_bytes(self):
        lineage = TaskLineage()
        lineage.record(0, "node00", 100)
        lineage.record(1, "node01", 200)
        lineage.record(2, "node00", 300)
        assert lineage.node_of(1) == "node01"
        assert lineage.bytes_of(2) == 300
        assert lineage.tasks_on("node00") == [0, 2]
        assert len(lineage) == 3

    def test_forget_is_idempotent(self):
        lineage = TaskLineage()
        lineage.record(0, "node00", 100)
        lineage.forget(0)
        lineage.forget(0)
        assert lineage.node_of(0) is None
        assert lineage.bytes_of(0) == 0
        assert lineage.tasks_on("node00") == []

    def test_rerun_overwrites_location(self):
        lineage = TaskLineage()
        lineage.record(0, "node00", 100)
        lineage.record(0, "node02", 100)
        assert lineage.tasks_on("node00") == []
        assert lineage.node_of(0) == "node02"


class TestRecoveryManagerMap:
    def test_retries_land_on_next_candidate(self):
        counters = Counters()
        manager = RecoveryManager(FaultPlan(map_failures={7: 2}), counters)
        ran, discarded = [], []
        node, result = manager.run_map_task(
            7,
            "a",
            ["a", "b", "c"],
            1024,
            attempt_fn=lambda n: ran.append(n) or f"out@{n}",
            discard_fn=lambda n, r: discarded.append((n, r)),
        )
        assert ran == ["a", "b", "c"]
        assert (node, result) == ("c", "out@c")
        # Dead attempts were cleaned up and charged.
        assert discarded == [("a", "out@a"), ("b", "out@b")]
        assert counters[C.MAP_TASK_RETRIES] == 2

    def test_exhaustion_aborts(self):
        manager = RecoveryManager(
            FaultPlan(map_failures={0: 99}, max_attempts=3), Counters()
        )
        with pytest.raises(RuntimeError, match="exhausted 3 attempts"):
            manager.run_map_task(
                0, "a", ["a", "b"], 1, lambda n: None, lambda n, r: None
            )

    def test_no_live_nodes_is_an_error(self):
        manager = RecoveryManager(FaultPlan(), Counters())
        with pytest.raises(RuntimeError, match="no live nodes"):
            manager.run_map_task(0, "a", [], 1, lambda n: None, lambda n, r: None)

    def test_no_plan_means_single_attempt(self):
        manager = RecoveryManager(None, Counters())
        ran = []
        node, _ = manager.run_map_task(
            0, "a", ["a"], 1, lambda n: ran.append(n), lambda n, r: None
        )
        assert ran == ["a"]
        assert node == "a"


class TestRecoveryManagerSpeculation:
    def plan(self):
        return FaultPlan(slow_nodes={"slow": 10.0})

    def warmed_manager(self, counters):
        manager = RecoveryManager(
            self.plan(),
            counters,
            speculation=SpeculationPolicy(min_completed=1),
        )
        # Baseline: one fast task completed.
        manager.run_map_task(
            0, "fast", ["fast", "slow"], 1024, lambda n: "x", lambda n, r: None
        )
        return manager

    def test_backup_beats_straggler(self):
        counters = Counters()
        manager = self.warmed_manager(counters)
        discarded = []
        node, result = manager.run_map_task(
            1,
            "slow",
            ["fast", "slow"],
            1024,
            attempt_fn=lambda n: f"out@{n}",
            discard_fn=lambda n, r: discarded.append((n, r)),
        )
        # The backup on the fast node wins; the original is killed.
        assert (node, result) == ("fast", "out@fast")
        assert discarded == [("slow", "out@slow")]
        assert counters[C.SPECULATIVE_LAUNCHED] == 1
        assert counters[C.SPECULATIVE_WINS] == 1
        assert counters[C.SPECULATIVE_WASTED_MS] > 0

    def test_mild_straggler_backup_loses(self):
        """A backup races the straggler's *remaining* time (it launches
        one mean-duration late), so a mild straggler keeps its win."""
        counters = Counters()
        manager = RecoveryManager(
            FaultPlan(slow_nodes={"slow": 2.0}),
            counters,
            speculation=SpeculationPolicy(min_completed=1),
        )
        manager.run_map_task(
            0, "fast", ["fast", "slow"], 1024, lambda n: "x", lambda n, r: None
        )
        discarded = []
        node, result = manager.run_map_task(
            1,
            "slow",
            ["fast", "slow"],
            1024,
            attempt_fn=lambda n: f"out@{n}",
            discard_fn=lambda n, r: discarded.append((n, r)),
        )
        assert (node, result) == ("slow", "out@slow")
        assert discarded == [("fast", "out@fast")]
        assert counters[C.SPECULATIVE_LAUNCHED] == 1
        assert counters[C.SPECULATIVE_WINS] == 0
        assert counters[C.SPECULATIVE_WASTED_MS] > 0

    def test_no_speculation_on_fast_node(self):
        counters = Counters()
        manager = self.warmed_manager(counters)
        node, _ = manager.run_map_task(
            2, "fast", ["fast", "slow"], 1024, lambda n: "y", lambda n, r: None
        )
        assert node == "fast"
        assert counters[C.SPECULATIVE_LAUNCHED] == 0

    def test_simulated_duration_uses_slowdown(self):
        manager = RecoveryManager(self.plan(), Counters())
        fast = manager.simulated_task_ms(64 * 1024, "fast")
        slow = manager.simulated_task_ms(64 * 1024, "slow")
        assert slow == pytest.approx(10.0 * fast)


class TestRecoveryManagerReduce:
    def test_retry_passes_attempt_index(self):
        counters = Counters()
        manager = RecoveryManager(FaultPlan(reduce_failures={2: 2}), counters)
        seen = []
        result = manager.run_reduce_task(2, lambda i: seen.append(i) or f"r{i}")
        assert seen == [0, 1, 2]
        assert result == "r2"
        assert counters[C.REDUCE_TASK_RETRIES] == 2

    def test_exhaustion_aborts(self):
        manager = RecoveryManager(
            FaultPlan(reduce_failures={0: 99}, max_attempts=2), Counters()
        )
        with pytest.raises(RuntimeError, match="reduce task 0 exhausted"):
            manager.run_reduce_task(0, lambda i: None)


def two_replicas():
    return [("n0", LocalDisk(name="n0")), ("n1", LocalDisk(name="n1"))]


class TestPartitionLog:
    def test_append_replay_roundtrip(self):
        counters = Counters()
        log = PartitionLog(0, two_replicas(), counters)
        assert log.append([("a", 1), ("b", 2)], nbytes=10) == 1
        assert log.append([("c", 3)], nbytes=5) == 2
        replayed = list(log.replay())
        assert [(seq, pairs) for seq, pairs, _ in replayed] == [
            (1, [("a", 1), ("b", 2)]),
            (2, [("c", 3)]),
        ]
        assert log.last_seq == 2
        # Every byte was written once per replica.
        assert counters[C.LOG_BYTES] == 2 * log.total_bytes

    def test_replay_after_seq_skips_prefix(self):
        log = PartitionLog(0, two_replicas(), Counters())
        log.append([("a", 1)], 1)
        log.append([("b", 2)], 1)
        log.append([("c", 3)], 1)
        assert [seq for seq, _, _ in log.replay(after_seq=2)] == [3]

    def test_replay_survives_one_replica_loss(self):
        replicas = two_replicas()
        log = PartitionLog(0, replicas, Counters())
        log.append([("a", 1)], 1)
        replicas[0][1].delete_prefix("")
        assert [pairs for _, pairs, _ in log.replay()] == [[("a", 1)]]

    def test_total_loss_raises(self):
        replicas = two_replicas()
        log = PartitionLog(0, replicas, Counters())
        log.append([("a", 1)], 1)
        for _, disk in replicas:
            disk.delete_prefix("")
        with pytest.raises(FileNotFoundError, match="replicas"):
            list(log.replay())

    def test_replace_replica_redirects_future_appends(self):
        replicas = two_replicas()
        log = PartitionLog(0, replicas, Counters())
        log.append([("old", 1)], 1)
        new_disk = LocalDisk(name="n2")
        log.replace_replica("n0", "n2", new_disk)
        log.append([("new", 2)], 1)
        # History stays on the survivor; the new entry is on both current
        # replicas — replay sees everything even after the swap.
        assert [pairs for _, pairs, _ in log.replay()] == [[("old", 1)], [("new", 2)]]
        assert any(f.startswith("faultlog/") for f in new_disk.list_files())

    def test_cleanup_scoped_to_partition(self):
        replicas = two_replicas()
        log0 = PartitionLog(0, replicas, Counters())
        log1 = PartitionLog(1, replicas, Counters())
        log0.append([("a", 1)], 1)
        log1.append([("b", 2)], 1)
        log0.cleanup()
        assert [pairs for _, pairs, _ in log1.replay()] == [[("b", 2)]]

    def test_needs_a_replica(self):
        with pytest.raises(ValueError):
            PartitionLog(0, [], Counters())


class TestCheckpointStore:
    def test_latest_is_newest(self):
        counters = Counters()
        store = CheckpointStore(0, two_replicas(), counters)
        store.save(3, b"early")
        store.save(7, b"late")
        assert store.latest() == (7, b"late")
        assert counters[C.CHECKPOINTS] == 2
        assert counters[C.CHECKPOINT_BYTES] == 2 * (len(b"early") + len(b"late"))

    def test_empty_store(self):
        assert CheckpointStore(0, two_replicas(), Counters()).latest() is None

    def test_survivor_serves_after_replica_loss(self):
        replicas = two_replicas()
        store = CheckpointStore(0, replicas, Counters())
        store.save(5, b"state")
        replicas[1][1].delete_prefix("")
        assert store.latest() == (5, b"state")

    def test_falls_back_to_older_surviving_checkpoint(self):
        replicas = two_replicas()
        store = CheckpointStore(0, replicas, Counters())
        store.save(3, b"old")
        store.save(7, b"new")
        for _, disk in replicas:
            disk.delete("faultchk/p000/s000007")
        assert store.latest() == (3, b"old")

    def test_replace_replica_and_cleanup(self):
        replicas = two_replicas()
        store = CheckpointStore(0, replicas, Counters())
        store.save(1, b"a")
        new_disk = LocalDisk(name="n2")
        store.replace_replica("n1", "n2", new_disk)
        store.save(2, b"b")
        assert store.latest() == (2, b"b")
        store.cleanup()
        assert store.latest() is None

"""MapReduceJob / JobConfig validation."""

import pytest

from repro.mapreduce.api import JobConfig, MapReduceJob


def identity_map(record):
    yield (record, 1)


def sum_reduce(key, values):
    yield (key, sum(values))


def sum_combine(key, values):
    yield (key, sum(values))


class TestJobConfig:
    def test_defaults_valid(self):
        cfg = JobConfig()
        assert cfg.num_reducers >= 1
        assert cfg.merge_factor >= 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_reducers": 0},
            {"merge_factor": 1},
            {"map_buffer_bytes": 0},
            {"reduce_buffer_bytes": -5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            JobConfig(**kwargs)


class TestMapReduceJob:
    def test_basic_construction(self):
        job = MapReduceJob("j", identity_map, sum_reduce, sum_combine)
        assert job.has_combiner

    def test_no_combiner(self):
        job = MapReduceJob("j", identity_map, sum_reduce)
        assert not job.has_combiner

    def test_name_required(self):
        with pytest.raises(ValueError):
            MapReduceJob("", identity_map, sum_reduce)

    def test_callables_required(self):
        with pytest.raises(TypeError):
            MapReduceJob("j", None, sum_reduce)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            MapReduceJob("j", identity_map, "nope")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            MapReduceJob("j", identity_map, sum_reduce, combine_fn=7)  # type: ignore[arg-type]

    def test_with_config_overrides(self):
        job = MapReduceJob("j", identity_map, sum_reduce, input_path="in", output_path="out")
        job2 = job.with_config(num_reducers=7, merge_factor=3)
        assert job2.config.num_reducers == 7
        assert job2.config.merge_factor == 3
        # original untouched, metadata carried over
        assert job.config.num_reducers != 7 or job.config.num_reducers == 7
        assert job2.input_path == "in"
        assert job2.output_path == "out"
        assert job2.map_fn is identity_map

    def test_with_config_unknown_field(self):
        job = MapReduceJob("j", identity_map, sum_reduce)
        with pytest.raises(AttributeError):
            job.with_config(bogus=1)

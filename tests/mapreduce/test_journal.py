"""JobJournal: framing, crash injection, torn-tail recovery, fingerprints."""

import os
import zlib

import pytest

from repro.mapreduce.journal import (
    K_MAP_COMMIT,
    K_OUTPUT_COMMIT,
    K_REDUCE_COMMIT,
    K_TASK_GRANT,
    NULL_JOURNAL,
    CoordinatorCrash,
    JobJournal,
    JournalCorruptError,
    JournalMismatchError,
    job_fingerprint,
)
from repro.workloads import page_frequency_job, per_user_count_job


class TestRoundtrip:
    def test_append_reopen_replay(self, tmp_path):
        j = JobJournal(tmp_path)
        assert j.append(K_TASK_GRANT, task=0, node="node00") == 1
        assert j.append(K_MAP_COMMIT, task=0, node="node00") == 2
        j.finalize()

        j2 = JobJournal(tmp_path)
        kinds = [r.kind for r in j2.records]
        assert kinds == [K_TASK_GRANT, K_MAP_COMMIT]
        assert j2.records[0].fields == {"task": 0, "node": "node00"}
        assert j2.truncated_bytes == 0

    def test_resume_state_aggregates(self, tmp_path):
        j = JobJournal(tmp_path)
        j.append(K_REDUCE_COMMIT, partition=1, records=(("a", 2),))
        j.append(K_REDUCE_COMMIT, partition=0, records=())
        j.append(K_OUTPUT_COMMIT, path="out", records=1, digest="ff" * 8)
        j.finalize()

        state = JobJournal(tmp_path).resume_state()
        assert state.reduce_commits == {1: (("a", 2),), 0: ()}
        assert state.output_commits == 1
        assert state.output_digest == "ff" * 8
        assert state.complete(2)
        assert not state.complete(3)

    def test_segments_accumulate_across_sessions(self, tmp_path):
        for task in range(3):
            j = JobJournal(tmp_path)
            j.append(K_MAP_COMMIT, task=task, node="node00")
            j.finalize()
        j = JobJournal(tmp_path)
        assert [r.fields["task"] for r in j.records] == [0, 1, 2]
        assert sorted(os.listdir(tmp_path)) == [
            "seg-00000.wal",
            "seg-00001.wal",
            "seg-00002.wal",
        ]

    def test_no_append_session_leaves_directory_untouched(self, tmp_path):
        j = JobJournal(tmp_path)
        j.append(K_MAP_COMMIT, task=0, node="n")
        j.finalize()
        before = sorted(os.listdir(tmp_path))

        j2 = JobJournal(tmp_path)
        j2.finalize()  # nothing appended: must be a no-op
        j2.close()
        assert sorted(os.listdir(tmp_path)) == before


class TestCrashInjection:
    def test_crash_after_keeps_record(self, tmp_path):
        j = JobJournal(tmp_path, crash_at=2)
        j.append(K_TASK_GRANT, task=0, node="n")
        with pytest.raises(CoordinatorCrash) as exc:
            j.append(K_MAP_COMMIT, task=0, node="n")
        assert exc.value.site == 2
        assert exc.value.kind == K_MAP_COMMIT

        recovered = JobJournal(tmp_path)
        assert [r.kind for r in recovered.records] == [K_TASK_GRANT, K_MAP_COMMIT]
        assert recovered.truncated_bytes == 0

    def test_crash_torn_truncates_on_reopen(self, tmp_path):
        j = JobJournal(tmp_path, crash_at=2, crash_mode="torn")
        j.append(K_TASK_GRANT, task=0, node="n")
        with pytest.raises(CoordinatorCrash):
            j.append(K_MAP_COMMIT, task=0, node="n")

        recovered = JobJournal(tmp_path)
        assert [r.kind for r in recovered.records] == [K_TASK_GRANT]
        assert recovered.truncated_bytes > 0
        # The crashed session's segment was sealed after truncation.
        assert all(f.endswith(".wal") for f in os.listdir(tmp_path))

    def test_crash_params_validated(self, tmp_path):
        with pytest.raises(ValueError, match="1-based"):
            JobJournal(tmp_path, crash_at=0)
        with pytest.raises(ValueError, match="crash_mode"):
            JobJournal(tmp_path, crash_mode="during")


class TestCorruption:
    def test_corrupt_finalized_segment_raises(self, tmp_path):
        j = JobJournal(tmp_path)
        j.append(K_MAP_COMMIT, task=0, node="n")
        j.finalize()
        seg = tmp_path / "seg-00000.wal"
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte: crc must catch it
        seg.write_bytes(bytes(data))

        with pytest.raises(JournalCorruptError, match="seg-00000.wal"):
            JobJournal(tmp_path)

    def test_torn_open_tail_is_truncated_not_fatal(self, tmp_path):
        j = JobJournal(tmp_path)
        j.append(K_MAP_COMMIT, task=0, node="n")
        j.close()  # crash without finalize: leaves seg-00000.open
        (seg,) = [f for f in os.listdir(tmp_path) if f.endswith(".open")]
        with open(tmp_path / seg, "ab") as fh:
            fh.write(b"\x40\x00\x00\x00")  # header fragment of a torn record

        recovered = JobJournal(tmp_path)
        assert len(recovered.records) == 1
        assert recovered.truncated_bytes == 4

    def test_bad_crc_mid_segment_truncates_suffix(self, tmp_path):
        j = JobJournal(tmp_path)
        j.append(K_MAP_COMMIT, task=0, node="n")
        size_after_first = os.path.getsize(j._open_segment_path())
        j.append(K_MAP_COMMIT, task=1, node="n")
        j.close()
        (seg,) = os.listdir(tmp_path)
        full = tmp_path / seg
        data = bytearray(full.read_bytes())
        data[size_after_first + 8] ^= 0xFF  # corrupt the second payload
        full.write_bytes(bytes(data))

        recovered = JobJournal(tmp_path)
        assert [r.fields["task"] for r in recovered.records] == [0]
        assert recovered.truncated_bytes == len(data) - size_after_first

    def test_crc_actually_covers_payload(self, tmp_path):
        j = JobJournal(tmp_path)
        j.append(K_MAP_COMMIT, task=0, node="n")
        j.finalize()
        raw = (tmp_path / "seg-00000.wal").read_bytes()
        length = int.from_bytes(raw[:4], "little")
        crc = int.from_bytes(raw[4:8], "little")
        assert length == len(raw) - 8
        assert crc == zlib.crc32(raw[8:])


class TestFingerprint:
    def test_same_job_same_engine_stable(self):
        a = job_fingerprint(per_user_count_job("in", "out"), "hadoop")
        b = job_fingerprint(per_user_count_job("in", "out"), "hadoop")
        assert a == b

    def test_differs_by_job_engine_and_paths(self):
        base = job_fingerprint(per_user_count_job("in", "out"), "hadoop")
        assert job_fingerprint(page_frequency_job("in", "out"), "hadoop") != base
        assert job_fingerprint(per_user_count_job("in", "out"), "hop") != base
        assert job_fingerprint(per_user_count_job("in", "other"), "hadoop") != base

    def test_mismatch_refused_on_resume(self, tmp_path):
        from repro.mapreduce.journal import K_JOB_SPEC

        j = JobJournal(tmp_path)
        j.append(
            K_JOB_SPEC,
            spec=job_fingerprint(per_user_count_job("in", "out"), "hadoop"),
            engine="hadoop",
        )
        j.finalize()
        state = JobJournal(tmp_path).resume_state()
        with pytest.raises(JournalMismatchError):
            state.check_spec(job_fingerprint(page_frequency_job("in", "out"), "hadoop"))


class TestNullJournal:
    def test_null_journal_is_inert(self):
        assert not NULL_JOURNAL.enabled
        assert NULL_JOURNAL.append(K_MAP_COMMIT, task=0) == 0
        assert NULL_JOURNAL.resume_state().reduce_commits == {}
        NULL_JOURNAL.finalize()
        NULL_JOURNAL.close()
        assert NULL_JOURNAL.appends == 0

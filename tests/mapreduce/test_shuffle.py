"""Pull-based shuffle service."""

import pytest

from repro.io.disk import LocalDisk
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.recovery import FetchRetryPolicy
from repro.mapreduce.shuffle import FetchFailedError, ShuffleService
from repro.mapreduce.sortmerge import SortMergeMapTask


def word_map(record):
    for word in record.split():
        yield (word, 1)


def sum_reduce(key, values):
    yield (key, sum(values))


def run_map(task_id, disk, records, num_reducers=2):
    job = MapReduceJob(
        "wc", word_map, sum_reduce, config=JobConfig(num_reducers=num_reducers)
    )
    task = SortMergeMapTask(job, task_id, "n0", disk)
    return task.run(records)


class TestShuffleService:
    def test_register_and_fetch(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b c d e f"])
        service.register(out)
        assert service.completed_maps == [0]
        fetched = service.fetch_all(0)
        assert sum(len(seg.pairs) for seg in fetched) == sum(
            seg.records for p, seg in out.segments.items() if p == 0
        )

    def test_duplicate_register_rejected(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a"])
        service.register(out)
        with pytest.raises(ValueError):
            service.register(out)

    def test_double_fetch_rejected(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b c"])
        service.register(out)
        partition = next(iter(out.segments))
        service.fetch(0, partition)
        with pytest.raises(ValueError):
            service.fetch(0, partition)

    def test_pending_fetches_shrink(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b c d e f g h i j"])
        service.register(out)
        for partition in list(out.segments):
            assert 0 in service.pending_fetches(partition)
            service.fetch(0, partition)
            assert 0 not in service.pending_fetches(partition)

    def test_page_cache_serving_skips_disk_read(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk}, serve_from_page_cache=True)
        out = run_map(0, disk, ["a b c d"])
        service.register(out)
        reads_before = disk.stats.bytes_read
        service.fetch_all(0)
        assert disk.stats.bytes_read == reads_before

    def test_disk_serving_reads(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk}, serve_from_page_cache=False)
        out = run_map(0, disk, ["a b c d"])
        service.register(out)
        reads_before = disk.stats.bytes_read
        fetched = service.fetch_all(0)
        if fetched:
            assert disk.stats.bytes_read > reads_before

    def test_network_bytes_counted_either_way(self):
        for cached in (True, False):
            disk = LocalDisk(name="n0")
            service = ShuffleService({"n0": disk}, serve_from_page_cache=cached)
            out = run_map(0, disk, ["a b c d e"])
            service.register(out)
            for p in out.segments:
                service.fetch(0, p)
            assert service.network_bytes == out.total_bytes

    def test_cleanup_deletes_map_output(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b"])
        service.register(out)
        service.cleanup()
        for seg in out.segments.values():
            assert not disk.exists(seg.path)

    def test_multiple_mappers_ordered(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        outs = [run_map(i, disk, [f"w{i} common"]) for i in range(3)]
        for out in outs:
            service.register(out)
        for partition in range(2):
            tasks = service.pending_fetches(partition)
            assert tasks == sorted(tasks)


class TestShuffleFaults:
    def registered(self, plan, **kwargs):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk}, fault_plan=plan, **kwargs)
        out = run_map(0, disk, ["a b c d e f"])
        service.register(out)
        return service, out

    def test_transient_failures_back_off_then_succeed(self):
        plan = FaultPlan(shuffle_failures={(0, 0): 2})
        service, out = self.registered(
            plan, retry_policy=FetchRetryPolicy(max_retries=4, base_backoff_ms=100.0)
        )
        seg = service.fetch(0, 0)
        assert len(seg.pairs) > 0
        assert service.fetch_failures == 2
        assert service.backoff_ms == 100.0 + 200.0  # exponential

    def test_too_many_failures_declare_output_lost(self):
        plan = FaultPlan(shuffle_failures={(0, 0): 99})
        service, _ = self.registered(
            plan, retry_policy=FetchRetryPolicy(max_retries=3)
        )
        with pytest.raises(FetchFailedError) as e:
            service.fetch(0, 0)
        assert (e.value.map_task, e.value.partition) == (0, 0)
        assert service.fetch_failures == 3
        # The segment is still pending: a rerun can serve it later.
        assert 0 in service.pending_fetches(0)

    def test_invalidate_keeps_fetch_marks(self):
        service, out = self.registered(FaultPlan())
        service.fetch(0, 0)
        service.invalidate(0)
        assert service.completed_maps == []
        # Re-registering the rerun's output only offers unfetched segments.
        service.register(out)
        assert 0 not in service.pending_fetches(0)
        other = [p for p in out.segments if p != 0]
        for p in other:
            assert 0 in service.pending_fetches(p)

    def test_reset_partition_allows_refetch(self):
        service, _ = self.registered(FaultPlan())
        service.fetch(0, 0)
        service.reset_partition(0)
        assert 0 in service.pending_fetches(0)
        seg = service.fetch(0, 0)
        assert len(seg.pairs) > 0

    def test_refetch_pays_disk_and_counts_as_rework(self):
        service, out = self.registered(FaultPlan(), serve_from_page_cache=True)
        disk = service.mapper_disks["n0"]
        service.fetch(0, 0)  # fresh: page cache, no disk read
        reads_before = disk.stats.bytes_read
        service.reset_partition(0)
        seg = service.fetch(0, 0)  # refetch: must hit disk
        assert disk.stats.bytes_read > reads_before
        assert service.refetched_bytes == seg.nbytes
        counters = Counters()
        service.merge_stats(counters)
        from repro.mapreduce.counters import C

        assert counters[C.BYTES_RESHUFFLED] == seg.nbytes

    def test_outputs_on_names_node_local_maps(self):
        service, _ = self.registered(FaultPlan())
        assert service.outputs_on("n0") == [0]
        assert service.outputs_on("n1") == []

"""Pull-based shuffle service."""

import pytest

from repro.io.disk import LocalDisk
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.mapreduce.shuffle import ShuffleService
from repro.mapreduce.sortmerge import SortMergeMapTask


def word_map(record):
    for word in record.split():
        yield (word, 1)


def sum_reduce(key, values):
    yield (key, sum(values))


def run_map(task_id, disk, records, num_reducers=2):
    job = MapReduceJob(
        "wc", word_map, sum_reduce, config=JobConfig(num_reducers=num_reducers)
    )
    task = SortMergeMapTask(job, task_id, "n0", disk)
    return task.run(records)


class TestShuffleService:
    def test_register_and_fetch(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b c d e f"])
        service.register(out)
        assert service.completed_maps == [0]
        fetched = service.fetch_all(0)
        assert sum(len(seg.pairs) for seg in fetched) == sum(
            seg.records for p, seg in out.segments.items() if p == 0
        )

    def test_duplicate_register_rejected(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a"])
        service.register(out)
        with pytest.raises(ValueError):
            service.register(out)

    def test_double_fetch_rejected(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b c"])
        service.register(out)
        partition = next(iter(out.segments))
        service.fetch(0, partition)
        with pytest.raises(ValueError):
            service.fetch(0, partition)

    def test_pending_fetches_shrink(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b c d e f g h i j"])
        service.register(out)
        for partition in list(out.segments):
            assert 0 in service.pending_fetches(partition)
            service.fetch(0, partition)
            assert 0 not in service.pending_fetches(partition)

    def test_page_cache_serving_skips_disk_read(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk}, serve_from_page_cache=True)
        out = run_map(0, disk, ["a b c d"])
        service.register(out)
        reads_before = disk.stats.bytes_read
        service.fetch_all(0)
        assert disk.stats.bytes_read == reads_before

    def test_disk_serving_reads(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk}, serve_from_page_cache=False)
        out = run_map(0, disk, ["a b c d"])
        service.register(out)
        reads_before = disk.stats.bytes_read
        fetched = service.fetch_all(0)
        if fetched:
            assert disk.stats.bytes_read > reads_before

    def test_network_bytes_counted_either_way(self):
        for cached in (True, False):
            disk = LocalDisk(name="n0")
            service = ShuffleService({"n0": disk}, serve_from_page_cache=cached)
            out = run_map(0, disk, ["a b c d e"])
            service.register(out)
            for p in out.segments:
                service.fetch(0, p)
            assert service.network_bytes == out.total_bytes

    def test_cleanup_deletes_map_output(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        out = run_map(0, disk, ["a b"])
        service.register(out)
        service.cleanup()
        for seg in out.segments.values():
            assert not disk.exists(seg.path)

    def test_multiple_mappers_ordered(self):
        disk = LocalDisk(name="n0")
        service = ShuffleService({"n0": disk})
        outs = [run_map(i, disk, [f"w{i} common"]) for i in range(3)]
        for out in outs:
            service.register(out)
        for partition in range(2):
            tasks = service.pending_fetches(partition)
            assert tasks == sorted(tasks)

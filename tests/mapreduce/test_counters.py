"""Counters: accumulation, timers, merge semantics."""

import time

from repro.mapreduce.counters import C, Counters


class TestCounters:
    def test_inc_and_get(self):
        c = Counters()
        c.inc("x")
        c.inc("x", 2.5)
        assert c.get("x") == 3.5
        assert c["x"] == 3.5
        assert c["missing"] == 0

    def test_contains_and_names(self):
        c = Counters()
        c.inc("b")
        c.inc("a")
        assert "a" in c and "z" not in c
        assert c.names() == ["a", "b"]

    def test_set_max(self):
        c = Counters()
        c.set_max("peak", 10)
        c.set_max("peak", 5)
        assert c["peak"] == 10
        c.set_max("peak", 12)
        assert c["peak"] == 12

    def test_timer_accumulates(self):
        c = Counters()
        with c.timer("t"):
            time.sleep(0.01)
        with c.timer("t"):
            time.sleep(0.01)
        assert c["t"] >= 0.02

    def test_timer_survives_exceptions(self):
        c = Counters()
        try:
            with c.timer("t"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert c["t"] >= 0

    def test_merge_adds(self):
        a = Counters()
        b = Counters()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_merge_takes_max_for_peaks(self):
        a = Counters()
        b = Counters()
        a.set_max("state.bytes.peak", 100)
        b.set_max("state.bytes.peak", 60)
        a.merge(b)
        assert a["state.bytes.peak"] == 100
        b.set_max("state.bytes.peak", 500)
        a.merge(b)
        assert a["state.bytes.peak"] == 500

    def test_merge_is_associative_for_sums(self):
        parts = []
        for i in range(3):
            c = Counters()
            c.inc("x", i + 1)
            parts.append(c)
        left = Counters()
        for p in parts:
            left.merge(p)
        right = Counters()
        right.merge(parts[2]).merge(parts[0]).merge(parts[1])
        assert left.as_dict() == right.as_dict()

    def test_copy_is_independent(self):
        a = Counters()
        a.inc("x")
        b = a.copy()
        b.inc("x")
        assert a["x"] == 1
        assert b["x"] == 2

    def test_canonical_names_are_distinct(self):
        names = [getattr(C, attr) for attr in dir(C) if not attr.startswith("_")]
        assert len(names) == len(set(names))

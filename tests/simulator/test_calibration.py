"""Calibration constants: internal consistency with the paper's tables."""

import pytest

from repro.simulator.calibration import (
    CLUSTER_2011,
    GB,
    INVERTED_INDEX,
    PAGE_FREQUENCY,
    PAPER_WORKLOADS,
    PER_USER_COUNT,
    SESSIONIZATION,
    ClusterSpec,
    WorkloadProfile,
)


class TestClusterSpec:
    def test_paper_cluster_shape(self):
        assert CLUSTER_2011.nodes == 10
        assert CLUSTER_2011.reducers == 40
        assert CLUSTER_2011.block_bytes == 64 * 1024 * 1024
        assert CLUSTER_2011.merge_factor == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(nodes=4, storage_nodes=4)
        with pytest.raises(ValueError):
            ClusterSpec(merge_factor=1)

    def test_compute_nodes(self):
        assert ClusterSpec(nodes=10).compute_nodes == 10
        assert ClusterSpec(nodes=10, storage_nodes=4).compute_nodes == 6


class TestWorkloadProfiles:
    def test_registry_contains_all_four(self):
        assert set(PAPER_WORKLOADS) == {
            "sessionization",
            "page-frequency",
            "per-user-count",
            "inverted-index",
        }

    def test_input_sizes_match_table1(self):
        assert SESSIONIZATION.input_bytes == 256 * GB
        assert PAGE_FREQUENCY.input_bytes == 508 * GB
        assert PER_USER_COUNT.input_bytes == 256 * GB
        assert INVERTED_INDEX.input_bytes == 427 * GB

    def test_intermediate_ratios_match_table1(self):
        # Map-output/input ratios from Table I.
        assert SESSIONIZATION.map_output_ratio == pytest.approx(269 / 256)
        assert PAGE_FREQUENCY.map_output_ratio == pytest.approx(1.8 / 508)
        assert PER_USER_COUNT.map_output_ratio == pytest.approx(2.6 / 256)
        assert INVERTED_INDEX.map_output_ratio == pytest.approx(150 / 427)

    def test_sort_share_matches_table2(self):
        # Table II: sessionization 61/39, per-user count 52/48 —
        # map-fn vs sort CPU over one block (sorting covers raw map output).
        def sort_share(p: WorkloadProfile, presort_ratio: float) -> float:
            map_fn = (p.map_cpu_per_mb + p.parse_cpu_per_mb) * 64
            sort = p.sort_cpu_per_mb * 64 * presort_ratio
            return sort / (map_fn + sort)

        assert sort_share(SESSIONIZATION, SESSIONIZATION.map_output_ratio) == pytest.approx(
            0.39, abs=0.05
        )
        assert sort_share(PER_USER_COUNT, 1.0) == pytest.approx(0.48, abs=0.05)

    def test_holistic_workloads_do_not_fit(self):
        assert SESSIONIZATION.state_fit_fraction == 0.0
        assert INVERTED_INDEX.state_fit_fraction == 0.0
        assert PAGE_FREQUENCY.state_fit_fraction == 1.0
        assert PER_USER_COUNT.state_fit_fraction == 1.0

    def test_scaled_preserves_rates(self):
        small = SESSIONIZATION.scaled(1 * GB)
        assert small.input_bytes == 1 * GB
        assert small.map_cpu_per_mb == SESSIONIZATION.map_cpu_per_mb
        assert small.map_output_ratio == SESSIONIZATION.map_output_ratio
        assert small.name == SESSIONIZATION.name

    def test_validation(self):
        with pytest.raises(ValueError):
            SESSIONIZATION.scaled(0)

"""Task-log spans and timeline binning."""

import pytest

from repro.simulator.timeline import TaskLog


class TestTaskLog:
    def test_record_and_query(self):
        log = TaskLog()
        log.record("map", 0, 10, node="n0", task_id=1)
        log.record("map", 5, 20, node="n1", task_id=2)
        log.record("reduce", 20, 30)
        assert len(log.phase_spans("map")) == 2
        assert log.phase_window("map") == (0, 20)
        assert log.makespan() == 30

    def test_open_close(self):
        log = TaskLog()
        log.open("map", 1, "n0", 2.0)
        log.close("map", 1, "n0", 7.0)
        span = log.phase_spans("map")[0]
        assert (span.start, span.end) == (2.0, 7.0)

    def test_invalid_span(self):
        log = TaskLog()
        with pytest.raises(ValueError):
            log.record("map", 10, 5)

    def test_missing_phase_window(self):
        log = TaskLog()
        with pytest.raises(ValueError):
            log.phase_window("merge")

    def test_counts_series_overlap_weighted(self):
        log = TaskLog()
        log.record("map", 0, 10)
        log.record("map", 0, 5)
        times, series = log.counts_series(bucket=5, phases=("map",))
        assert times.tolist() == [0.0, 5.0]
        assert series["map"].tolist() == [2.0, 1.0]

    def test_counts_series_partial_bucket(self):
        log = TaskLog()
        log.record("map", 2.5, 5.0)
        _times, series = log.counts_series(bucket=5, phases=("map",))
        assert series["map"][0] == pytest.approx(0.5)

    def test_unknown_phases_ignored(self):
        log = TaskLog()
        log.record("exotic", 0, 10)
        _times, series = log.counts_series(bucket=5, phases=("map",))
        assert series["map"].sum() == 0

    def test_empty_log(self):
        log = TaskLog()
        assert log.makespan() == 0.0
        times, series = log.counts_series(bucket=10)
        assert len(times) == 1

"""Cross-pipeline invariants and architecture interactions (simulator)."""

import pytest

from repro.simulator.calibration import (
    GB,
    INVERTED_INDEX,
    PAGE_FREQUENCY,
    PER_USER_COUNT,
    SESSIONIZATION,
    ClusterSpec,
)
from repro.simulator.pipelines import (
    HadoopPipeline,
    HOPPipeline,
    HOPSimConfig,
    OnePassPipeline,
)

SPEC = ClusterSpec(reducers=8)
ALL_PROFILES = [
    SESSIONIZATION.scaled(6 * GB),
    PAGE_FREQUENCY.scaled(6 * GB),
    PER_USER_COUNT.scaled(6 * GB),
    INVERTED_INDEX.scaled(6 * GB),
]


@pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
class TestConservationAcrossPipelines:
    def test_hadoop_shuffle_equals_map_output(self, profile):
        r = HadoopPipeline(SPEC, profile, metric_bucket=5.0).run()
        assert r.totals.shuffle_bytes == pytest.approx(
            r.totals.map_output_bytes, rel=1e-9
        )

    def test_hop_shuffle_equals_map_output(self, profile):
        r = HOPPipeline(SPEC, profile, metric_bucket=5.0).run()
        assert r.totals.shuffle_bytes == pytest.approx(
            r.totals.map_output_bytes, rel=1e-6
        )

    def test_onepass_shuffle_equals_map_output(self, profile):
        r = OnePassPipeline(SPEC, profile, metric_bucket=5.0).run()
        assert r.totals.shuffle_bytes == pytest.approx(
            r.totals.map_output_bytes, rel=1e-6
        )

    def test_output_bytes_match_profile(self, profile):
        for cls in (HadoopPipeline, HOPPipeline, OnePassPipeline):
            r = cls(SPEC, profile, metric_bucket=5.0).run()
            assert r.totals.output_bytes == pytest.approx(
                profile.input_bytes * profile.reduce_output_ratio, rel=1e-6
            )

    def test_onepass_never_slower_order_of_magnitude(self, profile):
        sm = HadoopPipeline(SPEC, profile, metric_bucket=5.0).run()
        op = OnePassPipeline(SPEC, profile, metric_bucket=5.0).run()
        assert op.makespan <= 1.05 * sm.makespan


class TestArchitectureInteractions:
    def test_ssd_helps_every_pipeline_with_intermediate_data(self):
        profile = SESSIONIZATION.scaled(6 * GB)
        for cls in (HadoopPipeline, HOPPipeline, OnePassPipeline):
            base = cls(SPEC, profile, metric_bucket=5.0).run()
            ssd = cls(
                ClusterSpec(reducers=8, with_ssd=True), profile, metric_bucket=5.0
            ).run()
            assert ssd.makespan <= base.makespan * 1.01

    def test_onepass_separate_storage_runs(self):
        profile = SESSIONIZATION.scaled(6 * GB)
        spec = ClusterSpec(reducers=8, storage_nodes=5)
        r = OnePassPipeline(spec, profile, metric_bucket=5.0).run()
        assert r.totals.remote_input_bytes == pytest.approx(
            profile.input_bytes, rel=1e-6
        )
        assert r.makespan > 0

    def test_hop_separate_storage_runs(self):
        profile = SESSIONIZATION.scaled(6 * GB)
        spec = ClusterSpec(reducers=8, storage_nodes=5)
        r = HOPPipeline(spec, profile, metric_bucket=5.0).run()
        assert r.totals.remote_input_bytes == pytest.approx(
            profile.input_bytes, rel=1e-6
        )

    def test_smaller_blocks_mean_more_map_tasks(self):
        profile = PER_USER_COUNT.scaled(4 * GB)
        small = HadoopPipeline(
            ClusterSpec(reducers=8, block_bytes=32 * 1024 * 1024),
            profile,
            metric_bucket=5.0,
        ).run()
        big = HadoopPipeline(
            ClusterSpec(reducers=8, block_bytes=128 * 1024 * 1024),
            profile,
            metric_bucket=5.0,
        ).run()
        assert len(small.task_log.phase_spans("map")) == 4 * len(
            big.task_log.phase_spans("map")
        )

    def test_more_reducers_spread_reduce_phase(self):
        profile = SESSIONIZATION.scaled(6 * GB)
        few = HadoopPipeline(ClusterSpec(reducers=4), profile, metric_bucket=5.0).run()
        many = HadoopPipeline(ClusterSpec(reducers=16), profile, metric_bucket=5.0).run()
        assert len(many.task_log.phase_spans("reduce")) == 16
        assert len(few.task_log.phase_spans("reduce")) == 4


class TestScaling:
    def test_makespan_roughly_linear_in_input(self):
        spec = ClusterSpec(reducers=8)
        small = HadoopPipeline(spec, SESSIONIZATION.scaled(4 * GB), metric_bucket=5.0).run()
        double = HadoopPipeline(spec, SESSIONIZATION.scaled(8 * GB), metric_bucket=5.0).run()
        ratio = double.makespan / small.makespan
        assert 1.5 <= ratio <= 2.6

    def test_hop_snapshot_cost_scales_with_fractions(self):
        profile = SESSIONIZATION.scaled(6 * GB)
        none = HOPPipeline(
            SPEC, profile, hop=HOPSimConfig(snapshot_fractions=()), metric_bucket=5.0
        ).run()
        many = HOPPipeline(
            SPEC,
            profile,
            hop=HOPSimConfig(snapshot_fractions=(0.2, 0.4, 0.6, 0.8)),
            metric_bucket=5.0,
        ).run()
        assert none.totals.snapshot_read_bytes == 0
        assert many.totals.snapshot_read_bytes > 0
        assert many.makespan >= none.makespan

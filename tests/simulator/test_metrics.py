"""Metric binning and series extraction."""

import numpy as np
import pytest

from repro.simulator.events import Simulator
from repro.simulator.metrics import (
    MetricSampler,
    bin_busy_fraction,
    bin_bytes,
    node_metrics,
)
from repro.simulator.resources import CpuBank, Disk, Interval


def iv(start, end, nbytes=0, tag=""):
    return Interval(start=start, end=end, stream="s", nbytes=nbytes, tag=tag)


class TestBinning:
    def test_full_busy_bucket(self):
        util = bin_busy_fraction([iv(0, 10)], horizon=10, bucket=10, servers=1)
        assert util.tolist() == [1.0]

    def test_partial_overlap(self):
        util = bin_busy_fraction([iv(5, 15)], horizon=20, bucket=10, servers=1)
        assert util.tolist() == [0.5, 0.5]

    def test_multi_server_normalisation(self):
        util = bin_busy_fraction([iv(0, 10), iv(0, 10)], 10, 10, servers=4)
        assert util.tolist() == [0.5]

    def test_clipped_at_one(self):
        intervals = [iv(0, 10)] * 3
        util = bin_busy_fraction(intervals, 10, 10, servers=2)
        assert util.max() <= 1.0

    def test_bytes_spread_over_duration(self):
        out = bin_bytes([iv(0, 20, nbytes=200)], horizon=20, bucket=10)
        assert out.tolist() == [100.0, 100.0]

    def test_zero_duration_interval_ignored(self):
        out = bin_bytes([iv(5, 5, nbytes=100)], horizon=10, bucket=10)
        assert out.tolist() == [0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_busy_fraction([], horizon=0, bucket=1, servers=1)
        with pytest.raises(ValueError):
            bin_busy_fraction([], horizon=1, bucket=0, servers=1)


class TestNodeMetrics:
    def test_iowait_is_idle_and_disk_busy(self):
        sim = Simulator()
        cpu = CpuBank(sim, "cpu", servers=1)
        disk = Disk(sim, "d", bandwidth=1024, seek_time=0.0)
        # CPU busy 0-10 fully; disk busy 0-20.
        cpu.intervals.append(iv(0, 10))
        disk.intervals.append(iv(0, 20, nbytes=20 * 1024, tag="read"))
        bundle = node_metrics(cpu, [disk], horizon=20, bucket=10)
        assert bundle.cpu_utilization.tolist() == [1.0, 0.0]
        assert bundle.cpu_iowait.tolist() == [0.0, 1.0]
        assert bundle.disk_read_bytes_per_s[1] == pytest.approx(1024.0)

    def test_write_series_separate(self):
        sim = Simulator()
        cpu = CpuBank(sim, "cpu", servers=1)
        disk = Disk(sim, "d", bandwidth=1024, seek_time=0.0)
        disk.intervals.append(iv(0, 10, nbytes=1024, tag="write"))
        bundle = node_metrics(cpu, [disk], horizon=10, bucket=10)
        assert bundle.disk_read_bytes_per_s.sum() == 0
        assert bundle.disk_write_bytes_per_s.sum() > 0

    def test_as_dict_round_trip(self):
        sim = Simulator()
        cpu = CpuBank(sim, "cpu", servers=1)
        bundle = node_metrics(cpu, [], horizon=10, bucket=5)
        d = bundle.as_dict()
        assert set(d) == {
            "times",
            "cpu_utilization",
            "cpu_iowait",
            "disk_read_bytes_per_s",
            "disk_write_bytes_per_s",
        }
        assert len(d["times"]) == len(d["cpu_utilization"])


class TestSampler:
    def test_cluster_average(self):
        sim = Simulator()
        nodes = []
        for i in range(2):
            cpu = CpuBank(sim, f"cpu{i}", servers=1)
            if i == 0:
                cpu.intervals.append(iv(0, 10))
            nodes.append((cpu, []))
        bundle = MetricSampler(bucket=10).cluster_series(nodes, horizon=10)
        assert bundle.cpu_utilization.tolist() == [0.5]

    def test_disk_bytes_summed_across_nodes(self):
        sim = Simulator()
        nodes = []
        for i in range(2):
            cpu = CpuBank(sim, f"cpu{i}", servers=1)
            disk = Disk(sim, f"d{i}", bandwidth=1024, seek_time=0)
            disk.intervals.append(iv(0, 10, nbytes=1024, tag="read"))
            nodes.append((cpu, [disk]))
        bundle = MetricSampler(bucket=10).cluster_series(nodes, horizon=10)
        assert bundle.disk_read_bytes_per_s[0] == pytest.approx(204.8)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            MetricSampler(bucket=0)

"""Pipeline models at reduced scale: structure, conservation, ordering.

These tests run the three pipelines on a few GB of simulated data (seconds
of wall time) and verify structural invariants; the full paper-scale runs
and figure-shape assertions live in the benchmark harness.
"""

import pytest

from repro.simulator.calibration import (
    GB,
    PER_USER_COUNT,
    SESSIONIZATION,
    ClusterSpec,
)
from repro.simulator.pipelines import (
    HadoopPipeline,
    HOPPipeline,
    HOPSimConfig,
    OnePassPipeline,
)

SMALL = SESSIONIZATION.scaled(8 * GB)
SMALL_COUNT = PER_USER_COUNT.scaled(8 * GB)
SPEC = ClusterSpec(reducers=8)


class TestHadoopPipeline:
    def test_completes_with_all_phases(self):
        r = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert r.makespan > 0
        assert r.task_log.phase_spans("map")
        assert r.task_log.phase_spans("shuffle")
        assert r.task_log.phase_spans("reduce")

    def test_map_task_count_matches_blocks(self):
        r = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        n_blocks = -(-SMALL.input_bytes // SPEC.block_bytes)
        assert len(r.task_log.phase_spans("map")) == n_blocks

    def test_reduce_count_matches_spec(self):
        r = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert len(r.task_log.phase_spans("reduce")) == SPEC.reducers

    def test_byte_conservation(self):
        r = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        expected_out = SMALL.input_bytes * SMALL.map_output_ratio
        assert r.totals.map_output_bytes == pytest.approx(expected_out, rel=1e-6)
        assert r.totals.shuffle_bytes == pytest.approx(expected_out, rel=1e-6)
        assert r.totals.output_bytes == pytest.approx(
            SMALL.input_bytes * SMALL.reduce_output_ratio, rel=1e-6
        )

    def test_reduce_starts_after_every_map(self):
        r = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        map_end = r.phase_window("map")[1]
        reduce_start = r.phase_window("reduce")[0]
        assert reduce_start >= map_end - 1e-6  # blocking boundary

    def test_combiner_workload_has_no_reduce_spill(self):
        r = HadoopPipeline(SPEC, SMALL_COUNT, metric_bucket=5.0).run()
        assert r.totals.reduce_spill_bytes == 0

    def test_sessionization_spills(self):
        r = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert r.totals.reduce_spill_bytes > 0

    def test_deterministic(self):
        a = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        b = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert a.makespan == b.makespan
        assert a.totals.merge_passes == b.totals.merge_passes

    def test_ssd_architecture_is_faster(self):
        base = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        ssd = HadoopPipeline(
            ClusterSpec(reducers=8, with_ssd=True), SMALL, metric_bucket=5.0
        ).run()
        assert ssd.makespan < base.makespan

    def test_separate_storage_runs_and_uses_network(self):
        spec = ClusterSpec(reducers=8, storage_nodes=5)
        r = HadoopPipeline(spec, SMALL, metric_bucket=5.0).run()
        assert r.totals.remote_input_bytes == pytest.approx(SMALL.input_bytes, rel=1e-6)


class TestHOPPipeline:
    def test_snapshots_happen_during_map_phase(self):
        hop = HOPSimConfig(snapshot_fractions=(0.25, 0.5, 0.75))
        r = HOPPipeline(SPEC, SMALL, hop=hop, metric_bucket=5.0).run()
        map_end = r.phase_window("map")[1]
        snaps = r.extras["snapshots"]
        assert [f for f, _ in snaps] == [0.25, 0.5, 0.75]
        assert all(t <= map_end + 1e-6 for _, t in snaps)

    def test_shuffle_overlaps_map(self):
        r = HOPPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        first_shuffle = r.phase_window("shuffle")[0]
        map_end = r.phase_window("map")[1]
        assert first_shuffle < map_end  # pipelined, not post-map

    def test_finer_granularity_means_more_messages_not_more_speed(self):
        coarse = HOPPipeline(
            SPEC, SMALL, hop=HOPSimConfig(granularity_bytes=16 * 1024 * 1024),
            metric_bucket=5.0,
        ).run()
        fine = HOPPipeline(
            SPEC, SMALL, hop=HOPSimConfig(granularity_bytes=1 * 1024 * 1024),
            metric_bucket=5.0,
        ).run()
        assert fine.totals.network_messages > 8 * coarse.totals.network_messages
        # Eager fine-grained pushing buys no completion-time improvement.
        assert fine.makespan >= 0.97 * coarse.makespan

    def test_snapshot_read_overhead_counted(self):
        r = HOPPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert r.totals.snapshot_read_bytes > 0

    def test_hop_not_faster_than_stock(self):
        stock = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        hop = HOPPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert hop.makespan >= 0.95 * stock.makespan


class TestOnePassPipeline:
    def test_no_merge_phase(self):
        r = OnePassPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert r.task_log.phase_spans("merge") == []

    def test_faster_than_sort_merge(self):
        sm = HadoopPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        op = OnePassPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        assert op.makespan < sm.makespan

    def test_fitting_states_never_spill(self):
        r = OnePassPipeline(SPEC, SMALL_COUNT, metric_bucket=5.0).run()
        assert r.totals.reduce_spill_bytes == 0

    def test_non_fitting_states_spill_once(self):
        r = OnePassPipeline(SPEC, SMALL, metric_bucket=5.0).run()
        expected = SMALL.input_bytes * SMALL.map_output_ratio
        assert r.totals.reduce_spill_bytes == pytest.approx(expected, rel=1e-6)

    def test_reduce_finishes_promptly_after_maps(self):
        r = OnePassPipeline(SPEC, SMALL_COUNT, metric_bucket=5.0).run()
        map_end = r.phase_window("map")[1]
        # For a counting workload the tail after maps is a tiny fraction
        # of the job (no blocking merge).
        assert r.makespan - map_end < 0.35 * r.makespan

"""Simulated node and cluster topologies."""

from repro.simulator.calibration import ClusterSpec
from repro.simulator.cluster import SimCluster
from repro.simulator.events import Simulator


class TestTopologies:
    def test_colocated_default(self):
        c = SimCluster(Simulator(), ClusterSpec(nodes=4))
        assert len(c.nodes) == 4
        assert len(c.compute_nodes) == 4
        assert len(c.storage_nodes) == 4
        assert not c.separate_storage
        for node in c.nodes:
            assert node.intermediate_disk is node.hdfs_disk

    def test_ssd_splits_intermediate(self):
        c = SimCluster(Simulator(), ClusterSpec(nodes=2, with_ssd=True))
        for node in c.compute_nodes:
            assert node.ssd is not None
            assert node.intermediate_disk is node.ssd
            assert node.hdfs_disk is node.hdd

    def test_separate_storage_partition(self):
        c = SimCluster(Simulator(), ClusterSpec(nodes=10, storage_nodes=5))
        assert c.separate_storage
        assert len(c.storage_nodes) == 5
        assert len(c.compute_nodes) == 5
        assert not set(n.name for n in c.storage_nodes) & set(
            n.name for n in c.compute_nodes
        )

    def test_block_placement_round_robin(self):
        c = SimCluster(Simulator(), ClusterSpec(nodes=3))
        homes = [c.storage_node_for_block(i).name for i in range(6)]
        assert homes[:3] == homes[3:]
        assert len(set(homes)) == 3

    def test_reducer_placement_on_compute_only(self):
        c = SimCluster(Simulator(), ClusterSpec(nodes=4, storage_nodes=2))
        for i in range(8):
            assert c.reducer_node(i).is_compute

    def test_node_resources_exist(self):
        c = SimCluster(Simulator(), ClusterSpec(nodes=1, cores_per_node=4))
        node = c.nodes[0]
        assert node.cpu.servers == 4
        assert node.nic_in is not node.nic_out
        assert node.disks() == [node.hdd]

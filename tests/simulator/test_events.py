"""Simulation kernel: ordering, processes, gates, mailboxes."""

import pytest

from repro.simulator.events import Gate, Mailbox, Simulator, Timeout


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.after(2.0, lambda: fired.append("b"))
        sim.after(1.0, lambda: fired.append("a"))
        sim.after(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        fired = []
        for tag in "xyz":
            sim.after(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["x", "y", "z"]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.after(1.0, lambda: fired.append(1))
        sim.after(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.after(1.0, lambda: sim.at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.after(-1, lambda: None)


class TestProcesses:
    def test_timeout_sequencing(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield Timeout(2.0)
            trace.append(("mid", sim.now))
            yield Timeout(3.0)
            trace.append(("end", sim.now))

        sim.spawn(proc())
        sim.run()
        assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            Timeout(-1)

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def proc(name, step):
            for i in range(3):
                yield Timeout(step)
                trace.append((name, sim.now))

        sim.spawn(proc("fast", 1.0))
        sim.spawn(proc("slow", 2.0))
        sim.run()
        # At t=2.0 both fire; "slow" scheduled its timeout first (at t=0)
        # so insertion order puts it ahead of "fast"'s (scheduled at t=1).
        assert trace == [
            ("fast", 1.0),
            ("slow", 2.0),
            ("fast", 2.0),
            ("fast", 3.0),
            ("slow", 4.0),
            ("slow", 6.0),
        ]


class TestGate:
    def test_waiters_released_on_fire(self):
        sim = Simulator()
        gate = Gate("g")
        trace = []

        def waiter(name):
            yield gate.wait()
            trace.append((name, sim.now))

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.after(4.0, gate.fire)
        sim.run()
        assert trace == [("a", 4.0), ("b", 4.0)]

    def test_wait_after_fire_passes_through(self):
        sim = Simulator()
        gate = Gate()
        gate.fire()
        trace = []

        def waiter():
            yield gate.wait()
            trace.append(sim.now)

        sim.spawn(waiter())
        sim.run()
        assert trace == [0.0]

    def test_double_fire_is_noop(self):
        gate = Gate()
        gate.fire()
        gate.fire()
        assert gate.fired


class TestMailbox:
    def test_fifo_delivery(self):
        sim = Simulator()
        box = Mailbox()
        got = []

        def consumer():
            for _ in range(3):
                item = yield box.get()
                got.append((item, sim.now))

        sim.spawn(consumer())
        sim.after(1.0, lambda: box.put("a"))
        sim.after(1.0, lambda: box.put("b"))
        sim.after(2.0, lambda: box.put("c"))
        sim.run()
        assert [i for i, _ in got] == ["a", "b", "c"]
        assert got[0][1] == 1.0
        assert got[2][1] == 2.0

    def test_close_delivers_none_after_drain(self):
        sim = Simulator()
        box = Mailbox()
        got = []

        def consumer():
            while True:
                item = yield box.get()
                if item is None:
                    got.append("closed")
                    return
                got.append(item)

        box.put(1)
        box.put(2)
        sim.spawn(consumer())
        sim.after(1.0, box.close)
        sim.run()
        assert got == [1, 2, "closed"]

    def test_put_after_close_rejected(self):
        box = Mailbox("b")
        box.close()
        with pytest.raises(RuntimeError):
            box.put(1)

    def test_len_tracks_backlog(self):
        box = Mailbox()
        assert len(box) == 0
        box.put(1)
        box.put(2)
        assert len(box) == 2

    def test_compaction_preserves_order(self):
        sim = Simulator()
        box = Mailbox()
        for i in range(500):
            box.put(i)
        got = []

        def consumer():
            for _ in range(500):
                got.append((yield box.get()))

        sim.spawn(consumer())
        sim.run()
        assert got == list(range(500))

"""Resource banks: queueing, service times, the disk interleaving model."""

import pytest

from repro.simulator.events import Simulator
from repro.simulator.resources import CpuBank, Disk, Nic, Use

MB = 1024 * 1024


def run_uses(resource, uses):
    """Drive one process per use; return completion times in issue order."""
    sim = resource.sim
    done: dict[int, float] = {}

    def proc(i, use):
        yield use
        done[i] = sim.now

    for i, use in enumerate(uses):
        sim.spawn(proc(i, use))
    sim.run()
    return [done[i] for i in range(len(uses))]


class TestCpuBank:
    def test_parallel_up_to_servers(self):
        sim = Simulator()
        cpu = CpuBank(sim, "cpu", servers=2)
        times = run_uses(cpu, [Use(cpu, 5.0), Use(cpu, 5.0), Use(cpu, 5.0)])
        assert times == [5.0, 5.0, 10.0]

    def test_busy_time_accumulates(self):
        sim = Simulator()
        cpu = CpuBank(sim, "cpu", servers=1)
        run_uses(cpu, [Use(cpu, 2.0), Use(cpu, 3.0)])
        assert cpu.total_busy_time == pytest.approx(5.0)
        assert cpu.served == 2
        assert len(cpu.intervals) == 2

    def test_fcfs_order(self):
        sim = Simulator()
        cpu = CpuBank(sim, "cpu", servers=1)
        times = run_uses(cpu, [Use(cpu, 1.0), Use(cpu, 2.0), Use(cpu, 0.5)])
        assert times == [1.0, 3.0, 3.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuBank(Simulator(), "cpu", servers=0)


class TestDisk:
    def make(self, bandwidth=100 * MB, seek=0.01, io_chunk=MB):
        sim = Simulator()
        return Disk(sim, "d", bandwidth=bandwidth, seek_time=seek, io_chunk=io_chunk)

    def test_lone_sequential_stream_full_bandwidth(self):
        disk = self.make()
        t1 = run_uses(disk, [Use(disk, 100 * MB, stream="s")])
        # first request pays interleave (stream switch from None)
        disk2 = self.make()
        times = run_uses(
            disk2, [Use(disk2, 100 * MB, stream="s"), Use(disk2, 100 * MB, stream="s")]
        )
        # second same-stream request with empty queue: bandwidth only
        assert times[1] - times[0] == pytest.approx(1.0)

    def test_stream_switch_pays_per_extent_seeks(self):
        disk = self.make(seek=0.01, io_chunk=MB)
        times = run_uses(
            disk,
            [Use(disk, 10 * MB, stream="a"), Use(disk, 10 * MB, stream="b")],
        )
        # second request: 0.1s transfer + 10 extents * 0.01s seeks
        assert times[1] - times[0] == pytest.approx(0.1 + 0.1)

    def test_back_to_back_same_stream_stays_sequential(self):
        # A same-stream request starting with an empty queue is a pure
        # sequential continuation: bandwidth only.
        disk = self.make(seek=0.01)
        times = run_uses(
            disk,
            [Use(disk, 10 * MB, stream="a"), Use(disk, 10 * MB, stream="a")],
        )
        assert times[1] - times[0] == pytest.approx(0.1)

    def test_contended_same_stream_interleaves(self):
        # With a third stream waiting in the queue, even a same-stream
        # request is served as interleaved extents.
        disk = self.make(seek=0.01)
        times = run_uses(
            disk,
            [
                Use(disk, 10 * MB, stream="a"),
                Use(disk, 10 * MB, stream="a"),  # served while "b" queues
                Use(disk, 10 * MB, stream="b"),
            ],
        )
        assert times[1] - times[0] == pytest.approx(0.2)

    def test_bytes_recorded(self):
        disk = self.make()
        run_uses(disk, [Use(disk, 5 * MB, stream="a", tag="read")])
        assert disk.intervals[0].nbytes == 5 * MB
        assert disk.intervals[0].tag == "read"

    def test_effective_bandwidth_halves_under_interleave(self):
        # 90 MB/s spindle, 12 ms seek, 1 MB extents -> ~43 MB/s interleaved.
        disk = self.make(bandwidth=90 * MB, seek=0.012)
        times = run_uses(
            disk,
            [Use(disk, 90 * MB, stream="a"), Use(disk, 90 * MB, stream="b")],
        )
        duration = times[1] - times[0]
        effective = 90 * MB / duration / MB
        assert 40 < effective < 50

    def test_validation(self):
        with pytest.raises(ValueError):
            Disk(Simulator(), "d", bandwidth=0, seek_time=0.01)
        with pytest.raises(ValueError):
            Disk(Simulator(), "d", bandwidth=1, seek_time=0.01, io_chunk=0)


class TestNic:
    def test_transfer_time_includes_overhead(self):
        sim = Simulator()
        nic = Nic(sim, "n", bandwidth=100 * MB, per_message_overhead=0.001)
        times = run_uses(nic, [Use(nic, 100 * MB)])
        assert times[0] == pytest.approx(1.001)

    def test_messages_serialize(self):
        sim = Simulator()
        nic = Nic(sim, "n", bandwidth=100 * MB, per_message_overhead=0.0)
        times = run_uses(nic, [Use(nic, 50 * MB), Use(nic, 50 * MB)])
        assert times == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_fine_granularity_costs_more(self):
        def total_time(n_messages):
            sim = Simulator()
            nic = Nic(sim, "n", bandwidth=100 * MB, per_message_overhead=0.005)
            size = 100 * MB // n_messages
            return run_uses(nic, [Use(nic, size) for _ in range(n_messages)])[-1]

        assert total_time(100) > total_time(4)

"""The CFG layer's substrate: builder, dominance, execution contexts.

These tests pin the graph shapes the REP20x rules depend on — exception
edges, the once-built ``finally`` fan-out, acyclic-forward reachability
— plus the worker/coordinator closure and the whole-program blocking
and lock-order fact tables.
"""

import ast
import textwrap

from repro.lint import LintConfig
from repro.lint.cfg import (
    build_cfg,
    dominators,
    function_cfgs,
    postdominators,
)
from repro.lint.cfg.context import blocking_facts, lock_facts
from repro.lint.core import LintContext, LintModule

ENGINE_MOD = "repro/core/fixture.py"
KERNEL_MOD = "repro/exec/kernels.py"
EXEC_MOD = "repro/exec/base.py"


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn)


def block_for(cfg, predicate):
    for block in cfg.blocks:
        if block.node is not None and predicate(block.node):
            return block
    raise AssertionError("no block matched")


def assign_block(cfg, name):
    return block_for(
        cfg,
        lambda n: isinstance(n, ast.Assign)
        and isinstance(n.targets[0], ast.Name)
        and n.targets[0].id == name,
    )


class TestBuilder:
    def test_linear_function_chains_through_to_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                a = x
                b = a
                return b
            """
        )
        a = assign_block(cfg, "a")
        b = assign_block(cfg, "b")
        assert (b.index, "flow") in a.succs
        ret = block_for(cfg, lambda n: isinstance(n, ast.Return))
        assert (cfg.exit, "return") in ret.succs

    def test_branch_edges_and_join(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )
        head = block_for(cfg, lambda n: isinstance(n, ast.If))
        kinds = sorted(kind for _i, kind in head.succs)
        assert kinds == ["false", "true"]
        c = assign_block(cfg, "c")
        # Both arms reach the statement after the join.
        reach = cfg.reachable([head.index], forward=True)
        assert c.index in reach

    def test_loop_back_edge_and_acyclic_reachability(self):
        cfg = cfg_of(
            """
            def f(xs):
                total = 0
                for x in xs:
                    total = total + x
                done = 1
            """
        )
        # Two 'total' assigns; take the one inside the loop.
        loop = block_for(cfg, lambda n: isinstance(n, ast.For))
        inner = next(
            b
            for b in cfg.blocks
            if isinstance(b.node, ast.Assign) and (loop.index, "true") in b.preds
        )
        assert (loop.index, "back") in inner.succs
        # Acyclic-forward from the body does not wrap around the loop —
        # without a break, even the code after the loop is only reachable
        # through the back edge.
        ahead = cfg.reachable([inner.index], forward=True, include_back=False)
        assert loop.index not in ahead
        assert assign_block(cfg, "done").index not in ahead
        full = cfg.reachable([inner.index], forward=True)
        assert assign_block(cfg, "done").index in full

    def test_call_gets_exception_edge_to_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                y = parse(x)
                return y
            """
        )
        y = assign_block(cfg, "y")
        assert (cfg.exit, "exc") in y.succs

    def test_try_except_routes_body_raises_to_handler(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    y = parse(x)
                except ValueError:
                    y = None
                return y
            """
        )
        y = assign_block(cfg, "y")
        handler = block_for(cfg, lambda n: isinstance(n, ast.ExceptHandler))
        exc_targets = [i for i, kind in y.succs if kind == "exc"]
        assert exc_targets, "body call should have an exception edge"
        reach = cfg.reachable(exc_targets, forward=True, include_starts=True)
        assert handler.index in reach

    def test_finally_is_built_once_and_fans_out(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    y = parse(x)
                    return y
                finally:
                    cleanup()
            """
        )
        fin_calls = [
            b
            for b in cfg.blocks
            if b.node is not None
            and isinstance(b.node, ast.Expr)
            and isinstance(b.node.value, ast.Call)
        ]
        assert len(fin_calls) == 1, "finally body must be built exactly once"
        fin = fin_calls[0]
        kinds = {kind for _i, kind in fin.succs}
        # Fan-out: the finally continues to the return target and carries
        # the in-flight exception outward.
        assert "return" in kinds
        assert "exc" in kinds
        # The return inside try routes *through* the finally.
        ret = block_for(cfg, lambda n: isinstance(n, ast.Return))
        assert any(
            cfg.blocks[i].kind == "finally" for i, _k in ret.succs
        ) or any(i == fin.index for i, _k in ret.succs)

    def test_break_in_try_reaches_loop_exit_through_finally(self):
        cfg = cfg_of(
            """
            def f(xs):
                for x in xs:
                    try:
                        check(x)
                        break
                    finally:
                        cleanup()
                done = 1
            """
        )
        brk = block_for(cfg, lambda n: isinstance(n, ast.Break))
        done = assign_block(cfg, "done")
        reach = cfg.reachable([brk.index], forward=True)
        assert done.index in reach

    def test_live_excludes_code_after_return(self):
        cfg = cfg_of(
            """
            def f(x):
                return x
                dead = 1
            """
        )
        dead = assign_block(cfg, "dead")
        assert dead.index not in cfg.live()

    def test_function_cfgs_covers_methods(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def top(): pass

                class C:
                    def m(self): pass
                """
            )
        )
        names = [qual for qual, _fn, _cfg in function_cfgs(tree)]
        assert names == ["top", "C.m"]


class TestDominance:
    def test_diamond(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                c = 3
            """
        )
        head = block_for(cfg, lambda n: isinstance(n, ast.If))
        a = assign_block(cfg, "a")
        c = assign_block(cfg, "c")
        dom = dominators(cfg)
        pdom = postdominators(cfg)
        assert head.index in dom[c.index]
        assert a.index not in dom[c.index]
        assert c.index in pdom[a.index]


# -- execution contexts -------------------------------------------------------

KERNEL_SRC = textwrap.dedent(
    """
    def wordcount_kernel(ctx, spec):
        return shared_tally(spec)

    def shared_tally(x):
        return x

    class MapSpec:
        pass

    register_kernel("wordcount", wordcount_kernel)
    """
)

EXEC_SRC = textwrap.dedent(
    """
    def _invoke(spec):
        return spec

    def run(pool, spec):
        return pool.submit(_invoke, spec)
    """
)


def context_of(extra_modules=None, **cfg_kw):
    modules = {KERNEL_MOD: KERNEL_SRC, EXEC_MOD: EXEC_SRC}
    modules.update(extra_modules or {})
    config = LintConfig(
        use_cache=False,
        program_modules_override=modules,
        kernel_source_override=KERNEL_SRC,
        executor_source_override=EXEC_SRC,
        **cfg_kw,
    )
    ctx = LintContext(config)
    facts = ctx.program.facts
    return ctx, facts, ctx.exec_contexts(facts)


class TestExecContexts:
    def test_registered_kernel_and_submitted_fn_are_worker_scope(self):
        _ctx, _facts, cx = context_of()
        assert cx.classify(f"{KERNEL_MOD}::wordcount_kernel") == "kernel"
        assert cx.classify(f"{EXEC_MOD}::_invoke") == "kernel"

    def test_coordinator_scope_and_shared_helpers(self):
        engine = textwrap.dedent(
            """
            from repro.exec.kernels import shared_tally

            def schedule():
                return shared_tally(1)
            """
        )
        _ctx, _facts, cx = context_of({ENGINE_MOD: engine})
        assert cx.classify(f"{ENGINE_MOD}::schedule") == "coordinator"
        # Called from the kernel and from the scheduler: both.
        assert cx.classify(f"{KERNEL_MOD}::shared_tally") == "both"
        assert cx.classify("repro/nowhere.py::ghost") is None


class TestFactTables:
    def test_blocking_facts_chain(self):
        engine = textwrap.dedent(
            """
            import time
            from repro.core.util import backoff

            def nap():
                time.sleep(1)

            def outer():
                backoff()
            """
        )
        util = textwrap.dedent(
            """
            import time

            def backoff():
                time.sleep(2)
            """
        )
        ctx, facts, _cx = context_of(
            {ENGINE_MOD: engine, "repro/core/util.py": util}
        )
        table = blocking_facts(facts, ctx.config.blocking_calls)
        direct = table[f"{ENGINE_MOD}::nap"]
        assert direct[0] == "time.sleep" and direct[1] == ()
        via = table[f"{ENGINE_MOD}::outer"]
        assert via[0] == "time.sleep"
        assert via[1] == ("repro/core/util.py::backoff",)

    def test_lock_facts_detects_opposite_order_cycle(self):
        engine = textwrap.dedent(
            """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def one():
                with A:
                    with B:
                        pass

            def two():
                with B:
                    with A:
                        pass
            """
        )
        _ctx, facts, _cx = context_of({ENGINE_MOD: engine})
        edges, cycles = lock_facts(facts)
        a = "repro.core.fixture.A"
        b = "repro.core.fixture.B"
        assert (a, b) in edges and (b, a) in edges
        assert cycles and set(cycles[0]) == {a, b}

    def test_lock_facts_consistent_order_has_no_cycle(self):
        engine = textwrap.dedent(
            """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def one():
                with A:
                    with B:
                        pass

            def two():
                with A:
                    with B:
                        pass
            """
        )
        _ctx, facts, _cx = context_of({ENGINE_MOD: engine})
        _edges, cycles = lock_facts(facts)
        assert cycles == []

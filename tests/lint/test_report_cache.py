"""Reporter and cache-invalidation satellites: SARIF 2.1.0 output, the
``--update-baseline`` drift report, ``--stats`` timings, and the summary
store's rule-set fingerprint."""

import json
import subprocess
import sys
from pathlib import Path

import repro.lint.rules as rules_mod
from repro.lint.core import Finding
from repro.lint.dataflow.cache import SummaryCache, ruleset_fingerprint
from repro.lint.dataflow.summary import ModuleSummary
from repro.lint.report import SARIF_SCHEMA, format_findings, to_sarif

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
ENV = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}


def run_cli(*argv, cwd=ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=ENV,
    )


FINDINGS = [
    Finding("REP201", "src/repro/exec/base.py", 10, 5, "race on '_X'"),
    Finding("REP999", "src/weird.py", 1, 0, "rule unknown to the catalogue"),
]


class TestSarif:
    def test_document_shape(self):
        doc = json.loads(to_sarif(FINDINGS))
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"

    def test_catalogue_covers_every_layer(self):
        doc = json.loads(to_sarif([]))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == [r.id for r in rules_mod.ALL_RULES]
        for r in rules:
            assert r["shortDescription"]["text"]
            assert r["defaultConfiguration"] == {"level": "error"}
        assert {"REP201", "REP202", "REP203", "REP204", "REP205", "REP206"} <= set(ids)

    def test_results_carry_locations_and_rule_index(self):
        doc = json.loads(to_sarif(FINDINGS))
        run = doc["runs"][0]
        known, unknown = run["results"]
        loc = known["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/exec/base.py"
        assert loc["region"] == {"startLine": 10, "startColumn": 5}
        catalogue = run["tool"]["driver"]["rules"]
        assert catalogue[known["ruleIndex"]]["id"] == "REP201"
        # Unknown rules still serialise (no index), and col 0 clamps to 1.
        assert "ruleIndex" not in unknown
        assert unknown["locations"][0]["physicalLocation"]["region"][
            "startColumn"
        ] == 1

    def test_cli_emits_sarif_for_a_violation(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "fx.py").write_text("import time\nx = time.time()\n")
        proc = run_cli(str(bad / "fx.py"), "--format", "sarif", "--no-baseline")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "REP001" for r in results)


class TestBaselineUpdate:
    def test_update_baseline_reports_drift(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        target = bad / "fx.py"
        target.write_text("import time\nx = time.time()\n")
        baseline = tmp_path / "baseline.json"

        first = run_cli(str(target), "--update-baseline", "--baseline", str(baseline))
        assert first.returncode == 0, first.stdout + first.stderr
        assert "1 finding(s)" in first.stdout
        assert "(1 added, 0 removed)" in first.stdout

        target.write_text("x = 1\n")
        second = run_cli(str(target), "--update-baseline", "--baseline", str(baseline))
        assert second.returncode == 0
        assert "(0 added, 1 removed)" in second.stdout
        assert json.loads(baseline.read_text())["findings"] == []

    def test_update_is_deterministic(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        target = bad / "fx.py"
        target.write_text("import time\na = time.time()\nb = time.time()\n")
        baseline = tmp_path / "baseline.json"
        run_cli(str(target), "--update-baseline", "--baseline", str(baseline))
        once = baseline.read_text()
        run_cli(str(target), "--update-baseline", "--baseline", str(baseline))
        assert baseline.read_text() == once


class TestStats:
    def test_json_timings_key_is_opt_in(self):
        assert "timings" not in json.loads(format_findings([], "json"))
        payload = json.loads(format_findings([], "json", timings={"REP001": 0.25}))
        assert payload["timings"] == {"REP001": 0.25}

    def test_cli_stats_lists_every_rule(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "core"
        mod.mkdir(parents=True)
        (mod / "fx.py").write_text("x = 1\n")
        proc = run_cli(
            str(mod / "fx.py"), "--stats", "--format", "json", "--no-cache"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        timings = json.loads(proc.stdout)["timings"]
        assert set(timings) == {r.id for r in rules_mod.ALL_RULES}
        assert all(t >= 0 for t in timings.values())


class TestCacheFingerprint:
    def test_rule_change_busts_the_store(self, tmp_path, monkeypatch):
        store = tmp_path / "cache.json"
        cache = SummaryCache(store)
        cache.put("repro/core/x.py", "d" * 64, ModuleSummary("repro/core/x.py"))
        cache.save()
        assert store.exists()

        # Same rule set: the entry survives a reload.
        warm = SummaryCache(store)
        assert warm.get("repro/core/x.py", "d" * 64) is not None

        class FakeRule:
            id = "REP998"
            title = "synthetic rule for fingerprint test"

        before = ruleset_fingerprint()
        monkeypatch.setattr(
            rules_mod, "ALL_RULES", (*rules_mod.ALL_RULES, FakeRule())
        )
        assert ruleset_fingerprint() != before

        # Changed rule set: the on-disk entries are discarded wholesale.
        busted = SummaryCache(store)
        assert busted.get("repro/core/x.py", "d" * 64) is None

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache.json")
        cache.put("repro/core/x.py", "d" * 64, ModuleSummary("repro/core/x.py"))
        assert cache.get("repro/core/x.py", "e" * 64) is None
        assert cache.misses == 1


class TestChangedOnlyRenames:
    """``--changed-only`` must follow git renames to the *new* path."""

    def _git(self, *argv, cwd):
        subprocess.run(
            ["git", *argv],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                "PATH": "/usr/bin:/bin",
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(cwd),
            },
        )

    def test_renamed_file_resolves_to_destination(self, tmp_path):
        from repro.lint.cli import changed_py_files

        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod_a.py").write_text("x = 1\n" * 30)
        self._git("init", "-q", cwd=tmp_path)
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-q", "-m", "seed", cwd=tmp_path)
        self._git("mv", "pkg/mod_a.py", "pkg/mod_b.py", cwd=tmp_path)
        self._git("commit", "-q", "-m", "rename", cwd=tmp_path)

        changed = changed_py_files(tmp_path, "HEAD~1")
        assert changed == [str(pkg / "mod_b.py")]

    def test_rename_with_edit_and_plain_edit(self, tmp_path):
        from repro.lint.cli import changed_py_files

        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod_a.py").write_text("x = 1\n" * 30)
        (pkg / "other.py").write_text("y = 2\n")
        self._git("init", "-q", cwd=tmp_path)
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-q", "-m", "seed", cwd=tmp_path)
        # Rename + small edit (an R<similarity> status, not A/D)
        self._git("mv", "pkg/mod_a.py", "pkg/mod_b.py", cwd=tmp_path)
        (pkg / "mod_b.py").write_text("x = 1\n" * 30 + "z = 3\n")
        (pkg / "other.py").write_text("y = 4\n")
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-q", "-m", "rename+edit", cwd=tmp_path)

        changed = changed_py_files(tmp_path, "HEAD~1")
        assert changed == [str(pkg / "mod_b.py"), str(pkg / "other.py")]

    def test_deleted_file_not_reported(self, tmp_path):
        from repro.lint.cli import changed_py_files

        (tmp_path / "gone.py").write_text("x = 1\n")
        (tmp_path / "kept.py").write_text("y = 1\n")
        self._git("init", "-q", cwd=tmp_path)
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-q", "-m", "seed", cwd=tmp_path)
        (tmp_path / "gone.py").unlink()
        (tmp_path / "kept.py").write_text("y = 2\n")
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-q", "-m", "delete", cwd=tmp_path)

        changed = changed_py_files(tmp_path, "HEAD~1")
        assert changed == [str(tmp_path / "kept.py")]


class TestSharedCatalogue:
    """The SARIF writer is shared by reprolint and reprosan."""

    def test_full_catalogue_extends_the_lint_catalogue(self):
        from repro.lint.sarif import full_catalogue, rule_catalogue
        from repro.san.report import DETECTORS

        full = full_catalogue()
        ids = [r["id"] for r in full]
        assert len(set(ids)) == len(ids)
        # Every dynamic detector, then every static rule.
        assert set(ids) == {d.id for d in DETECTORS} | {
            r.id for r in rules_mod.ALL_RULES
        }
        assert ids[len(DETECTORS):] == [r["id"] for r in rule_catalogue()]

    def test_detector_entries_name_their_static_rules(self):
        from repro.lint.sarif import full_catalogue
        from repro.san.report import DETECTORS

        by_id = {r["id"]: r for r in full_catalogue()}
        for d in DETECTORS:
            entry = by_id[d.id]
            assert entry["properties"]["staticRules"] == list(d.static_rules)
            assert entry["title"] == d.title

    def test_shared_document_schema(self):
        from repro.lint.sarif import sarif_document, sarif_result, to_sarif_json

        doc = json.loads(
            to_sarif_json(
                sarif_document(
                    "anytool",
                    [{"id": "X1", "name": "XRule", "title": "t"}],
                    [sarif_result("X1", "m", "a.py", 3, rule_index=0)],
                )
            )
        )
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "anytool"
        assert run["columnKind"] == "utf16CodeUnits"
        (result,) = run["results"]
        assert result["ruleIndex"] == 0

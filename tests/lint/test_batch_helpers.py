"""Reprolint must see *through* the batch helper modules.

The batch kernel path routes hot-loop work through helper modules
(``repro.io.batch``-style fanout/sort/merge functions).  That indirection
must not blind the analysers: REP002 still closes over module-local batch
helpers a kernel calls, and REP101's interprocedural taint still follows
a nondeterministic source through a batch helper in another module.  The
clean helpers — pure fanout, stable sorts, concat-merge — must produce
no false positives, or the batch path would need a baseline entry
(``lint-baseline.json`` stays empty).
"""

import textwrap

from repro.lint import LintConfig, lint_source

ENGINE_MOD = "repro/core/fixture.py"
KERNEL_MOD = "repro/exec/kernels.py"

#: A stand-in for ``repro.io.batch``: the real helpers' shapes, plus two
#: deliberately tainted variants the rules must catch through the hop.
BATCH_MOD = "repro/io/batchfix.py"
BATCH_SRC = textwrap.dedent(
    """
    import time
    from operator import itemgetter

    _FIRST = itemgetter(0)

    def sort_bucket(bucket):
        bucket.sort(key=_FIRST)
        return bucket

    def fanout_pairs(pairs, partitioner, num_partitions):
        buckets = [[] for _ in range(num_partitions)]
        appends = [b.append for b in buckets]
        for pair in pairs:
            appends[partitioner(pair[0], num_partitions)](pair)
        return buckets

    def merge_segments(segments):
        out = []
        for seg in segments:
            out.extend(seg)
        out.sort(key=_FIRST)
        return out

    def stamp_batch(pairs):
        return (time.time(), pairs)

    def distinct_keys(pairs):
        return list({k for k, _v in pairs})
    """
)


def lint(source, *, modpath=ENGINE_MOD):
    config = LintConfig(
        use_cache=False,
        program_modules_override={BATCH_MOD: BATCH_SRC},
        kernel_source_override="class FakeSpec:\n    pass\n",
        span_names_override=frozenset({"map", "sort"}),
        event_names_override=frozenset({"node.crash"}),
    )
    return lint_source(textwrap.dedent(source), modpath=modpath, config=config)


def rules_of(findings):
    return [f.rule for f in findings]


class TestREP101ThroughBatchHelpers:
    def test_nondet_source_inside_batch_helper_flagged(self):
        """The engine never calls ``time.time`` itself — the taint enters
        through the batch helper and must still surface, with the helper
        named in the witness chain."""
        findings = lint(
            """
            from repro.io import batchfix

            def emit_run(pairs):
                return batchfix.stamp_batch(pairs)
            """
        )
        assert rules_of(findings) == ["REP101"]
        assert "time.time" in findings[0].message
        assert "stamp_batch" in findings[0].message

    def test_hash_order_through_batch_helper_flagged(self):
        findings = lint(
            """
            from repro.io import batchfix

            def key_column(pairs):
                return batchfix.distinct_keys(pairs)
            """
        )
        assert rules_of(findings) == ["REP101"]

    def test_sorted_absorbs_batch_helper_hash_order(self):
        findings = lint(
            """
            from repro.io import batchfix

            def key_column(pairs):
                return sorted(batchfix.distinct_keys(pairs))
            """
        )
        assert findings == []

    def test_clean_batch_helpers_produce_no_findings(self):
        """The real batch-path shape: fanout, per-bucket stable sort,
        concat-and-sort merge.  Deterministic end to end — any finding
        here would force a lint-baseline entry for the batch path."""
        findings = lint(
            """
            from repro.io import batchfix

            def run_batch(pairs, partitioner, n):
                buckets = batchfix.fanout_pairs(pairs, partitioner, n)
                for bucket in buckets:
                    batchfix.sort_bucket(bucket)
                return batchfix.merge_segments(buckets)
            """
        )
        assert findings == []


class TestREP002ThroughBatchHelpers:
    def kernel_lint(self, source):
        src = textwrap.dedent(source)
        return lint_source(
            src,
            modpath=KERNEL_MOD,
            config=LintConfig(use_cache=False, kernel_source_override=src),
        )

    def test_impure_module_local_batch_helper_flagged(self):
        """A kernel delegating its per-batch loop to a module-local helper
        must not launder impurity through it: REP002 closes over the
        helper and reports the ``open`` at the bottom."""
        findings = self.kernel_lint(
            """
            def _emit_buckets(buckets):
                for bucket in buckets:
                    bucket.sort()
                open("/tmp/spill", "wb").write(repr(buckets).encode())

            def batch_map_kernel(ctx, spec):
                buckets = [[], []]
                for key, value in spec.pairs:
                    buckets[hash(key) % 2].append((key, value))
                _emit_buckets(buckets)
                return buckets

            register_kernel("batch-map", batch_map_kernel)
            """
        )
        assert set(rules_of(findings)) == {"REP002"}
        assert "open()" in " ".join(f.message for f in findings)

    def test_clean_batch_kernel_passes(self):
        findings = self.kernel_lint(
            """
            def _sort_buckets(buckets):
                for bucket in buckets:
                    bucket.sort()
                return buckets

            def batch_map_kernel(ctx, spec):
                buckets = [[], []]
                for key, value in spec.pairs:
                    buckets[0].append((key, value))
                return _sort_buckets(buckets)

            register_kernel("batch-map", batch_map_kernel)
            """
        )
        assert findings == []

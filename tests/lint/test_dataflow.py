"""The interprocedural layer: summaries, cache, fixpoint, REP101..REP105.

Every REP10x rule is demonstrated with at least one true positive the
per-file rules cannot catch (multi-hop flows) and at least one
false-positive guard (seeded RNG, ``sorted(...)``, context managers,
ownership transfer).  Fixture programs are injected hermetically via
``LintConfig.program_modules_override`` so no test depends on the real
tree's contents.
"""

import subprocess
import textwrap

from repro.lint import LintConfig, lint_source
from repro.lint.core import LintContext, LintModule
from repro.lint.dataflow import (
    SummaryCache,
    SummaryOptions,
    build_program,
    clear_program_memo,
    summarize_module,
)
from repro.lint.dataflow.cache import content_digest

ENGINE_MOD = "repro/core/fixture.py"
KERNEL_MOD = "repro/exec/kernels.py"

#: Helper module every fixture program shares.
HELPER_MOD = "repro/core/helper.py"
HELPER_SRC = textwrap.dedent(
    """
    import random
    import time

    def now():
        return time.time()

    def two_hop():
        return now()

    def seeded():
        rng = random.Random(7)
        return rng.random()

    def keys_list(d):
        return list(set(d))

    def make_cb():
        return lambda x: x + 1

    def acquire(path):
        return open(path)

    def attach_cb(spec):
        spec.cb = lambda x: x

    def pure(x):
        return x + 1
    """
)


def lint(source, *, modpath=ENGINE_MOD, modules=None, **cfg_kw):
    over = {HELPER_MOD: HELPER_SRC}
    over.update(modules or {})
    cfg_kw.setdefault("kernel_source_override", "class FakeSpec:\n    pass\n")
    cfg_kw.setdefault("span_names_override", frozenset({"map", "reduce"}))
    cfg_kw.setdefault("event_names_override", frozenset({"node.crash"}))
    config = LintConfig(
        use_cache=False, program_modules_override=over, **cfg_kw
    )
    return lint_source(textwrap.dedent(source), modpath=modpath, config=config)


def rules_of(findings):
    return [f.rule for f in findings]


# -- summaries ----------------------------------------------------------------


def summarize(source, modpath=ENGINE_MOD):
    module = LintModule(textwrap.dedent(source), path=modpath, modpath=modpath)
    return summarize_module(module, SummaryOptions())


class TestSummaries:
    def test_return_taint_and_call_sites(self):
        s = summarize(
            """
            import time
            from repro.core import helper

            def stamp():
                return time.time()

            def relay():
                return helper.two_hop()
            """
        )
        assert ("nondet", "time.time", 6) in s.functions["stamp"].return_taints
        kinds = [t[0] for t in s.functions["relay"].return_taints]
        assert kinds == ["call"]
        assert any(
            c[0] == "repro.core.helper.two_hop"
            for c in s.functions["relay"].calls
        )

    def test_param_attr_write_records_lambda(self):
        s = summarize(
            """
            def attach(spec):
                spec.cb = lambda x: x
            """
        )
        writes = s.functions["attach"].param_attr_writes
        assert writes and writes[0][0] == 0 and writes[0][1] == "unpicklable"

    def test_suppressed_source_not_summarised(self):
        s = summarize(
            """
            import time

            def stamp():
                return time.time()  # reprolint: disable=REP001 -- test clock
            """
        )
        assert s.functions["stamp"].return_taints == []

    def test_with_managed_resource_not_tainted(self):
        s = summarize(
            """
            def read(path):
                with open(path) as f:
                    return f.read()
            """
        )
        kinds = {t[0] for t in s.functions["read"].return_taints}
        assert "resource" not in kinds

    def test_roundtrips_through_json(self):
        s = summarize(HELPER_SRC, modpath=HELPER_MOD)
        from repro.lint.dataflow.summary import ModuleSummary

        assert ModuleSummary.from_json(s.to_json()) == s


# -- the cache: incremental whole-program analysis ----------------------------


def _write_tree(root, files):
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))


class TestSummaryCacheIncremental:
    FILES = {
        "src/repro/core/a.py": """
            import time

            def stamp():
                return time.time()
            """,
        "src/repro/core/b.py": """
            from repro.core import a

            def relay():
                return a.stamp()
            """,
    }

    def config(self, tmp_path):
        return LintConfig(root=tmp_path, cache_path=".reprolint-cache.json")

    def test_warm_run_does_not_reparse_unchanged_modules(self, tmp_path):
        _write_tree(tmp_path, self.FILES)
        clear_program_memo()
        cold = build_program(self.config(tmp_path), use_memo=False)
        assert cold.parsed_modules == 2 and cold.cached_modules == 0
        warm = build_program(self.config(tmp_path), use_memo=False)
        assert warm.parsed_modules == 0 and warm.cached_modules == 2
        assert set(warm.facts.nondet) == set(cold.facts.nondet)

    def test_changed_file_reparsed_alone(self, tmp_path):
        _write_tree(tmp_path, self.FILES)
        clear_program_memo()
        build_program(self.config(tmp_path), use_memo=False)
        (tmp_path / "src/repro/core/b.py").write_text(
            "from repro.core import a\n\ndef relay():\n    return 1\n"
        )
        warm = build_program(self.config(tmp_path), use_memo=False)
        assert warm.parsed_modules == 1 and warm.cached_modules == 1
        assert "repro/core/b.py::relay" not in warm.facts.nondet

    def test_fingerprint_change_discards_store(self, tmp_path):
        path = tmp_path / "store.json"
        cache = SummaryCache(path, fingerprint="opts-v1")
        summary = summarize("def f():\n    return 1\n")
        cache.put(ENGINE_MOD, "digest", summary)
        cache.save()
        reopened = SummaryCache(path, fingerprint="opts-v2")
        assert reopened.get(ENGINE_MOD, "digest") is None

    def test_facts_for_shares_program_facts_when_unchanged(self, tmp_path):
        _write_tree(tmp_path, self.FILES)
        clear_program_memo()
        config = self.config(tmp_path)
        ctx = LintContext(config)
        source = (tmp_path / "src/repro/core/b.py").read_text()
        module = LintModule(source, path="b.py", modpath="repro/core/b.py")
        assert ctx.facts_for(module) is ctx.program.facts
        edited = LintModule(
            source + "\n\nX = 1\n", path="b.py", modpath="repro/core/b.py"
        )
        assert ctx.facts_for(edited) is not ctx.program.facts


# -- REP101: transitive nondeterminism ----------------------------------------


class TestREP101:
    def test_two_hop_wall_clock_flagged(self):
        findings = lint(
            """
            from repro.core import helper

            def run():
                return helper.two_hop()
            """
        )
        assert rules_of(findings) == ["REP101"]
        assert "time.time" in findings[0].message
        assert "two_hop" in findings[0].message  # witness chain

    def test_direct_source_left_to_rep001(self):
        findings = lint(
            """
            import time

            def run():
                return time.time()
            """
        )
        assert rules_of(findings) == ["REP001"]

    def test_seeded_rng_helper_not_flagged(self):
        findings = lint(
            """
            from repro.core import helper

            def run():
                return helper.seeded()
            """
        )
        assert findings == []

    def test_hash_order_return_flagged_but_sorted_absorbs(self):
        flagged = lint(
            """
            from repro.core import helper

            def run(d):
                return helper.keys_list(d)
            """
        )
        assert rules_of(flagged) == ["REP101"]
        clean = lint(
            """
            from repro.core import helper

            def run(d):
                return sorted(helper.keys_list(d))
            """
        )
        assert clean == []

    def test_source_suppression_silences_transitive_finding(self):
        helper = """
        import time

        def now():
            return time.time()  # reprolint: disable=REP001 -- advisory stamp
        """
        findings = lint(
            """
            from repro.core import quiet

            def run():
                return quiet.now()
            """,
            modules={"repro/core/quiet.py": textwrap.dedent(helper)},
        )
        assert findings == []

    def test_call_site_suppression(self):
        findings = lint(
            """
            from repro.core import helper

            def run():
                return helper.two_hop()  # reprolint: disable=REP101 -- bench only
            """
        )
        assert findings == []

    def test_out_of_scope_module_ignored(self):
        findings = lint(
            """
            from repro.core import helper

            def run():
                return helper.two_hop()
            """,
            modpath="repro/analysis/report.py",
        )
        assert findings == []


# -- REP102: pickle-reachability ----------------------------------------------


class TestREP102:
    def test_ctor_arg_call_returning_lambda_flagged(self):
        findings = lint(
            """
            from repro.core import helper
            from repro.exec.kernels import FakeSpec

            def build():
                return FakeSpec(helper.make_cb())
            """
        )
        assert rules_of(findings) == ["REP102"]
        assert "make_cb" in findings[0].message

    def test_attribute_assignment_flagged(self):
        findings = lint(
            """
            from repro.exec.kernels import FakeSpec

            def build():
                spec = FakeSpec()
                spec.cb = lambda x: x
                return spec
            """
        )
        assert rules_of(findings) == ["REP102"]
        assert "will not pickle" in findings[0].message

    def test_helper_smuggling_closure_onto_spec_flagged(self):
        findings = lint(
            """
            from repro.core import helper
            from repro.exec.kernels import FakeSpec

            def build():
                spec = FakeSpec()
                helper.attach_cb(spec)
                return spec
            """
        )
        assert rules_of(findings) == ["REP102"]
        assert "attach_cb" in findings[0].message

    def test_plain_values_clean(self):
        findings = lint(
            """
            from repro.core import helper
            from repro.exec.kernels import FakeSpec

            def build():
                spec = FakeSpec(helper.pure(2))
                spec.n = 3
                return spec
            """
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            from repro.exec.kernels import FakeSpec

            def build():
                spec = FakeSpec()
                spec.cb = lambda x: x  # reprolint: disable=REP102 -- local-only run
                return spec
            """
        )
        assert findings == []


# -- REP103: resource leaks ---------------------------------------------------


class TestREP103:
    def test_interprocedural_acquisition_never_closed(self):
        findings = lint(
            """
            from repro.core import helper

            def read(path):
                f = helper.acquire(path)
                data = f.read()
                return data
            """
        )
        assert rules_of(findings) == ["REP103"]
        assert "never closed" in findings[0].message
        assert "acquire" in findings[0].message  # witness chain

    def test_close_outside_finally_flagged(self):
        findings = lint(
            """
            def read(path):
                f = open(path)
                data = f.read()
                f.close()
                return data
            """
        )
        assert rules_of(findings) == ["REP103"]
        assert "outside try/finally" in findings[0].message

    def test_context_manager_clean(self):
        findings = lint(
            """
            from repro.core import helper

            def direct(path):
                with open(path) as f:
                    return f.read()

            def named(path):
                f = helper.acquire(path)
                with f:
                    return f.read()
            """
        )
        assert findings == []

    def test_close_in_finally_clean(self):
        findings = lint(
            """
            def read(path):
                f = open(path)
                try:
                    return f.read()
                finally:
                    f.close()
            """
        )
        assert findings == []

    def test_ownership_transfer_clean(self):
        findings = lint(
            """
            class Sink:
                def store(self, path, registry):
                    w = open(path)
                    registry["w"] = w

            def make(path):
                return open(path)

            def handoff(path, owner):
                f = open(path)
                owner.adopt(f)
            """
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            def read(path):
                f = open(path)  # reprolint: disable=REP103 -- process-lifetime handle
                return f.read()
            """
        )
        assert findings == []


# -- REP104: registry name flow -----------------------------------------------


class TestREP104:
    def test_folded_unregistered_name_flagged(self):
        findings = lint(
            """
            def run(tracer):
                part = "re"
                with tracer.span(f"{part}play"):
                    pass
            """
        )
        assert rules_of(findings) == ["REP104"]
        assert "'replay'" in findings[0].message

    def test_concatenation_folds_to_registered_name(self):
        findings = lint(
            """
            def run(tracer):
                part = "re"
                with tracer.span(part + "duce"):
                    pass
            """
        )
        assert findings == []

    def test_constant_local_name(self):
        findings = lint(
            """
            def run(tracer):
                name = "map"
                with tracer.span(name):
                    pass
            """
        )
        assert findings == []

    def test_unfoldable_name_rejected(self):
        findings = lint(
            """
            def run(tracer, shard):
                with tracer.span(f"shard-{shard}"):
                    pass
            """
        )
        assert rules_of(findings) == ["REP104"]
        assert "cannot be resolved statically" in findings[0].message

    def test_reassigned_local_does_not_fold(self):
        findings = lint(
            """
            def run(tracer, flag):
                name = "map"
                if flag:
                    name = "oops"
                with tracer.span(name):
                    pass
            """
        )
        assert rules_of(findings) == ["REP104"]

    def test_literal_names_left_to_rep005(self):
        findings = lint(
            """
            def run(tracer):
                with tracer.span("unregistered"):
                    pass
            """
        )
        assert rules_of(findings) == ["REP005"]

    def test_suppressed(self):
        findings = lint(
            """
            def run(tracer, shard):
                with tracer.span(f"shard-{shard}"):  # reprolint: disable=REP104 -- debug build
                    pass
            """
        )
        assert findings == []


# -- REP105: kernel state escape ----------------------------------------------

_STATEFUL_HELPER = """
_SEEN = []

def bump(x):
    _SEEN.append(x)
    return x
"""

_SINGLETON_HELPER = """
_KERNELS = {}

def lookup(name):
    return _KERNELS[name]
"""


class TestREP105:
    def kernel(self, body, modules):
        return lint(
            body,
            modpath=KERNEL_MOD,
            modules=modules,
            kernel_source_override="def k(context, spec): ...",
        )

    def test_transitive_global_write_flagged(self):
        findings = self.kernel(
            """
            import repro.core.stateful as st

            def my_kernel(context, spec):
                return st.bump(spec)

            register_kernel("k", my_kernel)
            """,
            {"repro/core/stateful.py": textwrap.dedent(_STATEFUL_HELPER)},
        )
        assert rules_of(findings) == ["REP105"]
        assert "_SEEN" in findings[0].message
        assert "bump" in findings[0].message  # witness chain

    def test_transitive_singleton_read_flagged(self):
        findings = self.kernel(
            """
            import repro.core.registry as reg

            def my_kernel(context, spec):
                return reg.lookup(spec)

            register_kernel("k", my_kernel)
            """,
            {"repro/core/registry.py": textwrap.dedent(_SINGLETON_HELPER)},
        )
        assert rules_of(findings) == ["REP105"]
        assert "_KERNELS" in findings[0].message

    def test_pure_helper_clean(self):
        findings = self.kernel(
            """
            from repro.core import helper

            def my_kernel(context, spec):
                return helper.pure(spec)

            register_kernel("k", my_kernel)
            """,
            {},
        )
        assert findings == []

    def test_unregistered_function_ignored(self):
        findings = self.kernel(
            """
            import repro.core.stateful as st

            def coordinator_only(x):
                return st.bump(x)
            """,
            {"repro/core/stateful.py": textwrap.dedent(_STATEFUL_HELPER)},
        )
        assert findings == []


# -- suppression x baseline interaction ---------------------------------------


class TestSuppressionBaselineInteraction:
    VIOLATION = """
    import time

    def stamp():
        return time.time(){suffix}
    """

    def run(self, suffix=""):
        return lint(textwrap.dedent(self.VIOLATION).format(suffix=suffix))

    def test_suppressed_finding_not_double_counted(self, tmp_path):
        from repro.lint.baseline import apply_baseline, load_baseline, write_baseline

        baseline_path = tmp_path / "baseline.json"
        original = self.run()
        assert rules_of(original) == ["REP001"]
        write_baseline(baseline_path, original)

        suppressed = self.run("  # reprolint: disable=REP001 -- bench clock")
        assert suppressed == []
        new, old = apply_baseline(suppressed, load_baseline(baseline_path))
        assert new == [] and old == []  # neither fresh nor grandfathered

    def test_removing_suppression_resurfaces_same_fingerprint(self, tmp_path):
        from repro.lint.baseline import apply_baseline, load_baseline, write_baseline

        baseline_path = tmp_path / "baseline.json"
        original = self.run()
        write_baseline(baseline_path, original)

        resurfaced = self.run()  # suppression removed again
        new, old = apply_baseline(resurfaced, load_baseline(baseline_path))
        assert new == [] and [f.fingerprint() for f in old] == [
            f.fingerprint() for f in original
        ]


# -- the git-aware CLI helper -------------------------------------------------


class TestChangedOnly:
    def test_changed_py_files_lists_edits_vs_ref(self, tmp_path):
        from repro.lint.cli import changed_py_files

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True
            )

        git("init", "-q")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "t")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.txt").write_text("not python\n")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        (tmp_path / "a.py").write_text("x = 2\n")
        (tmp_path / "b.txt").write_text("still not python\n")
        changed = changed_py_files(tmp_path, "HEAD")
        assert changed == [str(tmp_path / "a.py")]

    def test_missing_git_returns_none(self, tmp_path):
        from repro.lint.cli import changed_py_files

        assert changed_py_files(tmp_path, "HEAD") is None

"""The repository must satisfy its own lint pass.

``repro lint src/`` gates CI, so these tests pin the gate's semantics:
the tree is clean modulo the committed baseline, the baseline stays
empty-or-justified, and seeding a synthetic violation (a wall-clock
call in the kernel module) makes the pass fail — which is exactly what
would break the CI ``lint`` job.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.baseline import apply_baseline, load_baseline

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"


def test_src_is_clean_modulo_baseline():
    findings = lint_paths([SRC], LintConfig(root=ROOT))
    baseline = load_baseline(ROOT / "lint-baseline.json")
    new, _old = apply_baseline(findings, baseline)
    assert not new, "new lint findings:\n" + "\n".join(map(str, new))


def test_committed_baseline_is_empty():
    # The repo's policy: fix violations or justify them inline with
    # `# reprolint: disable=REPxxx -- reason`; don't grandfather them.
    baseline = load_baseline(ROOT / "lint-baseline.json")
    assert not baseline, f"baseline should stay empty, has {sum(baseline.values())}"


def test_synthetic_violation_in_kernels_fails_the_pass():
    kernels = ROOT / "src/repro/exec/kernels.py"
    seeded = kernels.read_text().replace(
        "def hadoop_map_kernel(ctx: dict[str, Any], spec: HadoopMapSpec) -> HadoopMapResult:\n"
        '    """One sort-spill map task over one block, against a shadow disk."""\n',
        "def hadoop_map_kernel(ctx: dict[str, Any], spec: HadoopMapSpec) -> HadoopMapResult:\n"
        '    """One sort-spill map task over one block, against a shadow disk."""\n'
        "    started_at = time.time()\n",
    )
    assert seeded != kernels.read_text(), "seeding anchor not found in kernels.py"
    findings = lint_source(
        seeded, modpath="repro/exec/kernels.py", config=LintConfig(root=ROOT)
    )
    assert any(
        f.rule == "REP001" and "time.time" in f.message for f in findings
    ), findings


def test_cli_exit_codes_and_json(tmp_path):
    env_src = str(SRC)
    clean = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(SRC), "--format", "json"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert json.loads(clean.stdout) == {"findings": []}

    bad = tmp_path / "src" / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "fx.py").write_text("import time\nx = time.time()\n")
    dirty = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad / "fx.py")],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert dirty.returncode == 1, dirty.stdout + dirty.stderr
    assert "REP001" in dirty.stdout


def test_list_rules_names_all_layers():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert out.returncode == 0
    for rule_id in (
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
        "REP008",
        "REP101", "REP102", "REP103", "REP104", "REP105",
        "REP201", "REP202", "REP203", "REP204", "REP205", "REP206",
    ):
        assert rule_id in out.stdout

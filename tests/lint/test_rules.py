"""Per-rule fixtures: each REP rule on violating, clean and suppressed code.

Every rule is demonstrated three ways: a snippet that fails before the
rule existed (and would pass without it), the contract-conforming
rewrite, and the violating snippet under an inline suppression.
"""

import textwrap

import pytest

from repro.lint import LintConfig, lint_source

ENGINE_MOD = "repro/core/fixture.py"
KERNEL_MOD = "repro/exec/kernels.py"


def lint(source, *, modpath=ENGINE_MOD, config=None, select=None):
    if config is None:
        config = LintConfig()
    if select:
        config.select = (select,)
    return lint_source(textwrap.dedent(source), modpath=modpath, config=config)


def rules_of(findings):
    return [f.rule for f in findings]


# -- REP001: nondeterministic calls -------------------------------------------


class TestREP001:
    def test_wall_clock_flagged(self):
        findings = lint(
            """
            import time
            STAMP = time.time()
            """
        )
        assert rules_of(findings) == ["REP001"]
        assert "time.time" in findings[0].message

    @pytest.mark.parametrize(
        "snippet",
        [
            "from time import time\nx = time()\n",
            "import datetime\nx = datetime.datetime.now()\n",
            "from datetime import datetime\nx = datetime.utcnow()\n",
            "import os\nx = os.urandom(8)\n",
            "import uuid\nx = uuid.uuid4()\n",
            "import random\nx = random.randint(0, 9)\n",
            "import secrets\nx = secrets.token_bytes(4)\n",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "import numpy as np\nx = np.random.rand(3)\n",
        ],
    )
    def test_variants_flagged(self, snippet):
        assert rules_of(lint(snippet)) == ["REP001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # advisory timers are the sanctioned exception
            "import time\nt0 = time.perf_counter()\n",
            "import time\nt0 = time.process_time()\n",
            # seeded randomness is the contract
            "import random\nrng = random.Random(42)\n",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
        ],
    )
    def test_clean_variants(self, snippet):
        assert lint(snippet) == []

    def test_out_of_scope_module_ignored(self):
        src = "import time\nSTAMP = time.time()\n"
        assert lint(src, modpath="repro/analysis/report.py") == []

    def test_suppressed(self):
        findings = lint(
            """
            import time
            STAMP = time.time()  # reprolint: disable=REP001 -- display only
            """
        )
        assert findings == []


# -- REP002: kernel purity ----------------------------------------------------


def kernel_config(source):
    return LintConfig(kernel_source_override=textwrap.dedent(source))


class TestREP002:
    def test_impure_kernel_flagged(self):
        src = """
        import os
        _SEEN = []

        def bad_kernel(ctx, spec):
            global _STATE
            _SEEN.append(spec)
            os.remove("/tmp/x")
            data = open("/tmp/y").read()
            return ctx, _FORK_CONTEXT

        register_kernel("bad", bad_kernel)
        """
        findings = lint(src, modpath=KERNEL_MOD, config=kernel_config(src))
        messages = " ".join(f.message for f in findings)
        # The kernel-scope global write also trips the CFG layer's
        # shared-state race rule; both reports are correct.
        assert set(rules_of(findings)) == {"REP002", "REP201"}
        assert "declares global" in messages
        assert "_SEEN" in messages
        assert "os.remove" in messages
        assert "open()" in messages
        assert "_FORK_CONTEXT" in messages

    def test_purity_extends_to_module_helpers(self):
        src = """
        def helper(spec):
            print(spec)

        def kernel(ctx, spec):
            return helper(spec)

        register_kernel("k", kernel)
        """
        findings = lint(src, modpath=KERNEL_MOD, config=kernel_config(src))
        assert rules_of(findings) == ["REP002"]
        assert "print" in findings[0].message

    def test_clean_kernel(self):
        src = """
        def good_kernel(ctx, spec):
            staged = []
            staged.append(spec)
            return ctx["job"], staged

        register_kernel("good", good_kernel)
        """
        assert lint(src, modpath=KERNEL_MOD, config=kernel_config(src)) == []

    def test_unregistered_function_not_checked(self):
        src = """
        def coordinator_only(plan):
            print(plan)
        """
        assert lint(src, modpath=KERNEL_MOD, config=kernel_config(src)) == []

    def test_suppressed(self):
        src = """
        def k(ctx, spec):
            print(spec)  # reprolint: disable=REP002 -- debugging aid

        register_kernel("k", k)
        """
        assert lint(src, modpath=KERNEL_MOD, config=kernel_config(src)) == []


# -- REP003: picklable task specs ---------------------------------------------


SPEC_CFG_SRC = """
from dataclasses import dataclass

@dataclass(slots=True)
class DemoMapSpec:
    task_id: int
    emit: object
"""


class TestREP003:
    def cfg(self):
        return LintConfig(kernel_source_override=SPEC_CFG_SRC)

    def test_lambda_argument_flagged(self):
        findings = lint(
            """
            def build(block):
                return DemoMapSpec(1, lambda pair: pair)
            """,
            modpath="repro/mapreduce/fixture.py",
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP003"]
        assert "lambda" in findings[0].message

    def test_local_function_flagged(self):
        findings = lint(
            """
            def build(block):
                def emit(pair):
                    return pair
                return DemoMapSpec(1, emit=emit)
            """,
            modpath="repro/mapreduce/fixture.py",
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP003"]
        assert "will not pickle" in findings[0].message

    def test_module_level_function_ok(self):
        findings = lint(
            """
            def emit(pair):
                return pair

            def build(block):
                return DemoMapSpec(1, emit=emit)
            """,
            modpath="repro/mapreduce/fixture.py",
            config=self.cfg(),
        )
        assert findings == []

    def test_lambda_default_on_spec_class_flagged(self):
        bad = textwrap.dedent(
            """
            from dataclasses import dataclass

            @dataclass
            class OtherSpec:
                key = lambda x: x
            """
        )
        findings = lint(
            bad, modpath=KERNEL_MOD, config=LintConfig(kernel_source_override=bad)
        )
        assert rules_of(findings) == ["REP003"]

    def test_suppressed(self):
        findings = lint(
            """
            def build(block):
                return DemoMapSpec(1, lambda p: p)  # reprolint: disable=REP003 -- serial-only path
            """,
            modpath="repro/mapreduce/fixture.py",
            config=self.cfg(),
        )
        assert findings == []


# -- REP004: declared counters ------------------------------------------------


class TestREP004:
    def cfg(self):
        return LintConfig(counter_names_override=frozenset({"MAP_INPUT_RECORDS"}))

    def test_undeclared_counter_flagged(self):
        findings = lint(
            """
            from repro.mapreduce.counters import C
            NAME = C.MAP_INPUT_RECORD
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP004"]
        assert "C.MAP_INPUT_RECORD " in findings[0].message + " "

    def test_aliased_import_resolved(self):
        findings = lint(
            """
            import repro.mapreduce.counters as ctr
            NAME = ctr.C.TYPO
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP004"]

    def test_declared_counter_clean(self):
        findings = lint(
            """
            from repro.mapreduce.counters import C
            NAME = C.MAP_INPUT_RECORDS
            """,
            config=self.cfg(),
        )
        assert findings == []

    def test_unrelated_c_object_ignored(self):
        findings = lint(
            """
            class C:
                pass
            X = C.anything  # a different C, no counters import
            """,
            config=self.cfg(),
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            from repro.mapreduce.counters import C
            NAME = C.EXPERIMENTAL  # reprolint: disable=REP004 -- staged rollout
            """,
            config=self.cfg(),
        )
        assert findings == []


# -- REP005: tracer discipline ------------------------------------------------


class TestREP005:
    def cfg(self):
        return LintConfig(
            span_names_override=frozenset({"map", "sort"}),
            event_names_override=frozenset({"node.crash"}),
        )

    def test_span_outside_with_flagged(self):
        findings = lint(
            """
            def run(tracer):
                handle = tracer.span("map")
                handle.__enter__()
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP005"]
        assert "with" in findings[0].message

    def test_unregistered_span_name_flagged(self):
        findings = lint(
            """
            def run(self):
                with self.tracer.span("mystery-phase"):
                    pass
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP005"]
        assert "mystery-phase" in findings[0].message

    def test_unregistered_event_name_flagged(self):
        findings = lint(
            """
            def run(tracer):
                tracer.event("node.crashed")
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP005"]

    def test_dynamic_name_deferred_to_rep104(self):
        findings = lint(
            """
            def run(tracer, phase):
                with tracer.span(f"phase-{phase}"):
                    pass
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP104"]
        assert "cannot be resolved statically" in findings[0].message

    def test_clean_usage(self):
        findings = lint(
            """
            def run(self, trc):
                with self.tracer.span("map", "map", cost=3):
                    pass
                trc.event("node.crash", "recovery")
                self.tracer.add_span("sort", "sort", 0, 4)
            """,
            config=self.cfg(),
        )
        assert findings == []

    def test_non_tracer_receivers_ignored(self):
        findings = lint(
            """
            def run(doc):
                doc.span("anything")
                doc.event("whatever")
            """,
            config=self.cfg(),
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            def run(tracer):
                h = tracer.span("map")  # reprolint: disable=REP005 -- closed by caller
                return h
            """,
            config=self.cfg(),
        )
        assert findings == []


class TestJournalNamesRegistered:
    """The journal/chaos observability names are in the real registry.

    Unlike :class:`TestREP005` these fixtures run against the actual
    ``repro.obs.names`` registry (no override), so they fail if the
    names the journal subsystem emits ever drop out of ``names.py``.
    """

    def test_journal_names_lint_clean(self):
        findings = lint(
            """
            def run(self, tracer):
                with tracer.span("journal-replay", "journal"):
                    pass
                tracer.event("journal.resume", "journal")
                tracer.event("journal.commit", "journal")
                tracer.event("journal.truncated", "journal")
                tracer.event("chaos.crashpoint", "chaos")
            """
        )
        assert findings == []

    def test_near_miss_names_flagged(self):
        findings = lint(
            """
            def run(tracer):
                tracer.event("journal.resumed")
                with tracer.span("journal-replayed"):
                    pass
            """
        )
        assert rules_of(findings) == ["REP005", "REP005"]


# -- REP008: metric discipline ------------------------------------------------


class TestREP008:
    def cfg(self):
        return LintConfig(metric_names_override=frozenset({"map.sort.records"}))

    def test_unregistered_histogram_name_flagged(self):
        findings = lint(
            """
            def spill(self):
                self.tracer.metrics.histogram("map.sorted.records").observe(3)
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP008"]
        assert "map.sorted.records" in findings[0].message

    def test_unregistered_gauge_name_flagged(self):
        findings = lint(
            """
            def finish(metrics):
                metrics.gauge("hash.keys").record(0, 1)
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP008"]

    def test_registered_name_clean(self):
        findings = lint(
            """
            def spill(tracer):
                tracer.metrics.histogram("map.sort.records").observe(3)
            """,
            config=self.cfg(),
        )
        assert findings == []

    def test_non_metrics_receiver_ignored(self):
        findings = lint(
            """
            def plot(chart):
                chart.histogram("whatever")
            """,
            config=self.cfg(),
        )
        assert findings == []

    def test_dynamic_name_deferred_to_rep104(self):
        findings = lint(
            """
            def spill(tracer, name):
                tracer.metrics.histogram(name).observe(3)
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP104"]
        assert "cannot be resolved statically" in findings[0].message

    def test_folded_metric_name_checked_by_rep104(self):
        findings = lint(
            """
            def spill(tracer):
                prefix = "map.sort"
                tracer.metrics.histogram(prefix + ".rows").observe(3)
            """,
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP104"]
        assert "map.sort.rows" in findings[0].message

    def test_suppressed(self):
        findings = lint(
            """
            def spill(tracer):
                tracer.metrics.histogram("tmp.debug").observe(1)  # reprolint: disable=REP008 -- scratch series
            """,
            config=self.cfg(),
        )
        assert findings == []


class TestMetricNamesRegistered:
    """The engines' metric instrumentation names are in the real registry
    (no override), so they fail if an emitted name drops out of
    ``names.py``."""

    def test_emitted_metric_names_lint_clean(self):
        findings = lint(
            """
            def run(self, tracer):
                tracer.metrics.histogram("map.sort.records").observe(1)
                tracer.metrics.histogram("shuffle.segment.bytes").observe(1)
                tracer.metrics.histogram("push.chunk.bytes").observe(1)
                tracer.metrics.gauge("hash.resident.keys").record(0, 1)
                tracer.metrics.gauge("cache.resident.bytes").record(0, 1)
            """
        )
        assert findings == []

    def test_near_miss_name_flagged(self):
        findings = lint(
            """
            def run(tracer):
                tracer.metrics.histogram("shuffle.segments.bytes").observe(1)
            """
        )
        assert rules_of(findings) == ["REP008"]


# -- REP006: unordered set iteration ------------------------------------------


class TestREP006:
    def test_for_over_set_flagged(self):
        findings = lint(
            """
            def emit(keys):
                pending = set(keys)
                for key in pending:
                    yield key
            """
        )
        assert rules_of(findings) == ["REP006"]
        assert "sorted" in findings[0].message

    def test_set_difference_flagged(self):
        findings = lint(
            """
            def evict(table, hot):
                resident = {k for k in table}
                for key in resident - hot:
                    table.pop(key)
            """
        )
        assert rules_of(findings) == ["REP006"]

    def test_self_attribute_set_flagged(self):
        findings = lint(
            """
            class Tracker:
                def __init__(self):
                    self._seen: set[str] = set()

                def dump(self):
                    return [k for k in self._seen]
            """
        )
        assert rules_of(findings) == ["REP006"]

    def test_list_of_set_literal_flagged(self):
        findings = lint("VALUES = list({'a', 'b'})\n")
        assert rules_of(findings) == ["REP006"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # sorted() is the fix
            "def f(keys):\n    s = set(keys)\n    for k in sorted(s):\n        pass\n",
            # order-free reductions
            "def f(keys):\n    s = set(keys)\n    return sum(1 for k in s)\n",
            "def f(keys):\n    s = set(keys)\n    return max(s), len(s), any(k for k in s)\n",
            # set-to-set rebuilds cannot leak order
            "def f(keys):\n    s = set(keys)\n    return {k for k in s if k}\n",
            # membership is not iteration
            "def f(keys, k):\n    s = set(keys)\n    return k in s\n",
            # lists iterate deterministically
            "def f(keys):\n    s = list(keys)\n    for k in s:\n        pass\n",
        ],
    )
    def test_clean_variants(self, snippet):
        assert lint(snippet) == []

    def test_out_of_scope_module_ignored(self):
        src = "def f(keys):\n    s = set(keys)\n    for k in s:\n        pass\n"
        assert lint(src, modpath="repro/analysis/fixture.py") == []

    def test_suppressed(self):
        findings = lint(
            """
            def f(keys):
                s = set(keys)
                for k in s:  # reprolint: disable=REP006 -- feeds a commutative sum
                    pass
            """
        )
        assert findings == []


class TestREP006UnorderedSources:
    """The widened REP006 surface: frozenset, set-call locals, and dict
    views on dicts built from unordered sources."""

    def test_frozenset_iteration_flagged(self):
        findings = lint(
            """
            def f(keys):
                frozen = frozenset(keys)
                for k in frozen:
                    pass
            """
        )
        assert rules_of(findings) == ["REP006"]

    def test_set_call_local_flagged(self):
        findings = lint(
            """
            def f(keys):
                s = set(keys)
                return [k for k in s]
            """
        )
        assert rules_of(findings) == ["REP006"]

    @pytest.mark.parametrize(
        "view", ["d", "d.keys()", "d.values()", "d.items()"]
    )
    def test_dict_fromkeys_set_views_flagged(self, view):
        findings = lint(
            f"""
            def f(keys):
                d = dict.fromkeys({{k for k in keys}})
                for item in {view}:
                    pass
            """
        )
        assert rules_of(findings) == ["REP006"]
        assert "dict built from an unordered source" in findings[0].message

    def test_dict_comprehension_over_set_flagged(self):
        findings = lint(
            """
            def f(keys):
                s = set(keys)
                d = {k: 0 for k in sorted(s)}
                e = {k: 0 for k in s}
                for k in e.keys():
                    pass
            """
        )
        # the comprehension over the bare set AND the view iteration
        assert rules_of(findings) == ["REP006", "REP006"]

    def test_sorted_dict_views_clean(self):
        findings = lint(
            """
            def f(keys):
                d = dict.fromkeys(set(keys))
                for k in sorted(d.keys()):
                    pass
                return sorted(d.items())
            """
        )
        assert findings == []

    def test_dict_from_ordered_source_clean(self):
        findings = lint(
            """
            def f(pairs):
                d = dict(pairs)
                for k in d.keys():
                    pass
            """
        )
        assert findings == []


# -- REP007: __slots__ on hot paths -------------------------------------------


class TestREP007:
    def cfg(self):
        return LintConfig(hot_path_modules_override=("repro/core/hot.py",))

    def test_slotless_class_flagged(self):
        findings = lint(
            """
            class State:
                def __init__(self):
                    self.count = 0
            """,
            modpath="repro/core/hot.py",
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP007"]
        assert "State" in findings[0].message

    def test_slots_and_dataclass_slots_clean(self):
        findings = lint(
            """
            from dataclasses import dataclass

            class State:
                __slots__ = ("count",)

            @dataclass(slots=True)
            class Row:
                key: str
            """,
            modpath="repro/core/hot.py",
            config=self.cfg(),
        )
        assert findings == []

    def test_plain_dataclass_flagged(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Row:
                key: str
            """,
            modpath="repro/core/hot.py",
            config=self.cfg(),
        )
        assert rules_of(findings) == ["REP007"]

    def test_exception_and_protocol_exempt(self):
        findings = lint(
            """
            from typing import Protocol

            class HotError(Exception):
                pass

            class Reader(Protocol):
                def read(self) -> bytes: ...
            """,
            modpath="repro/core/hot.py",
            config=self.cfg(),
        )
        assert findings == []

    def test_other_module_ignored(self):
        findings = lint(
            "class State:\n    pass\n",
            modpath="repro/core/cold.py",
            config=self.cfg(),
        )
        assert findings == []

    def test_suppressed(self):
        findings = lint(
            """
            class State:  # reprolint: disable=REP007 -- instances are singletons
                pass
            """,
            modpath="repro/core/hot.py",
            config=self.cfg(),
        )
        assert findings == []


# -- hot-path list parsing ----------------------------------------------------


def test_hot_path_modules_parsed_from_performance_doc(tmp_path):
    doc = tmp_path / "docs" / "PERFORMANCE.md"
    doc.parent.mkdir()
    (tmp_path / "src" / "repro").mkdir(parents=True)
    doc.write_text(
        "intro\n\n"
        "<!-- reprolint: hot-path-modules -->\n"
        "- `src/repro/core/hash_tables.py`\n"
        "- `src/repro/obs/tracer.py`\n"
        "<!-- /reprolint -->\n"
    )
    from repro.lint import LintContext

    ctx = LintContext(LintConfig(root=tmp_path))
    assert ctx.hot_path_modules == (
        "repro/core/hash_tables.py",
        "repro/obs/tracer.py",
    )

"""Framework behaviour: suppressions, baselines, reporters, the runner."""

import json
import textwrap

from repro.lint import LintConfig, format_findings, lint_paths, lint_source
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.core import Finding, LintModule, dotted_name


def findings_for(source, **kw):
    return lint_source(textwrap.dedent(source), modpath="repro/core/fx.py", **kw)


# -- suppression comments -----------------------------------------------------


def test_suppression_is_rule_specific():
    # A REP006 disable does not hide the REP001 finding on the same line.
    src = """
    import time

    def f(keys):
        s = set(keys)
        for k in s:  # reprolint: disable=REP001 -- wrong rule id
            time.time()
    """
    rules = {f.rule for f in findings_for(src)}
    assert rules == {"REP001", "REP006"}


def test_suppression_multiple_rules_one_comment():
    src = """
    import time

    def f(keys):
        for k in set(keys): time.time()  # reprolint: disable=REP001,REP006 -- both known
    """
    assert findings_for(src) == []


def test_malformed_suppression_ignored():
    src = """
    import time
    x = time.time()  # reprolint: disable=everything
    """
    assert [f.rule for f in findings_for(src)] == ["REP001"]


# -- import alias resolution --------------------------------------------------


def test_dotted_name_resolution():
    module = LintModule(
        "import numpy as np\nfrom time import time as wall\nimport repro.mapreduce.counters\n",
        path="x.py",
        modpath="repro/core/x.py",
    )
    import ast

    np_call = ast.parse("np.random.default_rng").body[0].value
    assert dotted_name(np_call, module.aliases) == "numpy.random.default_rng"
    wall_call = ast.parse("wall").body[0].value
    assert dotted_name(wall_call, module.aliases) == "time.time"
    deep = ast.parse("repro.mapreduce.counters.C.X").body[0].value
    assert dotted_name(deep, module.aliases) == "repro.mapreduce.counters.C.X"


# -- baseline -----------------------------------------------------------------


def make_finding(rule="REP001", path="repro/core/a.py", line=3, message="m"):
    return Finding(rule, path, line, 1, message)


def test_baseline_roundtrip_and_matching(tmp_path):
    grandfathered = make_finding(message="old violation")
    fresh = make_finding(line=9, message="new violation")
    path = tmp_path / "baseline.json"
    write_baseline(path, [grandfathered])

    baseline = load_baseline(path)
    new, old = apply_baseline([grandfathered, fresh], baseline)
    assert new == [fresh]
    assert old == [grandfathered]


def test_baseline_ignores_line_drift(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [make_finding(line=3)])
    moved = make_finding(line=30)
    new, old = apply_baseline([moved], load_baseline(path))
    assert new == [] and old == [moved]


def test_baseline_entry_absorbs_only_its_count(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [make_finding()])
    dupe = [make_finding(), make_finding(line=8)]
    new, old = apply_baseline(dupe, load_baseline(path))
    assert len(new) == 1 and len(old) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert not load_baseline(tmp_path / "nope.json")


def test_baseline_bytes_stable_under_line_drift(tmp_path):
    """The written file is a pure function of the fingerprint multiset."""
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    findings = [make_finding(line=3, message="x"), make_finding(line=9, message="y")]
    moved = [make_finding(line=90, message="x"), make_finding(line=2, message="y")]
    write_baseline(a, findings)
    write_baseline(b, reversed(moved))
    assert a.read_text() == b.read_text()


# -- reporters ----------------------------------------------------------------


def test_text_report_lists_location_and_summary():
    out = format_findings([make_finding(message="bad call")], "text")
    assert "repro/core/a.py:3:1: REP001 bad call" in out
    assert "1 finding(s)" in out


def test_text_report_clean():
    assert "clean" in format_findings([], "text")


def test_json_report_is_machine_readable():
    out = format_findings([make_finding()], "json")
    data = json.loads(out)
    assert data["findings"][0]["rule"] == "REP001"
    assert data["findings"][0]["line"] == 3


# -- runner -------------------------------------------------------------------


def test_lint_paths_reports_syntax_errors(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    findings = lint_paths([bad], LintConfig(root=tmp_path))
    assert [f.rule for f in findings] == ["REP000"]


def test_lint_paths_sorted_and_scoped(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "b.py").write_text("import time\nx = time.time()\n")
    (pkg / "a.py").write_text("import time\ny = time.time()\n")
    findings = lint_paths([tmp_path / "src"], LintConfig(root=tmp_path))
    assert [f.path for f in findings] == ["src/repro/core/a.py", "src/repro/core/b.py"]
    assert {f.rule for f in findings} == {"REP001"}


def test_select_limits_rules():
    src = """
    import time

    def f(keys):
        s = set(keys)
        for k in s:
            time.time()
    """
    only_six = findings_for(src, config=LintConfig(select=("REP006",)))
    assert [f.rule for f in only_six] == ["REP006"]

"""REP201..REP206 fixture suites: one true positive, one clean guard
and one suppression per rule, all injected hermetically via
``program_modules_override`` (plus kernel/executor source overrides for
the context model)."""

import textwrap

from repro.lint import LintConfig, lint_source

ENGINE_MOD = "repro/core/fixture.py"
KERNEL_MOD = "repro/exec/kernels.py"
EXEC_MOD = "repro/exec/base.py"

BASE_KERNEL_SRC = textwrap.dedent(
    """
    class MapSpec:
        pass

    def wordcount_kernel(ctx, spec):
        return spec

    register_kernel("wordcount", wordcount_kernel)
    """
)

BASE_EXEC_SRC = textwrap.dedent(
    """
    def _invoke(spec):
        return spec

    def run(pool, spec):
        return pool.submit(_invoke, spec)
    """
)


def lint(source, *, modpath=ENGINE_MOD, modules=None, kernel_src=None,
         exec_src=None, **cfg_kw):
    kernel_src = textwrap.dedent(kernel_src) if kernel_src else BASE_KERNEL_SRC
    exec_src = textwrap.dedent(exec_src) if exec_src else BASE_EXEC_SRC
    source = textwrap.dedent(source)
    over = {KERNEL_MOD: kernel_src, EXEC_MOD: exec_src}
    over.update(modules or {})
    over.setdefault(modpath, source)
    config = LintConfig(
        use_cache=False,
        program_modules_override=over,
        kernel_source_override=kernel_src,
        executor_source_override=exec_src,
        **cfg_kw,
    )
    return lint_source(source, modpath=modpath, config=config)


def rules_of(findings):
    return [f.rule for f in findings]


# -- REP201: shared mutable state across contexts -----------------------------


class TestREP201:
    def test_kernel_scope_global_write_flagged(self):
        src = """
        TOTAL = 0

        class MapSpec:
            pass

        def tally_kernel(ctx, spec):
            global TOTAL
            TOTAL = TOTAL + 1
            return TOTAL

        register_kernel("tally", tally_kernel)
        """
        findings = lint(
            src, modpath=KERNEL_MOD, kernel_src=src, select=("REP201",)
        )
        assert rules_of(findings) == ["REP201"]
        assert "TOTAL" in findings[0].message
        assert "kernel scope" in findings[0].message

    def test_coordinator_write_kernel_read_flagged(self):
        src = """
        MODE = "strict"

        class MapSpec:
            pass

        def set_mode(mode):
            global MODE
            MODE = mode

        def mode_kernel(ctx, spec):
            return MODE

        register_kernel("mode", mode_kernel)
        """
        findings = lint(
            src, modpath=KERNEL_MOD, kernel_src=src, select=("REP201",)
        )
        assert rules_of(findings) == ["REP201"]
        assert "read here in kernel scope" in findings[0].message

    def test_coordinator_only_state_is_clean(self):
        src = """
        _JOBS = 0

        def schedule(job):
            global _JOBS
            _JOBS = _JOBS + 1
            return _JOBS
        """
        assert lint(src, select=("REP201",)) == []

    def test_suppression_on_the_read_site(self):
        # The coordinator-write/kernel-read shape is reported at the
        # read, so that is where the justification lives.
        src = """
        CONFIG = None

        class MapSpec:
            pass

        def freeze_config(cfg):
            global CONFIG
            CONFIG = cfg

        def cfg_kernel(ctx, spec):
            return CONFIG  # reprolint: disable=REP201 -- frozen before workers start

        register_kernel("cfg", cfg_kernel)
        """
        assert lint(
            src, modpath=KERNEL_MOD, kernel_src=src, select=("REP201",)
        ) == []

    def test_thread_executor_shared_state_race_regression(self):
        # The synthetic regression: a worker entry submitted to the pool
        # in the executor module mutates executor-module state — exactly
        # the shape of a results-dict race under the thread executor.
        exec_src = """
        _LAST_RESULT = None

        def _invoke(spec):
            global _LAST_RESULT
            _LAST_RESULT = spec
            return _LAST_RESULT

        def run(pool, spec):
            return pool.submit(_invoke, spec)
        """
        findings = lint(
            exec_src, modpath=EXEC_MOD, exec_src=exec_src, select=("REP201",)
        )
        assert rules_of(findings) == ["REP201"]
        assert "_LAST_RESULT" in findings[0].message


# -- REP202: fork-unsafe captures ---------------------------------------------


class TestREP202:
    def test_open_handle_on_spec_ctor_flagged(self):
        src = """
        from repro.exec.kernels import MapSpec

        def build(path):
            fh = open(path)
            return MapSpec(fh)
        """
        findings = lint(src, select=("REP202",))
        assert rules_of(findings) == ["REP202"]
        assert "open file handle" in findings[0].message

    def test_resource_via_helper_carries_witness(self):
        src = """
        from repro.exec.kernels import MapSpec
        from repro.core.rio import acquire

        def build(path):
            fh = acquire(path)
            return MapSpec(fh)
        """
        helper = textwrap.dedent(
            """
            def acquire(path):
                return open(path)
            """
        )
        findings = lint(
            src, modules={"repro/core/rio.py": helper}, select=("REP202",)
        )
        assert rules_of(findings) == ["REP202"]
        assert "acquire" in findings[0].message  # the witness chain

    def test_generator_on_spec_field_flagged(self):
        src = """
        from repro.exec.kernels import MapSpec

        def rows(path):
            yield path

        def build(path):
            spec = MapSpec()
            spec.stream = rows(path)
            return spec
        """
        findings = lint(src, select=("REP202",))
        assert rules_of(findings) == ["REP202"]
        assert "live generator" in findings[0].message

    def test_kernel_capturing_module_lock_flagged(self):
        src = """
        import threading

        _GUARD = threading.Lock()

        class MapSpec:
            pass

        def guarded_kernel(ctx, spec):
            with _GUARD:
                return spec

        register_kernel("guarded", guarded_kernel)
        """
        findings = lint(
            src, modpath=KERNEL_MOD, kernel_src=src, select=("REP202",)
        )
        assert rules_of(findings) == ["REP202"]
        assert "thread lock" in findings[0].message

    def test_plain_values_on_specs_are_clean(self):
        src = """
        from repro.exec.kernels import MapSpec

        def build(path, n):
            spec = MapSpec(str(path), n + 1)
            spec.retries = 3
            return spec
        """
        assert lint(src, select=("REP202",)) == []

    def test_suppression(self):
        src = """
        from repro.exec.kernels import MapSpec

        def build(path):
            fh = open(path)
            return MapSpec(fh)  # reprolint: disable=REP202 -- serial-only harness
        """
        assert lint(src, select=("REP202",)) == []


# -- REP203: blocking calls in coordinator scope ------------------------------


class TestREP203:
    def test_direct_sleep_in_coordinator_flagged(self):
        src = """
        import time

        def poll(engine):
            time.sleep(0.5)
            return engine
        """
        findings = lint(src, select=("REP203",))
        assert rules_of(findings) == ["REP203"]
        assert "time.sleep" in findings[0].message
        assert "coordinator-scope" in findings[0].message

    def test_transitive_block_reported_with_chain(self):
        src = """
        from repro.workloads.backoff import settle

        def drain(engine):
            settle()
            return engine
        """
        helper = textwrap.dedent(
            """
            import time

            def settle():
                time.sleep(1)
            """
        )
        # repro/workloads/ is outside the coordinator scope, so the
        # helper has no finding of its own; the caller gets the chain.
        findings = lint(
            src,
            modules={"repro/workloads/backoff.py": helper},
            select=("REP203",),
        )
        assert rules_of(findings) == ["REP203"]
        assert "transitively" in findings[0].message
        assert "settle" in findings[0].message

    def test_kernel_scope_sleep_is_clean(self):
        src = """
        import time

        class MapSpec:
            pass

        def throttled_kernel(ctx, spec):
            time.sleep(0.01)
            return spec

        register_kernel("throttled", throttled_kernel)
        """
        assert lint(
            src, modpath=KERNEL_MOD, kernel_src=src, select=("REP203",)
        ) == []

    def test_transitive_not_duplicated_at_coordinator_callers(self):
        src = """
        import time

        def nap():
            time.sleep(1)

        def outer():
            nap()
        """
        findings = lint(src, select=("REP203",))
        # One finding at nap()'s own sleep; outer is not re-reported.
        assert rules_of(findings) == ["REP203"]
        assert "nap" in findings[0].message

    def test_suppression(self):
        src = """
        import time

        def poll(engine):
            time.sleep(0.5)  # reprolint: disable=REP203 -- bounded startup wait
            return engine
        """
        assert lint(src, select=("REP203",)) == []


# -- REP204: commit-then-emit ordering ----------------------------------------


class TestREP204:
    def test_emit_before_commit_flagged(self):
        src = """
        def flush(journal, hdfs, job, block):
            hdfs.append_block(job.output_path, block)
            journal.append(K_REDUCE_COMMIT, {"reduce": job.rid})
        """
        findings = lint(src, select=("REP204",))
        assert rules_of(findings) == ["REP204"]
        assert "before its reduce-commit" in findings[0].message

    def test_emit_with_no_commit_record_flagged(self):
        src = """
        def flush(journal, hdfs, job, block):
            journal.append(K_TASK_DONE, {"task": job.rid})
            hdfs.append_block(job.output_path, block)
        """
        findings = lint(src, select=("REP204",))
        assert rules_of(findings) == ["REP204"]
        assert "appends no reduce-commit" in findings[0].message

    def test_emit_on_commit_free_branch_flagged(self):
        src = """
        def flush(journal, hdfs, job, block, fresh):
            if fresh:
                journal.append(K_REDUCE_COMMIT, {"reduce": job.rid})
            else:
                hdfs.append_block(job.output_path, block)
        """
        findings = lint(src, select=("REP204",))
        assert rules_of(findings) == ["REP204"]
        assert "no path" in findings[0].message

    def test_commit_then_emit_is_clean(self):
        src = """
        def flush(journal, hdfs, job, blocks):
            for rid in job.reduces:
                journal.append(K_REDUCE_COMMIT, {"reduce": rid})
            for block in blocks:
                hdfs.append_block(job.output_path, block)
            journal.append(K_OUTPUT_COMMIT, {"job": job.jid})
        """
        assert lint(src, select=("REP204",)) == []

    def test_replay_emit_after_loop_commit_is_clean(self):
        # The crash-recovery shape: within one loop iteration the commit
        # precedes the emission; later iterations' emits see the earlier
        # commit through the back edge.
        src = """
        def drain(journal, hdfs, job, parts):
            for part in parts:
                journal.append("reduce-commit", {"part": part.rid})
                hdfs.append_block(job.output_path, part.data)
        """
        assert lint(src, select=("REP204",)) == []

    def test_emit_only_helpers_are_out_of_scope(self):
        src = """
        def copy_out(hdfs, job, block):
            hdfs.append_block(job.output_path, block)
        """
        assert lint(src, select=("REP204",)) == []

    def test_suppression(self):
        src = """
        def flush(journal, hdfs, job, block):
            hdfs.append_block(job.output_path, block)  # reprolint: disable=REP204 -- scratch path
            journal.append(K_REDUCE_COMMIT, {"reduce": job.rid})
        """
        assert lint(src, select=("REP204",)) == []


# -- REP205: path-sensitive resource release ----------------------------------


class TestREP205:
    def test_raise_window_between_acquire_and_finally_flagged(self):
        src = """
        def load(path, parse):
            fh = open(path)
            header = parse(fh.readline())
            try:
                return header
            finally:
                fh.close()
        """
        findings = lint(src, select=("REP205",))
        assert rules_of(findings) == ["REP205"]
        assert "exception path" in findings[0].message

    def test_immediate_try_finally_is_clean(self):
        src = """
        def load(path, parse):
            fh = open(path)
            try:
                header = parse(fh.readline())
                return header
            finally:
                fh.close()
        """
        assert lint(src, select=("REP205",)) == []

    def test_with_statement_is_clean(self):
        src = """
        def load(path, parse):
            fh = open(path)
            with fh:
                return parse(fh.readline())
        """
        assert lint(src, select=("REP205",)) == []

    def test_rep103_owns_plainly_broken_cases(self):
        # No release at all: REP103's verdict, not a duplicate REP205.
        src = """
        def load(path):
            fh = open(path)
            return 1
        """
        findings = lint(src, select=("REP103", "REP205"))
        assert rules_of(findings) == ["REP103"]

    def test_suppression(self):
        src = """
        def load(path, parse):
            fh = open(path)  # reprolint: disable=REP205 -- parse cannot raise here
            header = parse(fh.readline())
            try:
                return header
            finally:
                fh.close()
        """
        assert lint(src, select=("REP205",)) == []


# -- REP206: lock-order consistency -------------------------------------------


class TestREP206:
    def test_opposite_nesting_order_flagged(self):
        src = """
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def one():
            with A:
                with B:
                    pass

        def two():
            with B:
                with A:
                    pass
        """
        findings = lint(src, select=("REP206",))
        assert rules_of(findings) == ["REP206", "REP206"]
        assert "lock-order cycle" in findings[0].message

    def test_cycle_through_a_call_under_lock(self):
        src = """
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def one():
            with A:
                grab_b()

        def grab_b():
            with B:
                pass

        def two():
            with B:
                with A:
                    pass
        """
        findings = lint(src, select=("REP206",))
        assert findings, "interprocedural cycle must be detected"
        assert all(f.rule == "REP206" for f in findings)

    def test_consistent_order_is_clean(self):
        src = """
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def one():
            with A:
                with B:
                    pass

        def two():
            with A:
                with B:
                    pass
        """
        assert lint(src, select=("REP206",)) == []

    def test_suppression_on_one_site_breaks_the_cycle(self):
        src = """
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def one():
            with A:
                with B:
                    pass

        def two():
            with B:
                with A:  # reprolint: disable=REP206 -- shutdown path, workers quiesced
                    pass
        """
        assert lint(src, select=("REP206",)) == []

"""Perfguard's phase-attribution path: a failed gate names the phase.

Timing the kernels for real is what CI's perf job does; here ``measure``
is stubbed with synthetic scores derived from the committed baseline, so
the gate logic (tolerance ratios, throughput floors, batch-beats bounds)
and the regression explanation are tested deterministically.
"""

import importlib.util
import json
import sys
from pathlib import Path

_PG_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "perfguard.py"
_SPEC = importlib.util.spec_from_file_location("perfguard", _PG_PATH)
perfguard = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("perfguard", perfguard)
_SPEC.loader.exec_module(perfguard)


def _baseline() -> dict:
    return json.loads(perfguard.BASELINE_PATH.read_text())


def _synthetic_measure(scale_phase=None, factor=1.0):
    """Measurements tracking the committed baseline exactly, except the
    kernels of ``scale_phase`` whose scores are multiplied by ``factor``."""
    base = _baseline()
    floors = base["floors_records_per_sec"]
    out = {}
    for name, score in base["kernels"].items():
        scaled = score
        if scale_phase and perfguard.KERNEL_PHASES.get(name) == scale_phase:
            scaled = score * factor
        out[name] = {
            "score": scaled,
            # comfortably above the recorded floor (floor = baseline / 4)
            "records_per_sec": floors[name] * perfguard.FLOOR_HEADROOM,
        }
    return out


class TestPhaseScores:
    def test_aggregates_by_kernel_phase(self):
        scores = perfguard.phase_scores(
            {"partition_sort": 1.5, "batch_partition_sort": 0.5, "frames_roundtrip": 2.0}
        )
        assert scores == {"sort": 2.0, "shuffle": 2.0}

    def test_unknown_kernels_bucket_as_other(self):
        assert perfguard.phase_scores({"mystery": 1.0}) == {"other": 1.0}

    def test_every_kernel_has_a_phase(self):
        assert set(perfguard.KERNELS) == set(perfguard.KERNEL_PHASES)

    def test_baseline_covers_every_kernel(self):
        assert set(_baseline()["kernels"]) == set(perfguard.KERNELS)


class TestCheckGate:
    def test_passes_at_baseline(self, monkeypatch, capsys):
        monkeypatch.setattr(perfguard, "measure", _synthetic_measure)
        # the interleaved pair gate times real kernels; stub it here
        monkeypatch.setattr(perfguard, "paired_ratio", lambda *a, **k: 1.0)
        assert perfguard.cmd_check(perfguard.BASELINE_PATH) == 0
        assert "all kernels within" in capsys.readouterr().out

    def test_paired_overhead_breach_fails_the_gate(self, monkeypatch, capsys):
        monkeypatch.setattr(perfguard, "measure", _synthetic_measure)
        monkeypatch.setattr(perfguard, "paired_ratio", lambda *a, **k: 1.5)
        assert perfguard.cmd_check(perfguard.BASELINE_PATH) == 1
        out = capsys.readouterr().out
        assert "san_overhead" in out and "interleaved" in out and "FAIL" in out

    def test_forced_regression_names_the_phase(self, monkeypatch, capsys):
        """The acceptance check: a sort-kernel blowup fails the gate AND
        the failure output names 'sort' as the regressed phase."""
        monkeypatch.setattr(
            perfguard,
            "measure",
            lambda: _synthetic_measure(scale_phase="sort", factor=10.0),
        )
        monkeypatch.setattr(perfguard, "paired_ratio", lambda *a, **k: 1.0)
        assert perfguard.cmd_check(perfguard.BASELINE_PATH) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "phase attribution" in captured.err
        assert "regressed phase: sort" in captured.err

    def test_missing_baseline_is_exit_2(self, tmp_path, capsys):
        assert perfguard.cmd_check(tmp_path / "nope.json") == 2
        assert "no baseline" in capsys.readouterr().err


class TestExplainRegression:
    def test_delta_table_and_attribution(self, capsys):
        base = {"partition_sort": 1.0, "incremental_update": 2.0}
        measured = {
            "partition_sort": {"score": 3.0, "records_per_sec": 1.0},
            "incremental_update": {"score": 2.0, "records_per_sec": 1.0},
        }
        perfguard.explain_regression(base, measured)
        err = capsys.readouterr().err
        assert "regressed phase: sort" in err
        assert "3.00x" in err

    def test_silent_when_nothing_grew(self, capsys):
        base = {"partition_sort": 2.0}
        measured = {"partition_sort": {"score": 1.0, "records_per_sec": 1.0}}
        perfguard.explain_regression(base, measured)
        assert "regressed phase" not in capsys.readouterr().err

"""Harness lifecycle: patching, scope tracking, and canonical reports."""

import pytest

from repro.san.harness import (
    ALL_DETECTORS,
    Sanitizer,
    SanitizerConfig,
    active_sanitizer,
)
from repro.san.report import SanReport, Violation

pytestmark = pytest.mark.no_reprosan  # these tests install their own sanitizers


def _patch_points():
    """(owner, attr) pairs the sanitizer patches; captured for restore checks."""
    from repro.core.engine import OnePassEngine
    from repro.exec import base as exec_base
    from repro.mapreduce.hop import HOPEngine
    from repro.mapreduce.journal import JobJournal
    from repro.mapreduce.runtime import HadoopEngine
    from repro.obs.tracer import Tracer

    points = [
        (exec_base, "get_kernel"),
        (JobJournal, "append"),
        (Tracer, "absorb"),
        (HadoopEngine, "run"),
        (HOPEngine, "run"),
        (OnePassEngine, "run"),
    ]
    return points


class TestLifecycle:
    def test_install_remove_restores_every_patch_point(self):
        before = {
            (owner.__name__, attr): getattr(owner, attr)
            for owner, attr in _patch_points()
        }
        with Sanitizer():
            during = {
                (owner.__name__, attr): getattr(owner, attr)
                for owner, attr in _patch_points()
            }
            assert during != before  # something actually got patched
        after = {
            (owner.__name__, attr): getattr(owner, attr)
            for owner, attr in _patch_points()
        }
        assert after == before

    def test_active_sanitizer_tracks_install(self):
        assert active_sanitizer() is None
        with Sanitizer() as san:
            assert active_sanitizer() is san
        assert active_sanitizer() is None

    def test_double_install_rejected(self):
        with Sanitizer():
            with pytest.raises(RuntimeError):
                Sanitizer().install()

    def test_config_rejects_unknown_detector(self):
        with pytest.raises(ValueError):
            SanitizerConfig(detectors=("sentinel", "turbo"))

    def test_all_detectors_named(self):
        assert set(ALL_DETECTORS) == {"sentinel", "race", "resource", "pickle"}

    def test_clean_scope_produces_clean_report(self):
        with Sanitizer() as san:
            with san.engine_scope():
                pass
        assert san.report.clean
        assert san.report.detectors == ALL_DETECTORS

    def test_sentinels_silent_outside_engine_scope(self):
        import time

        with Sanitizer() as san:
            time.time()  # outside engine scope: not a violation
        assert san.report.clean


class TestReportCanonicalisation:
    def _v(self, **kw):
        base = dict(id="SAN103", message="m", path="p", line=1, task="t")
        base.update(kw)
        return Violation(**base)

    def test_finalize_sorts_and_dedups(self):
        report = SanReport()
        report.add(self._v(id="SAN205", message="later"))
        report.add(self._v(message="dup"))
        report.add(self._v(message="dup"))
        report.add(self._v(message="a-first"))
        report.finalize()
        assert [v.message for v in report.violations] == ["a-first", "dup", "later"]

    def test_json_and_text_are_deterministic(self):
        def build():
            report = SanReport(detectors=("resource",))
            report.add(self._v(message="z"))
            report.add(self._v(id="SAN205", message="a", clock=4))
            return report.finalize()

        assert build().to_json() == build().to_json()
        assert build().to_text() == build().to_text()

    def test_counts_by_violation_id(self):
        report = SanReport()
        report.add(self._v(message="a"))
        report.add(self._v(message="b"))
        report.add(self._v(id="SAN205", message="c"))
        assert report.counts() == {"SAN103": 2, "SAN205": 1}

    def test_sarif_round_trips_and_names_static_rules(self):
        import json

        report = SanReport(detectors=("resource",))
        report.add(self._v(witness=(("site", "x.py:3"),)))
        doc = json.loads(report.finalize().to_sarif())
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reprosan"
        (result,) = run["results"]
        assert result["ruleId"] == "SAN103"
        assert result["properties"]["staticRules"] == ["REP103"]
        assert result["properties"]["witness"] == {"site": "x.py:3"}

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            SanReport().format("xml")


class TestSharedStateTracking:
    def test_kernel_scope_write_to_tracked_global_reports_san201(self):
        from repro.exec.base import SerialExecutor, register_kernel

        state = {}

        def writer_kernel(ctx, spec):
            state["k"] = spec  # deliberate: kernel-scope write to shared state
            return spec

        register_kernel("san.test.writer", writer_kernel)
        with Sanitizer(SanitizerConfig(detectors=("race",))) as san:
            san.track_shared("tests.san.test_harness.state", state)
            with san.engine_scope():
                with SerialExecutor().session(context=None) as session:
                    session.run_batch("san.test.writer", [{"part": 0}])
        assert [v.id for v in san.report.violations] == ["SAN201"]
        assert "tests.san.test_harness.state" in san.report.violations[0].message

    def test_provider_snapshot_detects_key_set_growth(self):
        from repro.exec.base import SerialExecutor, register_kernel

        cache = {}

        def cache_kernel(ctx, spec):
            cache[spec["part"]] = b"x"  # deliberate: kernel populates a cache
            return spec

        register_kernel("san.test.cache", cache_kernel)
        with Sanitizer(SanitizerConfig(detectors=("race",))) as san:
            san.track_shared("cache.keys", lambda: sorted(cache))
            with san.engine_scope():
                with SerialExecutor().session(context=None) as session:
                    session.run_batch("san.test.cache", [{"part": 7}])
        assert [v.id for v in san.report.violations] == ["SAN201"]

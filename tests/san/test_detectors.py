"""Unit tests for the individual detector building blocks."""

import pickle
import threading
from dataclasses import dataclass

import pytest

from repro.san.harness import fingerprint
from repro.san.pickles import check_spec, fork_unsafe_member, structural_diff
from repro.san.resources import ResourceTracker
from repro.san.sentinels import SentinelTrip, sentinel_targets


class TestPickleChecks:
    def test_clean_spec_passes(self):
        assert check_spec({"part": 3, "path": "run-0", "keys": (1, 2)}) is None

    def test_lock_on_spec_is_san202(self):
        vid, msg = check_spec({"part": 0, "guard": threading.Lock()})
        assert vid == "SAN202"
        assert "guard" in msg

    def test_nested_open_file_is_san202(self, tmp_path):
        with open(tmp_path / "f", "w") as fh:
            vid, msg = check_spec({"io": [{"handle": fh}]})
        assert vid == "SAN202"
        assert "file handle" in msg

    def test_generator_on_spec_is_san202(self):
        vid, _ = check_spec({"rows": (i for i in range(3))})
        assert vid == "SAN202"

    def test_unpicklable_spec_is_san102(self):
        vid, msg = check_spec({"fn": lambda x: x})
        assert vid == "SAN102"
        assert "pickle" in msg

    def test_structural_diff_catches_value_and_shape_drift(self):
        assert structural_diff({"n": 1}, {"n": 2}) is not None
        assert structural_diff([1, 2], [1, 2, 3]) is not None
        assert structural_diff((1, "a"), [1, "a"]) is not None  # type change
        assert structural_diff({"n": 1}, {"n": 1}) is None

    def test_structural_diff_memoryview_bytes_equivalence(self):
        assert structural_diff(memoryview(b"abc"), b"abc") is None
        assert structural_diff(memoryview(b"abc"), b"abd") is not None

    def test_structural_diff_reports_path(self):
        diff = structural_diff({"a": [1, 2]}, {"a": [1, 3]})
        assert diff is not None
        assert "spec['a'][1]" in diff

    def test_fork_unsafe_member_none_for_plain_data(self):
        assert fork_unsafe_member({"a": 1, "b": [2, (3, "x")]}) is None


class TestResourceTracker:
    def test_acquire_release_roundtrip(self):
        tracker = ResourceTracker()
        token = tracker.acquire("span", "map")
        assert tracker.live_count == 1
        tracker.release(token)
        assert tracker.live_count == 0
        assert tracker.take_leaks() == []

    def test_take_leaks_pops_live_records(self):
        tracker = ResourceTracker()
        tracker.acquire("disk.writer", "run-0", stack=(("f.py", 1, "g"),))
        leaks = tracker.take_leaks()
        assert len(leaks) == 1
        assert leaks[0].kind == "disk.writer"
        assert leaks[0].stack == (("f.py", 1, "g"),)
        assert tracker.take_leaks() == []

    def test_exclude_kinds_keeps_records(self):
        tracker = ResourceTracker()
        tracker.acquire("journal.segment", "seg-0")
        assert tracker.take_leaks(exclude_kinds=("journal.segment",)) == []
        assert tracker.live_count == 1

    def test_weakref_tracked_object_released_by_gc(self):
        class Obj:
            pass

        tracker = ResourceTracker()
        obj = Obj()
        tracker.acquire("batch", "b0", obj=obj)
        del obj
        assert tracker.take_leaks() == []

    def test_forget_since_drops_only_newer(self):
        tracker = ResourceTracker()
        tracker.acquire("span", "old")
        marker = tracker.seq
        tracker.acquire("span", "new")
        tracker.forget_since(marker)
        leaks = tracker.take_leaks()
        assert [r.name for r in leaks] == ["old"]

    def test_classify_pre_exception_leak_as_san205(self):
        tracker = ResourceTracker()
        tracker.acquire("span", "before")
        tracker.note_exception()
        tracker.acquire("span", "after")
        by_name = {r.name: r for r in tracker.take_leaks()}
        assert tracker.classify(by_name["before"]) == "SAN205"
        assert tracker.classify(by_name["after"]) == "SAN103"

    def test_forget_live_clears_everything(self):
        tracker = ResourceTracker()
        tracker.acquire("span", "a")
        tracker.note_exception()
        tracker.forget_live()
        assert tracker.take_leaks() == []
        # The exception marker is reset too: a fresh leak is SAN103.
        tracker.acquire("span", "b")
        (record,) = tracker.take_leaks()
        assert tracker.classify(record) == "SAN103"


class TestSentinels:
    def test_targets_cover_time_and_global_random(self):
        dotted = {d for _, _, d in sentinel_targets()}
        assert "time.time" in dotted
        assert "random.random" in dotted
        assert "os.urandom" in dotted

    def test_targets_skip_nested_modules(self):
        # datetime.datetime.now lives on a C type and cannot be patched;
        # the target list must not offer it.
        for module_name, _, _ in sentinel_targets():
            assert "." not in module_name

    def test_targets_are_importable_attrs(self):
        import importlib

        for module_name, attr, dotted in sentinel_targets():
            mod = importlib.import_module(module_name)
            assert callable(getattr(mod, attr)), dotted

    def test_sentinel_trip_is_picklable(self):
        trip = SentinelTrip("time.time", "wall-clock read")
        clone = pickle.loads(pickle.dumps(trip))
        assert clone.dotted == "time.time"
        assert clone.message == "wall-clock read"


class TestFingerprint:
    def test_stable_for_equal_values(self):
        assert fingerprint({"a": 1, "b": [2, 3]}) == fingerprint({"b": [2, 3], "a": 1})

    def test_differs_on_value_change(self):
        assert fingerprint([1, 2, 3]) != fingerprint([1, 2, 4])

    def test_order_independent_for_dicts_ordered_for_lists(self):
        assert fingerprint({1: "a", 2: "b"}) == fingerprint({2: "b", 1: "a"})
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_handles_unhashable_and_nested(self):
        spec = {"rows": [{"k": memoryview(b"xy")}], "n": 7}
        assert isinstance(fingerprint(spec), str)
        assert len(fingerprint(spec)) == 16

    def test_dataclass_fingerprint_tracks_fields(self):
        @dataclass
        class Spec:
            part: int

        assert fingerprint(Spec(1)) != fingerprint(Spec(2))
        assert fingerprint(Spec(1)) == fingerprint(Spec(1))


@pytest.mark.parametrize("value", [None, True, 1, 1.5, "s", b"b", (1, 2)])
def test_fingerprint_primitives_round_trip(value):
    assert fingerprint(value) == fingerprint(value)

"""Unit tests for the vector-clock happens-before graph."""

from repro.san.hb import HBGraph, VectorClock


class TestVectorClock:
    def test_tick_and_as_tuple(self):
        vc = VectorClock()
        vc.tick("a")
        vc.tick("a")
        vc.tick("b")
        assert vc.as_tuple() == (("a", 2), ("b", 1))

    def test_copy_is_independent(self):
        vc = VectorClock()
        vc.tick("a")
        other = vc.copy()
        other.tick("a")
        assert vc.as_tuple() == (("a", 1),)
        assert other.as_tuple() == (("a", 2),)

    def test_join_takes_componentwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"y": 4, "z": 2})
        a.join(b)
        assert a.as_tuple() == (("x", 3), ("y", 4), ("z", 2))

    def test_leq_and_concurrent(self):
        lo = VectorClock({"x": 1})
        hi = VectorClock({"x": 2, "y": 1})
        assert lo.leq(hi)
        assert not hi.leq(lo)
        assert not lo.concurrent(hi)
        left = VectorClock({"x": 2})
        right = VectorClock({"y": 2})
        assert left.concurrent(right)
        assert right.concurrent(left)

    def test_empty_clock_leq_everything(self):
        assert VectorClock().leq(VectorClock({"a": 1}))
        assert VectorClock().leq(VectorClock())


class TestHBGraph:
    def test_sequential_fork_join_never_races(self):
        hb = HBGraph()
        hb.fork("t1")
        hb.write("obj", "t1")
        hb.join("t1")
        hb.fork("t2")
        hb.write("obj", "t2")
        hb.join("t2")
        assert list(hb.drain_races()) == []

    def test_concurrent_writes_race(self):
        hb = HBGraph()
        hb.fork("t1")
        hb.fork("t2")
        hb.write("obj", "t1")
        hb.write("obj", "t2")
        races = list(hb.drain_races())
        assert len(races) == 1
        assert races[0].kind == "write/write"
        assert {races[0].first.task, races[0].second.task} == {"t1", "t2"}

    def test_concurrent_write_after_read_races(self):
        hb = HBGraph()
        hb.fork("t1")
        hb.fork("t2")
        hb.read("obj", "t1")
        hb.write("obj", "t2")
        races = list(hb.drain_races())
        assert len(races) == 1
        assert races[0].kind == "write/read"

    def test_coordinator_read_after_join_is_ordered(self):
        hb = HBGraph()
        hb.fork("t1")
        hb.write("obj", "t1")
        hb.join("t1")
        hb.read("obj", HBGraph.COORD)
        assert list(hb.drain_races()) == []

    def test_same_task_never_races_with_itself(self):
        hb = HBGraph()
        hb.fork("t1")
        hb.write("obj", "t1")
        hb.write("obj", "t1")
        hb.read("obj", "t1")
        assert list(hb.drain_races()) == []

    def test_drain_races_empties_the_list(self):
        hb = HBGraph()
        hb.fork("t1")
        hb.fork("t2")
        hb.write("obj", "t1")
        hb.write("obj", "t2")
        assert len(list(hb.drain_races())) == 1
        assert list(hb.drain_races()) == []

    def test_witness_carries_site_and_clock(self):
        hb = HBGraph()
        hb.fork("t1")
        hb.fork("t2")
        hb.write("obj", "t1", site="kernel a")
        hb.write("obj", "t2", site="kernel b")
        (race,) = hb.drain_races()
        assert race.obj == "obj"
        assert race.first.site == "kernel a"
        assert race.second.site == "kernel b"
        assert race.first.clock and race.second.clock

"""The cross-validation matrix: battery proofs and rule coverage."""

import pytest

from repro.lint.rules import ALL_RULES
from repro.san.matrix import (
    BATTERY,
    CROSS_VALIDATION,
    MATRIX_ENGINES,
    MATRIX_EXECUTORS,
    MATRIX_WORKLOADS,
    battery_ok,
    matrix_legs,
    run_battery,
)
from repro.san.report import DETECTORS, detector_ids

pytestmark = pytest.mark.no_reprosan  # the battery installs its own sanitizers


class TestCrossValidation:
    def test_every_mapped_static_rule_exists(self):
        static_ids = {rule.id for rule in ALL_RULES}
        for rep in CROSS_VALIDATION:
            assert rep in static_ids, rep

    def test_every_mapped_detector_exists(self):
        ids = set(detector_ids())
        for san in CROSS_VALIDATION.values():
            assert san in ids, san

    def test_detector_catalogue_agrees_with_matrix(self):
        # DETECTORS.static_rules must be the inverse of CROSS_VALIDATION.
        from_catalogue = {
            rep: d.id for d in DETECTORS for rep in d.static_rules
        }
        assert from_catalogue == CROSS_VALIDATION

    def test_battery_covers_every_mapping(self):
        assert {rule for rule, _, _ in BATTERY} == set(CROSS_VALIDATION)
        for rule, expected, _ in BATTERY:
            assert CROSS_VALIDATION[rule] == expected


class TestBattery:
    def test_full_battery_every_detector_fires_exactly_once(self):
        results = run_battery()
        assert battery_ok(results), [
            (r.rule, r.fired, [v.id for v in r.report.violations])
            for r in results
            if not r.ok
        ]

    def test_fired_violations_carry_witnesses(self):
        for result in run_battery():
            (violation,) = result.report.violations
            assert violation.id == result.expected
            assert violation.witness, result.rule

    def test_battery_select_subset(self):
        results = run_battery(("REP102", "REP202"))
        assert [r.rule for r in results] == ["REP102", "REP202"]
        assert battery_ok(results)


class TestMatrixShape:
    def test_leg_enumeration_is_the_full_product(self):
        legs = matrix_legs()
        assert len(legs) == (
            len(MATRIX_WORKLOADS) * len(MATRIX_ENGINES) * len(MATRIX_EXECUTORS)
        )
        assert len(set(legs)) == len(legs)

    def test_matrix_covers_all_engines_and_executors(self):
        assert set(MATRIX_ENGINES) == {"hadoop", "hop", "onepass"}
        assert "serial" in MATRIX_EXECUTORS
        assert any(x.startswith("threads") for x in MATRIX_EXECUTORS)
        assert any(x.startswith("processes") for x in MATRIX_EXECUTORS)

"""End-to-end tests for ``repro sanitize``."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
ENV = {**os.environ, "PYTHONPATH": str(SRC)}

pytestmark = pytest.mark.no_reprosan  # subprocesses install their own sanitizers


def run_cli(*argv, cwd=ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro", "sanitize", *argv],
        cwd=cwd,
        env=ENV,
        capture_output=True,
        text=True,
    )


class TestBatteryCommand:
    def test_battery_select_subset_exits_zero(self):
        proc = run_cli("--battery", "--select", "REP102,REP202")
        assert proc.returncode == 0, proc.stderr
        assert "REP102 -> SAN102  fired 1  [ok]" in proc.stdout
        assert "REP202 -> SAN202  fired 1  [ok]" in proc.stdout
        assert "battery: all 2 detector(s) fired exactly once" in proc.stdout


class TestSingleLeg:
    def test_clean_leg_terminal_format(self):
        proc = run_cli(
            "--workload", "per-user-count", "--engine", "onepass",
            "--records", "300",
        )
        assert proc.returncode == 0, proc.stderr
        assert "sanitizer-clean: no violations" in proc.stdout

    def test_clean_leg_json_format(self):
        proc = run_cli(
            "--workload", "per-user-count", "--engine", "hadoop",
            "--records", "300", "--format", "json",
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["schema"] == "repro.san-report/v1"
        assert payload["violations"] == []
        assert set(payload["detectors"]) == {"sentinel", "race", "resource", "pickle"}

    def test_clean_leg_sarif_format_carries_full_catalogue(self):
        proc = run_cli(
            "--workload", "per-user-count", "--engine", "hop",
            "--records", "300", "--format", "sarif",
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        (run,) = doc["runs"]
        ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        # Shared catalogue: dynamic detectors AND every static rule.
        assert {"SAN001", "SAN201", "SAN103", "SAN102"} <= ids
        assert {"REP001", "REP201", "REP103", "REP102"} <= ids
        assert run["results"] == []

    def test_detector_subset_flag(self):
        proc = run_cli(
            "--workload", "per-user-count", "--engine", "onepass",
            "--records", "300", "--detectors", "race,resource",
            "--format", "json",
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert set(payload["detectors"]) == {"race", "resource"}

    def test_workload_required_without_battery_or_matrix(self):
        proc = run_cli()
        assert proc.returncode != 0
        assert "--workload is required" in proc.stderr


class TestMatrixCommand:
    def test_single_leg_matrix_against_committed_baseline(self):
        # The committed baseline pins records=2000; restrict to one leg
        # to keep this in tier-1 time.
        proc = run_cli(
            "--matrix", "--workload", "per-user-count",
            "--engine", "onepass", "--executor", "serial",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "ok   per-user-count/onepass/serial" in proc.stdout
        assert "matrix: all 1 leg(s) sanitizer-clean and byte-identical" in proc.stdout

    def test_write_baseline_roundtrip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        common = (
            "--matrix", "--workload", "per-user-count", "--engine", "hadoop",
            "--executor", "serial", "--records", "300",
            "--baseline", str(baseline),
        )
        proc = run_cli(*common, "--write-baseline")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == "repro.san-baseline/v1"
        assert list(payload["legs"]) == ["per-user-count/hadoop/serial"]
        # Re-run against the fresh baseline: digests must match.
        proc = run_cli(*common)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_baseline_drift_fails(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": "repro.san-baseline/v1",
                    "records": 300,
                    "nodes": 3,
                    "legs": {"per-user-count/hadoop/serial": "0" * 64},
                }
            )
        )
        proc = run_cli(
            "--matrix", "--workload", "per-user-count", "--engine", "hadoop",
            "--executor", "serial", "--records", "300",
            "--baseline", str(baseline),
        )
        assert proc.returncode == 1
        assert "drifted" in proc.stdout

"""Every example script must run clean — they are the adoption surface."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = pathlib.Path(__file__).parent.parent / "examples" / script
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "clickstream_sessionization.py",
        "online_aggregation.py",
        "inverted_index_onepass.py",
        "cluster_simulation.py",
        "stream_trending.py",
        "graph_analytics.py",
    } <= set(EXAMPLES)

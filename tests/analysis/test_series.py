"""Series shape helpers: sparkline, valley finding, window means."""

import numpy as np
import pytest

from repro.analysis.series import (
    find_valley,
    peak_time,
    sparkline,
    valley_depth,
    window_mean,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"

    def test_downsampling_to_width(self):
        s = sparkline(list(range(1000)), width=50)
        assert len(s) == 50


class TestWindowMean:
    def test_basic(self):
        times = np.arange(10.0)
        values = np.arange(10.0)
        assert window_mean(times, values, 2, 5) == pytest.approx(3.0)

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            window_mean(np.arange(5.0), np.arange(5.0), 100, 200)


class TestValley:
    def test_finds_interior_minimum(self):
        times = np.arange(100.0)
        values = np.ones(100)
        values[40:60] = 0.1  # the merge valley
        t, v = find_valley(times, values)
        assert 35 <= t <= 65
        assert v < 0.3

    def test_margin_excludes_edges(self):
        times = np.arange(100.0)
        values = np.ones(100)
        values[0] = 0.0  # startup ramp, not a valley
        values[50] = 0.5
        t, _ = find_valley(times, values, smooth=1)
        assert 45 <= t <= 55

    def test_valley_depth_zero_for_flat(self):
        times = np.arange(50.0)
        assert valley_depth(times, np.ones(50)) == pytest.approx(0.0, abs=1e-9)

    def test_valley_depth_positive_for_dip(self):
        times = np.arange(100.0)
        values = np.ones(100)
        values[45:55] = 0.0
        assert valley_depth(times, values) > 0.5


class TestPeak:
    def test_peak_time(self):
        times = np.arange(10.0) * 5
        values = np.zeros(10)
        values[7] = 3.0
        assert peak_time(times, values) == 35.0

"""Series/timeline export for external plotting."""

import json

import pytest

from repro.analysis.export import run_to_json, series_csv, timeline_csv, write_run_bundle
from repro.simulator.calibration import GB, SESSIONIZATION, ClusterSpec
from repro.simulator.pipelines import HadoopPipeline


@pytest.fixture(scope="module")
def run():
    return HadoopPipeline(
        ClusterSpec(reducers=4), SESSIONIZATION.scaled(4 * GB), metric_bucket=5.0
    ).run()


class TestCsv:
    def test_series_csv_shape(self, run):
        lines = series_csv(run).strip().splitlines()
        assert lines[0].startswith("time_s,")
        assert len(lines) == len(run.series.times) + 1
        first = lines[1].split(",")
        assert len(first) == 5
        float(first[0])  # parseable

    def test_timeline_csv_counts_spans(self, run):
        lines = timeline_csv(run.task_log).strip().splitlines()
        assert len(lines) == len(run.task_log.spans) + 1
        assert lines[0] == "phase,start_s,end_s,node,task_id"

    def test_timeline_sorted_by_start(self, run):
        lines = timeline_csv(run.task_log).strip().splitlines()[1:]
        starts = [float(line.split(",")[1]) for line in lines]
        assert starts == sorted(starts)


class TestJson:
    def test_bundle_fields(self, run):
        bundle = run_to_json(run)
        assert bundle["engine"] == "hadoop"
        assert bundle["workload"] == "sessionization"
        assert bundle["makespan_s"] == run.makespan
        assert bundle["spec"]["reducers"] == 4
        assert "map" in bundle["phase_windows"]
        assert len(bundle["series"]["times"]) == len(run.series.times)
        # must be JSON-serialisable end to end
        json.dumps(bundle)

    def test_totals_roundtrip(self, run):
        bundle = run_to_json(run)
        assert bundle["totals"]["shuffle_bytes"] == run.totals.shuffle_bytes


class TestWriteBundle:
    def test_writes_three_files(self, run, tmp_path):
        paths = write_run_bundle(run, str(tmp_path))
        assert len(paths) == 3
        names = sorted(p.rsplit("/", 1)[-1] for p in paths)
        assert names == [
            "sessionization-hadoop.json",
            "sessionization-hadoop.series.csv",
            "sessionization-hadoop.timeline.csv",
        ]
        with open(paths[2], encoding="utf-8") as fh:
            json.load(fh)

    def test_custom_stem(self, run, tmp_path):
        paths = write_run_bundle(run, str(tmp_path), stem="fig2")
        assert all("fig2" in p for p in paths)

"""Engine comparison metrics and CPU-split extraction."""

import pytest

from repro.analysis.compare import (
    attributed_cpu,
    compare_results,
    cpu_split,
    ratio,
)
from repro.analysis.report import ExperimentReport
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.runtime import JobResult


def result_with(engine, wall, **counter_values):
    counters = Counters()
    for name, value in counter_values.items():
        counters.inc(getattr(C, name), value)
    return JobResult(
        job_name="j",
        engine=engine,
        output_path="out",
        counters=counters,
        wall_time=wall,
    )


class TestCpuSplit:
    def test_shares(self):
        c = Counters()
        c.inc(C.T_MAP_FN, 6.1)
        c.inc(C.T_SORT, 3.9)
        split = cpu_split(c, include_parse=False)
        assert split.map_fn_share == pytest.approx(0.61)
        assert split.sort_share == pytest.approx(0.39)
        assert split.total == pytest.approx(10.0)

    def test_parse_included_by_default(self):
        c = Counters()
        c.inc(C.T_MAP_FN, 1.0)
        c.inc(C.T_PARSE, 1.0)
        c.inc(C.T_SORT, 2.0)
        assert cpu_split(c).map_fn_seconds == pytest.approx(2.0)

    def test_empty_counters(self):
        split = cpu_split(Counters())
        assert split.map_fn_share == 0.0


class TestRatio:
    def test_normal(self):
        assert ratio(2, 4) == 0.5

    def test_zero_baseline(self):
        assert ratio(0, 0) == 1.0
        assert ratio(5, 0) == float("inf")


class TestCompareResults:
    def test_savings_computed(self):
        base = result_with("hadoop", 10.0, T_MAP_FN=4, T_SORT=4, REDUCE_SPILL_BYTES=1000)
        cand = result_with("onepass", 5.0, T_MAP_FN=4, T_HASH=0.5, REDUCE_SPILL_BYTES=1)
        cmp = compare_results(base, cand)
        assert cmp.time_saving == pytest.approx(0.5)
        assert cmp.cpu_saving == pytest.approx(1 - 4.5 / 8)
        assert cmp.spill_reduction == pytest.approx(1000.0)
        assert "onepass vs hadoop" in cmp.describe()

    def test_spill_elimination(self):
        base = result_with("hadoop", 10.0, REDUCE_SPILL_BYTES=1000)
        cand = result_with("onepass", 8.0)
        cmp = compare_results(base, cand)
        assert cmp.spill_reduction == float("inf")
        assert "eliminated" in cmp.describe()

    def test_attributed_cpu_sums_timers(self):
        c = Counters()
        c.inc(C.T_MAP_FN, 1)
        c.inc(C.T_SORT, 2)
        c.inc(C.T_REDUCE_FN, 3)
        assert attributed_cpu(c) == 6


class TestExperimentReport:
    def test_render_and_holds(self):
        report = ExperimentReport("T2", "CPU split", setup="sessionization")
        report.observe("sort share", "39%", "41%", holds=True)
        report.note("measured on the real engine")
        text = report.render()
        assert "T2" in text and "39%" in text and "41%" in text
        assert report.all_hold
        assert "ALL SHAPES HOLD" in text

    def test_failure_flagged(self):
        report = ExperimentReport("X", "t", setup="s")
        report.observe("m", "up", "down", holds=False)
        assert not report.all_hold
        assert "SHAPE MISMATCH" in report.render()

"""Table rendering and humanised units."""

import pytest

from repro.analysis.tables import format_kv, format_table, human_bytes, human_time


class TestHumanUnits:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.00 KB"),
            (1536, "1.50 KB"),
            (1024**2, "1.00 MB"),
            (370 * 1024**3, "370.00 GB"),
        ],
    )
    def test_human_bytes(self, n, expected):
        assert human_bytes(n) == expected

    @pytest.mark.parametrize(
        "s,expected", [(12, "12.0 s"), (59.9, "59.9 s"), (90, "1.5 min"), (4560, "76.0 min")]
    )
    def test_human_time(self, s, expected):
        assert human_time(s) == expected


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(("name", "value"), [("a", 1), ("long-name", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        out = format_table(("a",), [(1,)], title="Table I")
        assert out.splitlines()[0] == "Table I"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_float_formatting(self):
        out = format_table(("x",), [(0.123456,), (1234567.0,), (0.0,)])
        assert "0.123" in out
        assert "1.23e+06" in out

    def test_kv_block(self):
        out = format_kv({"wall": 1.5, "bytes": 42})
        assert "wall" in out and "bytes" in out

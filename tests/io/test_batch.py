"""RecordBatch framing edge cases: the zero-copy contract under stress.

The batch wire format extends the PR 2 framing; the risky edges are the
degenerate batches (empty, single record), payloads straddling frame
boundaries after truncation, and the lifetime of exported memoryviews
once the backing batch has been spilled and dropped.
"""

import pickle

import pytest

from repro.io.batch import RecordBatch, fanout_pairs, merge_segments, sort_bucket
from repro.io.disk import LocalDisk
from repro.io.serialization import encode_frames
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.partition import hash_partitioner

PAIRS = [("b", 2), ("a", {"nested": [1, 2]}), ("c", None), ("a", "second-a")]


class TestDegenerateBatches:
    def test_empty_batch(self):
        batch = RecordBatch.from_pairs([])
        assert len(batch) == 0
        assert batch.to_pairs() == []
        assert batch.value_bytes == 0
        assert RecordBatch.decode(batch.encode()).to_pairs() == []
        assert len(batch.sorted_by_key()) == 0
        assert all(len(b) == 0 for b in batch.fanout(hash_partitioner, 4))

    def test_single_record_batch(self):
        batch = RecordBatch.from_pairs([("only", (1, "x"))])
        assert len(batch) == 1
        assert batch.pair_at(0) == ("only", (1, "x"))
        decoded = RecordBatch.decode(batch.encode())
        assert decoded.to_pairs() == [("only", (1, "x"))]
        buckets = batch.fanout(hash_partitioner, 3)
        assert sum(len(b) for b in buckets) == 1

    def test_roundtrip_preserves_order_and_values(self):
        batch = RecordBatch.from_pairs(PAIRS)
        assert RecordBatch.decode(batch.encode()).to_pairs() == PAIRS

    def test_encode_pairs_matches_pr2_framing(self):
        batch = RecordBatch.from_pairs(PAIRS)
        assert batch.encode_pairs() == encode_frames(PAIRS)


class TestZeroCopy:
    def test_select_and_fanout_share_the_value_buffer(self):
        batch = RecordBatch.from_pairs(PAIRS)
        selected = batch.select([2, 0])
        assert selected._values is batch._values
        for bucket in batch.fanout(hash_partitioner, 4):
            assert bucket._values is batch._values
        assert selected.to_pairs() == [PAIRS[2], PAIRS[0]]

    def test_decode_references_the_input_buffer(self):
        """Decoding must not copy payloads: corrupting the encoded buffer
        afterwards is visible through the decoded batch."""
        data = bytearray(RecordBatch.from_pairs([("k", "payload")]).encode())
        batch = RecordBatch.decode(data)
        assert batch.value_at(0) == "payload"
        offset = len(data) - batch._lengths[0]
        data[offset:] = b"\x00" * batch._lengths[0]
        with pytest.raises(pickle.UnpicklingError):
            batch.value_at(0)

    def test_stable_sort_keeps_arrival_order_for_equal_keys(self):
        batch = RecordBatch.from_pairs(PAIRS).sorted_by_key()
        assert batch.to_pairs() == [
            ("a", {"nested": [1, 2]}),
            ("a", "second-a"),
            ("b", 2),
            ("c", None),
        ]


class TestFrameBoundaryStraddling:
    """Every truncation point — mid-header, mid-key, mid-value — must be
    detected, never silently produce a short batch."""

    def test_truncations_raise_at_every_boundary(self):
        data = RecordBatch.from_pairs(PAIRS).encode()
        assert len(RecordBatch.decode(data)) == len(PAIRS)
        for cut in (0, 2, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(ValueError):
                RecordBatch.decode(data[:cut])

    def test_key_value_count_mismatch_detected(self):
        batch = RecordBatch.from_pairs([("k1", 1), ("k2", 2)])
        data = bytearray(batch.encode())
        # Drop the last value frame entirely: counts no longer agree.
        last_len = batch._lengths[-1]
        del data[len(data) - last_len - 4 :]
        with pytest.raises(ValueError, match="keys but"):
            RecordBatch.decode(bytes(data))


class TestMemoryviewLifetime:
    def test_views_survive_batch_release_after_spill(self):
        """`from_pairs` freezes its buffer, so views handed out before a
        spill stay valid after the batch object itself is dropped."""
        batch = RecordBatch.from_pairs(PAIRS)
        views = [batch.value_view(i) for i in range(len(batch))]
        disk = LocalDisk(name="spill-test")
        disk.write("spill/batch-0", batch.encode())
        del batch
        assert [pickle.loads(v) for v in views] == [v for _k, v in PAIRS]

    def test_torn_spill_write_is_detected_on_decode(self):
        """Under LocalDisk fault injection a torn spill page truncates the
        batch mid-frame; decode must raise, not hand back partial rows."""
        disk = LocalDisk(name="faulty")
        disk.fault_injector = FaultPlan(torn_writes={"spill": 1})
        data = RecordBatch.from_pairs(PAIRS).encode()
        disk.write("spill/batch-0", data)
        stored = disk.read("spill/batch-0")
        assert len(stored) < len(data)  # the torn page landed short
        with pytest.raises(ValueError):
            RecordBatch.decode(stored)
        # An untouched path on the same disk still round-trips.
        disk.write("clean/batch-0", data)
        assert RecordBatch.decode(disk.read("clean/batch-0")).to_pairs() == PAIRS


class TestPlainListHelpers:
    def test_fanout_matches_tuple_path_partitioning(self):
        pairs = [(f"k{i % 7}", i) for i in range(100)]
        buckets = fanout_pairs(pairs, hash_partitioner, 4)
        assert sum(len(b) for b in buckets) == len(pairs)
        for p, bucket in enumerate(buckets):
            assert all(hash_partitioner(k, 4) == p for k, _ in bucket)
        # Arrival order is preserved within each bucket.
        for bucket in buckets:
            order = [v for _k, v in bucket]
            assert order == sorted(order)

    def test_sorted_buckets_concatenate_to_global_sort(self):
        pairs = [(f"k{(i * 13) % 7}", i) for i in range(100)]
        tagged = sorted(
            ((hash_partitioner(k, 4), k, v) for k, v in pairs),
            key=lambda r: (r[0], r[1]),
        )
        buckets = fanout_pairs(pairs, hash_partitioner, 4)
        flat = [
            (p, k, v)
            for p, bucket in enumerate(buckets)
            for k, v in sort_bucket(bucket)
        ]
        assert flat == tagged

    def test_merge_segments_matches_heap_merge(self):
        import heapq

        segments = [
            sorted((f"k{(i * 7 + s) % 11}", (s, i)) for i in range(40))
            for s in range(3)
        ]
        assert merge_segments(segments) == list(heapq.merge(*segments))

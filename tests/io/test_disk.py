"""LocalDisk semantics and accounting."""

import pytest

from repro.io.device import DeviceProfile, HDD_7200RPM
from repro.io.disk import DiskFullError, DiskStats, LocalDisk


class TestBasicOperations:
    def test_write_read_roundtrip(self, disk):
        disk.write("a", b"hello")
        assert disk.read("a") == b"hello"

    def test_append_accumulates(self, disk):
        disk.append("a", b"one")
        disk.append("a", b"two")
        assert disk.read("a") == b"onetwo"

    def test_append_creates_missing_file(self, disk):
        disk.append("fresh", b"x")
        assert disk.exists("fresh")

    def test_create_empty(self, disk):
        disk.create("empty")
        assert disk.size("empty") == 0
        assert disk.read("empty") == b""

    def test_create_existing_raises(self, disk):
        disk.create("a")
        with pytest.raises(FileExistsError):
            disk.create("a")
        disk.create("a", overwrite=True)  # explicit overwrite allowed

    def test_write_no_overwrite_raises(self, disk):
        disk.write("a", b"1")
        with pytest.raises(FileExistsError):
            disk.write("a", b"2", overwrite=False)

    def test_read_missing_raises(self, disk):
        with pytest.raises(FileNotFoundError):
            disk.read("ghost")

    def test_delete(self, disk):
        disk.write("a", b"1")
        disk.delete("a")
        assert not disk.exists("a")
        with pytest.raises(FileNotFoundError):
            disk.delete("a")

    def test_delete_prefix(self, disk):
        for name in ("spill/1", "spill/2", "out/1"):
            disk.write(name, b"x")
        assert disk.delete_prefix("spill/") == 2
        assert disk.list_files() == ["out/1"]

    def test_rename(self, disk):
        disk.write("src", b"payload")
        disk.rename("src", "dst")
        assert not disk.exists("src")
        assert disk.read("dst") == b"payload"

    def test_rename_over_existing_raises(self, disk):
        disk.write("a", b"1")
        disk.write("b", b"2")
        with pytest.raises(FileExistsError):
            disk.rename("a", "b")

    def test_list_files_sorted_and_filtered(self, disk):
        for name in ("b", "a", "ab"):
            disk.write(name, b"x")
        assert disk.list_files() == ["a", "ab", "b"]
        assert disk.list_files("a") == ["a", "ab"]

    def test_used_tracks_total_bytes(self, disk):
        disk.write("a", b"12345")
        disk.write("b", b"1")
        assert disk.used() == 6
        disk.delete("a")
        assert disk.used() == 1


class TestRangeAndStreaming:
    def test_read_range(self, disk):
        disk.write("a", b"0123456789")
        assert disk.read_range("a", 2, 3) == b"234"
        assert disk.read_range("a", 8, 100) == b"89"

    def test_read_range_bad_offset(self, disk):
        disk.write("a", b"123")
        with pytest.raises(ValueError):
            disk.read_range("a", -1, 1)
        with pytest.raises(ValueError):
            disk.read_range("a", 4, 1)

    def test_stream_reassembles(self, disk):
        payload = bytes(range(256)) * 40
        disk.write("a", payload)
        assert b"".join(disk.stream("a", chunk_size=1000)) == payload

    def test_stream_bad_chunk(self, disk):
        disk.write("a", b"x")
        with pytest.raises(ValueError):
            list(disk.stream("a", chunk_size=0))

    def test_peek_is_unaccounted(self, disk):
        disk.write("a", b"hello")
        before = disk.stats.bytes_read
        assert disk.peek("a") == b"hello"
        assert disk.stats.bytes_read == before


class TestAccounting:
    def test_bytes_and_ops_counted(self, disk):
        disk.write("a", b"12345")
        disk.read("a")
        assert disk.stats.bytes_written == 5
        assert disk.stats.bytes_read == 5
        assert disk.stats.write_ops == 1
        assert disk.stats.read_ops == 1

    def test_sequential_vs_random_classification(self, disk):
        disk.append("a", b"1")   # random (first touch)
        disk.append("a", b"2")   # sequential (same file)
        disk.append("b", b"3")   # random (switch)
        disk.append("a", b"4")   # random (switch back)
        assert disk.stats.sequential_ops == 1
        assert disk.stats.random_ops == 3

    def test_busy_time_uses_profile(self):
        profile = DeviceProfile("slow", seq_bandwidth=100, seek_time=0.5, capacity=10_000)
        d = LocalDisk(profile)
        d.write("a", b"x" * 100)  # random: 1s transfer + 0.5s seek
        assert d.stats.busy_time == pytest.approx(1.5)
        d.append("a", b"x" * 100)  # sequential: 1s
        assert d.stats.busy_time == pytest.approx(2.5)

    def test_snapshot_and_delta(self, disk):
        disk.write("a", b"12345")
        snap = disk.stats.snapshot()
        disk.read("a")
        delta = disk.stats.delta(snap)
        assert delta.bytes_read == 5
        assert delta.bytes_written == 0
        # snapshot is independent of later activity
        assert snap.bytes_read == 0

    def test_total_properties(self):
        s = DiskStats(bytes_read=3, bytes_written=4, read_ops=1, write_ops=2)
        assert s.total_bytes == 7
        assert s.total_ops == 3


class TestCapacity:
    def test_capacity_enforced(self):
        profile = DeviceProfile("tiny", seq_bandwidth=1e6, seek_time=0, capacity=10)
        d = LocalDisk(profile)
        d.write("a", b"x" * 10)
        with pytest.raises(DiskFullError):
            d.append("a", b"y")

    def test_delete_frees_capacity(self):
        profile = DeviceProfile("tiny", seq_bandwidth=1e6, seek_time=0, capacity=10)
        d = LocalDisk(profile)
        d.write("a", b"x" * 10)
        d.delete("a")
        d.write("b", b"y" * 10)
        assert d.read("b") == b"y" * 10

    def test_hdd_profile_has_room(self):
        d = LocalDisk(HDD_7200RPM)
        d.write("a", b"x" * 1_000_000)
        assert d.used() == 1_000_000

"""Run writers/readers over LocalDisk."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.disk import LocalDisk
from repro.io.runio import RunWriter, read_run, stream_run, write_run

pairs = st.lists(
    st.tuples(st.integers(-1000, 1000), st.text(max_size=20)), max_size=200
)


class TestRunWriter:
    def test_roundtrip(self, disk):
        items = [(i, f"v{i}") for i in range(100)]
        nbytes = write_run(disk, "run0", items)
        assert nbytes > 0
        assert read_run(disk, "run0") == items

    def test_stream_matches_read(self, disk):
        items = [(i, "x" * (i % 7)) for i in range(500)]
        write_run(disk, "run0", items)
        assert list(stream_run(disk, "run0", chunk_size=256)) == items

    def test_empty_run(self, disk):
        write_run(disk, "empty", [])
        assert read_run(disk, "empty") == []
        assert list(stream_run(disk, "empty")) == []

    def test_counts(self, disk):
        with RunWriter(disk, "run0") as w:
            w.write_all(range(10))
        assert w.records_written == 10
        assert w.bytes_written == disk.size("run0")

    def test_write_after_close_raises(self, disk):
        w = RunWriter(disk, "run0")
        w.close()
        with pytest.raises(ValueError):
            w.write(1)

    def test_flush_batches_disk_ops(self, disk):
        # With a large flush threshold the whole run is one disk append.
        before = disk.stats.write_ops
        write_run(disk, "run0", range(1000))
        assert disk.stats.write_ops - before <= 2  # create() doesn't count

    def test_small_flush_threshold_multiple_appends(self, disk):
        w = RunWriter(disk, "run0", flush_bytes=64)
        before = disk.stats.write_ops
        w.write_all(range(100))
        w.close()
        assert disk.stats.write_ops - before > 5

    def test_overwrites_previous_run(self, disk):
        write_run(disk, "run0", [1, 2, 3])
        write_run(disk, "run0", [4])
        assert read_run(disk, "run0") == [4]

    @given(pairs)
    @settings(max_examples=30)
    def test_property_roundtrip(self, items):
        disk = LocalDisk()
        write_run(disk, "r", items)
        assert list(stream_run(disk, "r", chunk_size=128)) == items

    def test_stream_detects_truncation(self, disk):
        write_run(disk, "r", [("key", "value" * 50)])
        data = disk.read("r")
        disk.write("r", data[: len(data) - 3], overwrite=True)
        with pytest.raises(ValueError):
            list(stream_run(disk, "r"))

"""SpillManager lifecycle and totals."""

import pytest

from repro.io.spill import SpillManager


class TestSpillManager:
    def test_spill_and_stream(self, disk):
        mgr = SpillManager(disk, "map-0001")
        sf = mgr.spill([("a", 1), ("b", 2)], tag="sorted")
        assert sf.records == 2
        assert sf.nbytes > 0
        assert list(mgr.stream(sf)) == [("a", 1), ("b", 2)]

    def test_paths_are_namespaced_and_unique(self, disk):
        mgr = SpillManager(disk, "task-7")
        a = mgr.spill([1])
        b = mgr.spill([2])
        assert a.path != b.path
        assert a.path.startswith("task-7/")
        assert b.path.startswith("task-7/")

    def test_totals_accumulate(self, disk):
        mgr = SpillManager(disk, "t")
        mgr.spill(range(10))
        mgr.spill(range(5))
        assert mgr.total_spilled_records == 15
        assert mgr.total_spilled_bytes == sum(s.nbytes for s in mgr.spills)
        assert len(mgr) == 2

    def test_remove_keeps_historical_totals(self, disk):
        mgr = SpillManager(disk, "t")
        sf = mgr.spill(range(10))
        total = mgr.total_spilled_bytes
        mgr.remove(sf)
        assert mgr.total_spilled_bytes == total
        assert mgr.live_bytes == 0
        assert not disk.exists(sf.path)

    def test_clear_removes_all_files(self, disk):
        mgr = SpillManager(disk, "t")
        for _ in range(3):
            mgr.spill(range(3))
        mgr.clear()
        assert len(mgr) == 0
        assert disk.list_files("t/") == []

    def test_explicit_count_for_generators(self, disk):
        mgr = SpillManager(disk, "t")
        sf = mgr.spill((x for x in range(7)), count=7)
        assert sf.records == 7
        assert list(mgr.stream(sf)) == list(range(7))

    def test_tag_recorded_in_path_and_spillfile(self, disk):
        mgr = SpillManager(disk, "t")
        sf = mgr.spill([1], tag="mem")
        assert sf.tag == "mem"
        assert sf.path.endswith(".mem")

    def test_remove_unknown_spill_raises(self, disk):
        mgr1 = SpillManager(disk, "a")
        mgr2 = SpillManager(disk, "b")
        sf = mgr1.spill([1])
        with pytest.raises(ValueError):
            mgr2.remove(sf)

"""Framing, codecs and size estimation — including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.serialization import (
    BinaryCodec,
    TextLineCodec,
    encode_frames,
    estimate_size,
    frame_count,
    iter_frames,
)

# Picklable scalar values for framing round-trips.
scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.booleans(),
    st.none(),
)
values = st.one_of(scalars, st.tuples(scalars, scalars), st.lists(scalars, max_size=5))


class TestFrames:
    def test_empty(self):
        assert encode_frames([]) == b""
        assert list(iter_frames(b"")) == []
        assert frame_count(b"") == 0

    @given(st.lists(values, max_size=50))
    @settings(max_examples=60)
    def test_roundtrip(self, items):
        data = encode_frames(items)
        assert list(iter_frames(data)) == items
        assert frame_count(data) == len(items)

    def test_truncated_header_rejected(self):
        data = encode_frames([1, 2])
        with pytest.raises(ValueError):
            list(iter_frames(data[:-1] + b""))  # cut into last payload
        with pytest.raises(ValueError):
            list(iter_frames(data + b"\x01"))  # dangling header byte

    def test_frame_count_rejects_trailing_garbage(self):
        data = encode_frames([1])
        with pytest.raises(Exception):
            frame_count(data + b"\xff\xff\xff\xff")


class TestTextLineCodec:
    def codec(self):
        return TextLineCodec((float, int, str))

    def test_roundtrip(self):
        codec = self.codec()
        records = [(1.5, 7, "/a"), (2.25, 8, "/b/c")]
        assert list(codec.decode(codec.encode(records))) == records

    def test_empty_encode(self):
        assert self.codec().encode([]) == b""
        assert list(self.codec().decode(b"")) == []

    def test_field_count_mismatch_on_encode(self):
        with pytest.raises(ValueError):
            self.codec().encode([(1.0, 2)])

    def test_malformed_line_on_decode(self):
        with pytest.raises(ValueError):
            list(self.codec().decode(b"only\ttwo\n"))

    def test_custom_delimiter(self):
        codec = TextLineCodec((int, str), delimiter=",")
        assert list(codec.decode(b"3,x\n")) == [(3, "x")]

    def test_empty_parsers_rejected(self):
        with pytest.raises(ValueError):
            TextLineCodec(())

    def test_skips_blank_lines(self):
        codec = TextLineCodec((int,))
        assert list(codec.decode(b"1\n\n2\n")) == [(1,), (2,)]


class TestBinaryCodec:
    @given(st.lists(values, max_size=30))
    @settings(max_examples=40)
    def test_roundtrip(self, records):
        codec = BinaryCodec()
        assert list(codec.decode(codec.encode(records))) == records

    def test_binary_beats_text_on_parse_free_decode(self):
        # Not a performance assertion — just that both decode identically
        # shaped records so the parsing-cost experiment is apples-to-apples.
        records = [(1.0, 2, "/x")] * 10
        text = TextLineCodec((float, int, str))
        binary = BinaryCodec()
        assert list(text.decode(text.encode(records))) == list(
            binary.decode(binary.encode(records))
        )


class TestEstimateSize:
    def test_scalars_positive(self):
        for obj in (0, 1.5, True, None, "abc", b"xyz"):
            assert estimate_size(obj) > 0

    def test_string_scales_with_length(self):
        assert estimate_size("x" * 100) > estimate_size("x")

    def test_containers_include_elements(self):
        assert estimate_size([1, 2, 3]) > estimate_size([])
        assert estimate_size({"a": 1}) > estimate_size({})
        assert estimate_size((1, "abc")) > estimate_size((1,))
        assert estimate_size({1, 2}) > estimate_size(set())

    def test_deep_nesting_terminates(self):
        nested = [[[[[1] * 10] * 5] * 3]]
        assert estimate_size(nested) > 0

    @given(values)
    @settings(max_examples=60)
    def test_never_negative_or_zero(self, obj):
        assert estimate_size(obj) > 0

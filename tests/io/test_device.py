"""Device-profile arithmetic and validation."""

import pytest

from repro.io.device import HDD_7200RPM, RAMDISK, SSD_SATA, DeviceProfile, transfer_time


class TestDeviceProfile:
    def test_sequential_transfer_is_bandwidth_limited(self):
        t = transfer_time(HDD_7200RPM, HDD_7200RPM.seq_bandwidth)  # 1 second of data
        assert t == pytest.approx(1.0)

    def test_random_transfer_adds_seek(self):
        seq = transfer_time(HDD_7200RPM, 1024, sequential=True)
        rnd = transfer_time(HDD_7200RPM, 1024, sequential=False)
        assert rnd == pytest.approx(seq + HDD_7200RPM.seek_time)

    def test_zero_bytes_sequential_is_free(self):
        assert transfer_time(SSD_SATA, 0) == 0.0

    def test_zero_bytes_random_still_seeks(self):
        assert transfer_time(HDD_7200RPM, 0, sequential=False) == pytest.approx(
            HDD_7200RPM.seek_time
        )

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(HDD_7200RPM, -1)

    def test_io_time_method_matches_function(self):
        assert HDD_7200RPM.io_time(4096, sequential=False) == transfer_time(
            HDD_7200RPM, 4096, sequential=False
        )

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", seq_bandwidth=0, seek_time=0, capacity=1)
        with pytest.raises(ValueError):
            DeviceProfile("bad", seq_bandwidth=1, seek_time=-1, capacity=1)
        with pytest.raises(ValueError):
            DeviceProfile("bad", seq_bandwidth=1, seek_time=0, capacity=0)

    def test_builtin_profiles_ordering(self):
        # SSD is faster than HDD both sequentially and randomly; RAM beats both.
        assert SSD_SATA.seq_bandwidth > HDD_7200RPM.seq_bandwidth
        assert SSD_SATA.seek_time < HDD_7200RPM.seek_time
        assert RAMDISK.seq_bandwidth > SSD_SATA.seq_bandwidth

    def test_profiles_are_hashable_and_frozen(self):
        assert hash(HDD_7200RPM) != hash(SSD_SATA)
        with pytest.raises(AttributeError):
            HDD_7200RPM.seek_time = 0.0  # type: ignore[misc]

"""HDFS facade: record writes, block packing, splits, reads."""

import pytest

from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HDFS
from repro.io.disk import LocalDisk
from repro.io.serialization import TextLineCodec


def make_hdfs(num_nodes=3, block_size=4096, replication=1):
    disks = {f"n{i}": LocalDisk(name=f"n{i}") for i in range(num_nodes)}
    datanodes = {name: DataNode(name, disk) for name, disk in disks.items()}
    return HDFS(datanodes, replication=replication, block_size=block_size), disks


class TestWriteRead:
    def test_roundtrip(self):
        hdfs, _ = make_hdfs()
        records = [(i, f"value-{i}") for i in range(500)]
        hdfs.write_records("f", records)
        assert list(hdfs.read_records("f")) == records

    def test_multiple_blocks_created(self):
        hdfs, _ = make_hdfs(block_size=2048)
        hdfs.write_records("f", [(i, "x" * 50) for i in range(400)])
        assert len(hdfs.namenode.blocks_of("f")) > 1

    def test_block_records_sum_to_total(self):
        hdfs, _ = make_hdfs(block_size=2048)
        hdfs.write_records("f", [(i,) for i in range(300)])
        assert hdfs.file_records("f") == 300
        assert hdfs.file_bytes("f") == sum(
            b.nbytes for b in hdfs.namenode.blocks_of("f")
        )

    def test_empty_file(self):
        hdfs, _ = make_hdfs()
        hdfs.write_records("f", [])
        assert list(hdfs.read_records("f")) == []
        assert hdfs.input_splits("f") == []

    def test_text_codec_roundtrip(self):
        hdfs, _ = make_hdfs()
        codec = TextLineCodec((float, int, str), name="clicks")
        records = [(1.5, 2, "/a"), (2.5, 3, "/b")]
        hdfs.write_records("f", records, codec=codec)
        assert list(hdfs.read_records("f")) == records
        assert hdfs.namenode.file_info("f").codec_name == "clicks"

    def test_duplicate_path_raises(self):
        hdfs, _ = make_hdfs()
        hdfs.write_records("f", [1])
        with pytest.raises(FileExistsError):
            hdfs.write_records("f", [2])

    def test_append_block(self):
        hdfs, _ = make_hdfs()
        hdfs.namenode.create_file("out", codec_name="binary")
        hdfs.append_block("out", [("k", 1)], writer_node="n0")
        hdfs.append_block("out", [("k", 2)])
        assert list(hdfs.read_records("out")) == [("k", 1), ("k", 2)]

    def test_writer_node_locality(self):
        hdfs, _ = make_hdfs()
        hdfs.namenode.create_file("out")
        block = hdfs.append_block("out", [1, 2, 3], writer_node="n2")
        assert block.replicas[0] == "n2"


class TestSplitsAndReplicas:
    def test_splits_match_blocks(self):
        hdfs, _ = make_hdfs(block_size=1024)
        hdfs.write_records("f", [(i, "x" * 30) for i in range(200)])
        splits = hdfs.input_splits("f")
        blocks = hdfs.namenode.blocks_of("f")
        assert len(splits) == len(blocks)
        for split, block in zip(splits, blocks):
            assert split.block_id == block.block_id
            assert split.preferred_nodes == tuple(block.replicas)
            assert split.records == block.records

    def test_replicated_blocks_stored_on_all_replicas(self):
        hdfs, disks = make_hdfs(replication=2)
        hdfs.write_records("f", [(i,) for i in range(10)])
        block = hdfs.namenode.blocks_of("f")[0]
        for node in block.replicas:
            assert DataNode(node, disks[node]).has_block(block.block_id)

    def test_read_from_specific_replica(self):
        hdfs, disks = make_hdfs(replication=2)
        hdfs.write_records("f", [(i,) for i in range(10)])
        block = hdfs.namenode.blocks_of("f")[0]
        replica = block.replicas[1]
        before = disks[replica].stats.bytes_read
        hdfs.read_block_bytes(block.block_id, from_node=replica)
        assert disks[replica].stats.bytes_read > before

    def test_delete_file_removes_replicas(self):
        hdfs, disks = make_hdfs()
        hdfs.write_records("f", [(i,) for i in range(10)])
        hdfs.delete_file("f")
        assert not hdfs.namenode.exists("f")
        for disk in disks.values():
            assert disk.list_files("hdfs/") == []


class TestValidation:
    def test_requires_datanodes(self):
        with pytest.raises(ValueError):
            HDFS({})

    def test_positive_block_size(self):
        disks = {"n0": LocalDisk()}
        with pytest.raises(ValueError):
            HDFS({"n0": DataNode("n0", disks["n0"])}, block_size=0)

    def test_unknown_codec_rejected(self):
        hdfs, _ = make_hdfs()
        with pytest.raises(KeyError):
            hdfs.codec("nope")

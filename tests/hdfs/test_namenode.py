"""NameNode namespace and placement."""

import pytest

from repro.hdfs.blocks import BlockId
from repro.hdfs.namenode import NameNode

NODES = ["n0", "n1", "n2"]


class TestNamespace:
    def test_create_and_lookup(self):
        nn = NameNode(NODES)
        nn.create_file("f", codec_name="text")
        info = nn.file_info("f")
        assert info.path == "f"
        assert info.codec_name == "text"
        assert info.blocks == []

    def test_duplicate_create_raises(self):
        nn = NameNode(NODES)
        nn.create_file("f")
        with pytest.raises(FileExistsError):
            nn.create_file("f")

    def test_missing_file_raises(self):
        nn = NameNode(NODES)
        with pytest.raises(FileNotFoundError):
            nn.file_info("ghost")

    def test_delete_removes_entry(self):
        nn = NameNode(NODES)
        nn.create_file("f")
        nn.delete_file("f")
        assert not nn.exists("f")

    def test_list_files_prefix(self):
        nn = NameNode(NODES)
        for p in ("a/1", "a/2", "b/1"):
            nn.create_file(p)
        assert nn.list_files("a/") == ["a/1", "a/2"]


class TestPlacement:
    def test_block_ids_sequential(self):
        nn = NameNode(NODES)
        nn.create_file("f")
        b0 = nn.place_block("f", 10, 1)
        b1 = nn.place_block("f", 10, 1)
        assert b0.block_id == BlockId("f", 0)
        assert b1.block_id == BlockId("f", 1)

    def test_replication_count(self):
        nn = NameNode(NODES, replication=2)
        nn.create_file("f")
        block = nn.place_block("f", 10, 1)
        assert len(block.replicas) == 2
        assert len(set(block.replicas)) == 2

    def test_preferred_node_is_first_replica(self):
        nn = NameNode(NODES, replication=2)
        nn.create_file("f")
        block = nn.place_block("f", 10, 1, preferred="n2")
        assert block.replicas[0] == "n2"

    def test_unknown_preferred_ignored(self):
        # A writer outside the storage set (separate-storage compute node)
        # simply gets no locality; placement falls back to round-robin.
        nn = NameNode(NODES)
        nn.create_file("f")
        block = nn.place_block("f", 10, 1, preferred="compute-only")
        assert block.replicas[0] in NODES

    def test_round_robin_spreads_blocks(self):
        nn = NameNode(NODES)
        nn.create_file("f")
        first = [nn.place_block("f", 1, 1).replicas[0] for _ in range(6)]
        assert set(first) == set(NODES)

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            NameNode(NODES, replication=0)
        with pytest.raises(ValueError):
            NameNode(NODES, replication=4)
        with pytest.raises(ValueError):
            NameNode([])

    def test_locate(self):
        nn = NameNode(NODES)
        nn.create_file("f")
        block = nn.place_block("f", 10, 1)
        assert nn.locate(block.block_id) == block.replicas
        with pytest.raises(KeyError):
            nn.locate(BlockId("f", 99))

    def test_totals(self):
        nn = NameNode(NODES)
        nn.create_file("f")
        nn.place_block("f", 10, 3)
        nn.place_block("f", 20, 4)
        info = nn.file_info("f")
        assert info.nbytes == 30
        assert info.records == 7
        assert nn.total_bytes() == 30

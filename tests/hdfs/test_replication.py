"""Replica failover: the storage half of the fault-tolerance story."""

import pytest

from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HDFS
from repro.io.disk import LocalDisk
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.page_frequency import page_frequency_job, reference_page_counts


def make_hdfs(replication=2, num_nodes=3):
    disks = {f"n{i}": LocalDisk(name=f"n{i}") for i in range(num_nodes)}
    datanodes = {name: DataNode(name, disk) for name, disk in disks.items()}
    return (
        HDFS(datanodes, replication=replication, block_size=2048),
        disks,
        datanodes,
    )


class TestReplicaFailover:
    def test_read_survives_one_lost_replica(self):
        hdfs, _disks, datanodes = make_hdfs(replication=2)
        hdfs.write_records("f", [(i, "x" * 20) for i in range(200)])
        block = hdfs.namenode.blocks_of("f")[0]
        # Lose the first replica.
        datanodes[block.replicas[0]].delete_block(block.block_id)
        data = hdfs.read_block_bytes(block.block_id)
        assert data  # served by the surviving replica

    def test_full_file_readable_after_node_loss(self):
        hdfs, _disks, datanodes = make_hdfs(replication=2, num_nodes=3)
        records = [(i, f"v{i}") for i in range(400)]
        hdfs.write_records("f", records)
        # Wipe one whole DataNode.
        victim = "n1"
        for name in list(datanodes[victim].block_names()):
            datanodes[victim].disk.delete(name)
        assert list(hdfs.read_records("f")) == records

    def test_all_replicas_lost_raises(self):
        hdfs, _disks, datanodes = make_hdfs(replication=2)
        hdfs.write_records("f", [(1,)])
        block = hdfs.namenode.blocks_of("f")[0]
        for node in block.replicas:
            datanodes[node].delete_block(block.block_id)
        with pytest.raises(FileNotFoundError, match="replica"):
            hdfs.read_block_bytes(block.block_id)

    def test_preferred_dead_replica_fails_over_silently(self):
        hdfs, _disks, datanodes = make_hdfs(replication=2)
        hdfs.write_records("f", [(i,) for i in range(100)])
        block = hdfs.namenode.blocks_of("f")[0]
        preferred = block.replicas[0]
        datanodes[preferred].delete_block(block.block_id)
        assert hdfs.read_block_bytes(block.block_id, from_node=preferred)

    def test_replicated_job_survives_storage_loss(self, clicks):
        cluster = LocalCluster(num_nodes=3, block_size=64 * 1024, replication=2)
        cluster.hdfs.write_records("in", clicks)
        # Wipe every HDFS block on one node before running the job.
        victim = cluster.nodes["node01"]
        victim.hdfs_disk.delete_prefix("hdfs/")
        HadoopEngine(cluster).run(page_frequency_job("in", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_page_counts(clicks)

"""DataNode block storage."""

import pytest

from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, BlockId
from repro.hdfs.datanode import DataNode
from repro.io.disk import LocalDisk


class TestBlocks:
    def test_default_block_size_is_64mb(self):
        assert DEFAULT_BLOCK_SIZE == 64 * 1024 * 1024

    def test_storage_name_is_stable(self):
        bid = BlockId("data/clicks", 3)
        assert bid.storage_name() == "hdfs/data/clicks/blk-000003"

    def test_block_ids_order_by_path_then_index(self):
        assert BlockId("a", 2) < BlockId("b", 0)
        assert BlockId("a", 1) < BlockId("a", 2)


class TestDataNode:
    def test_store_read_roundtrip(self, disk):
        dn = DataNode("n0", disk)
        bid = BlockId("f", 0)
        dn.store_block(bid, b"payload")
        assert dn.read_block(bid) == b"payload"
        assert dn.has_block(bid)

    def test_stream_block(self, disk):
        dn = DataNode("n0", disk)
        bid = BlockId("f", 0)
        payload = b"x" * 5000
        dn.store_block(bid, payload)
        assert b"".join(dn.stream_block(bid, chunk_size=1024)) == payload

    def test_delete_block(self, disk):
        dn = DataNode("n0", disk)
        bid = BlockId("f", 0)
        dn.store_block(bid, b"1")
        dn.delete_block(bid)
        assert not dn.has_block(bid)

    def test_missing_block_raises(self, disk):
        dn = DataNode("n0", disk)
        with pytest.raises(FileNotFoundError):
            dn.read_block(BlockId("f", 0))

    def test_block_names_only_hdfs(self, disk):
        disk.write("spill/other", b"x")
        dn = DataNode("n0", disk)
        dn.store_block(BlockId("f", 0), b"1")
        names = dn.block_names()
        assert len(names) == 1
        assert names[0].startswith("hdfs/")

    def test_restore_overwrites(self, disk):
        dn = DataNode("n0", disk)
        bid = BlockId("f", 0)
        dn.store_block(bid, b"old")
        dn.store_block(bid, b"new")
        assert dn.read_block(bid) == b"new"

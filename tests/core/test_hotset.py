"""Hot-key incremental hash: exactness, approximation and spill economics."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import COUNT, SUM
from repro.core.hotset import HotSetIncrementalHash
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.workloads.zipf import ZipfSampler


def make(capacity=8, aggregator=COUNT, **kwargs):
    disk = LocalDisk()
    counters = Counters()
    h = HotSetIncrementalHash(
        aggregator, disk, "hot", capacity=capacity, counters=counters, **kwargs
    )
    return h, disk, counters


class TestExactness:
    def test_small_stream_all_resident(self):
        h, _, counters = make(capacity=16)
        keys = list("aabbccdd")
        for k in keys:
            h.update(k, 1)
        assert dict(h.results()) == dict(Counter(keys))
        assert counters[C.HOT_MISSES] == 0
        assert counters[C.REDUCE_SPILL_BYTES] == 0

    def test_exact_results_with_cold_spills(self):
        h, _, counters = make(capacity=4)
        keys = [f"k{i % 50}" for i in range(2000)]
        for k in keys:
            h.update(k, 1)
        assert dict(h.results()) == dict(Counter(keys))
        assert counters[C.HOT_MISSES] > 0
        assert counters[C.REDUCE_SPILL_BYTES] > 0

    @given(st.lists(st.integers(0, 30), max_size=400), st.sampled_from([2, 8, 64]))
    @settings(max_examples=30, deadline=None)
    def test_property_exact_counts(self, keys, capacity):
        h, _, _ = make(capacity=capacity)
        for k in keys:
            h.update(k, 1)
        assert dict(h.results()) == dict(Counter(keys))

    def test_update_after_results_raises(self):
        h, _, _ = make()
        h.update("a", 1)
        list(h.results())
        with pytest.raises(RuntimeError):
            h.update("b", 1)
        with pytest.raises(RuntimeError):
            list(h.results())

    def test_sum_aggregator(self):
        h, _, _ = make(capacity=3, aggregator=SUM)
        pairs = [(f"k{i % 11}", i % 7) for i in range(500)]
        expected: dict[str, int] = {}
        for k, v in pairs:
            h.update(k, v)
            expected[k] = expected.get(k, 0) + v
        assert dict(h.results()) == expected


class TestApproximation:
    def test_approximate_results_cover_hot_keys(self):
        sampler = ZipfSampler(500, 1.5, seed=4)
        h, _, _ = make(capacity=32, refresh_interval=256)
        draws = [int(x) for x in sampler.draw(20_000)]
        for k in draws:
            h.update(k, 1)
        truth = Counter(draws)
        approx = {a.key: a for a in h.approximate_results()}
        for key, _count in truth.most_common(5):
            assert key in approx

    def test_approximate_counts_are_lower_bounds(self):
        sampler = ZipfSampler(200, 1.3, seed=6)
        h, _, _ = make(capacity=16, refresh_interval=128)
        draws = [int(x) for x in sampler.draw(5_000)]
        for k in draws:
            h.update(k, 1)
        truth = Counter(draws)
        for a in h.approximate_results():
            assert a.result <= truth[a.key]
            assert a.count_estimate >= truth[a.key] - a.count_error

    def test_approximate_before_any_update(self):
        h, _, _ = make()
        assert list(h.approximate_results()) == []


class TestSpillEconomics:
    def test_skew_reduces_spill(self):
        """Hot-key caching must spill far less on skewed keys than uniform."""

        def spill_for(skew: float) -> float:
            sampler = ZipfSampler(2_000, skew, seed=8)
            h, _, counters = make(capacity=256, refresh_interval=512)
            for k in sampler.draw(30_000):
                h.update(int(k), 1)
            list(h.results())
            return counters[C.REDUCE_SPILL_BYTES]

        assert spill_for(1.4) < spill_for(0.0) / 2

    def test_hits_dominate_on_skewed_stream(self):
        sampler = ZipfSampler(1_000, 1.5, seed=10)
        h, _, counters = make(capacity=128)
        for k in sampler.draw(20_000):
            h.update(int(k), 1)
        assert counters[C.HOT_HITS] > 4 * counters[C.HOT_MISSES]

    def test_evictions_counted_on_churn(self):
        h, _, counters = make(capacity=4, refresh_interval=16)
        # Rotate hot keys so the resident set must churn.
        for round_ in range(20):
            for i in range(8):
                for _ in range(4):
                    h.update(f"r{round_}-k{i}", 1)
        list(h.results())
        assert counters[C.HOT_EVICTIONS] > 0


class TestValidation:
    def test_capacity(self):
        with pytest.raises(ValueError):
            HotSetIncrementalHash(COUNT, LocalDisk(), "x", capacity=0)

"""Threshold and top-k query helpers."""

import pytest

from repro.core.aggregates import COUNT
from repro.core.queries import ThresholdQuery, TopKSelector, global_top_k


class TestThresholdQuery:
    def test_filter_final(self):
        q = ThresholdQuery(3)
        results = [("a", 5), ("b", 2), ("c", 3)]
        assert dict(q.filter_final(results)) == {"a": 5, "c": 3}

    def test_emit_policy_matches_filter(self):
        q = ThresholdQuery(2)
        state = COUNT.initial()
        state.update(None)
        assert not q.emit_policy("k", state)
        state.update(None)
        assert q.emit_policy("k", state)

    def test_custom_measure(self):
        q = ThresholdQuery(10, measure=lambda r: r["n"])
        assert list(q.filter_final([("a", {"n": 12}), ("b", {"n": 3})])) == [
            ("a", {"n": 12})
        ]


class TestGlobalTopK:
    def test_basic(self):
        results = [("a", 1), ("b", 9), ("c", 5)]
        assert global_top_k(results, 2) == [("b", 9), ("c", 5)]

    def test_k_larger_than_input(self):
        assert global_top_k([("a", 1)], 10) == [("a", 1)]

    def test_deterministic_tiebreak(self):
        results = [("b", 5), ("a", 5), ("c", 5)]
        assert global_top_k(results, 2) == global_top_k(list(reversed(results)), 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            global_top_k([], 0)


class TestTopKSelector:
    def test_streaming_matches_batch(self):
        results = [(f"k{i}", (i * 37) % 101) for i in range(200)]
        sel = TopKSelector(5)
        sel.offer_all(results)
        assert sel.best() == global_top_k(results, 5)

    def test_memory_bounded(self):
        sel = TopKSelector(3)
        for i in range(10_000):
            sel.offer(i, i)
        assert len(sel.best()) == 3
        assert sel.best()[0] == (9999, 9999)

    def test_best_is_sorted_desc(self):
        sel = TopKSelector(4)
        sel.offer_all([("a", 2), ("b", 7), ("c", 4), ("d", 1)])
        values = [v for _, v in sel.best()]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKSelector(0)

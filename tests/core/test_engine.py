"""The one-pass engine end-to-end, across modes and workload shapes."""

import pytest

from repro.core.aggregates import COUNT, SUM
from repro.core.engine import OnePassConfig, OnePassEngine, OnePassJob
from repro.core.incremental import count_threshold_policy
from repro.mapreduce.counters import C
from repro.mapreduce.runtime import LocalCluster
from repro.workloads.inverted_index import inverted_index_onepass_job, reference_index
from repro.workloads.page_frequency import (
    page_frequency_onepass_job,
    reference_page_counts,
)
from repro.workloads.per_user_count import (
    per_user_count_onepass_job,
    reference_user_counts,
)
from repro.workloads.sessionization import (
    reference_sessions,
    sessionization_onepass_job,
)


def count_map(record):
    yield (record, 1)


class TestOnePassConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_reducers": 0},
            {"mode": "bogus"},
            {"hotset_capacity": 0},
            {"map_memory_bytes": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            OnePassConfig(**kwargs)


class TestOnePassJobValidation:
    def test_exactly_one_of_aggregator_reduce(self):
        with pytest.raises(ValueError):
            OnePassJob("j", count_map)
        with pytest.raises(ValueError):
            OnePassJob(
                "j",
                count_map,
                aggregator=COUNT,
                reduce_fn=lambda k, v: [(k, sum(v))],
            )

    def test_grouping_requires_hybrid_mode(self):
        with pytest.raises(ValueError):
            OnePassJob(
                "j",
                count_map,
                reduce_fn=lambda k, v: [(k, sum(v))],
                config=OnePassConfig(mode="incremental"),
            )

    def test_emit_policy_requires_aggregator(self):
        with pytest.raises(ValueError):
            OnePassJob(
                "j",
                count_map,
                reduce_fn=lambda k, v: [(k, sum(v))],
                emit_policy=count_threshold_policy(2),
                config=OnePassConfig(mode="hybrid"),
            )


class TestModesCorrectness:
    @pytest.mark.parametrize("mode", ["incremental", "hybrid", "hotset"])
    @pytest.mark.parametrize("map_side_combine", [True, False])
    def test_page_frequency_all_modes(self, cluster, clicks, mode, map_side_combine):
        cluster.hdfs.write_records("clicks", clicks)
        cfg = OnePassConfig(
            mode=mode, map_side_combine=map_side_combine, hotset_capacity=64
        )
        out = f"out-{mode}-{map_side_combine}"
        OnePassEngine(cluster).run(page_frequency_onepass_job("clicks", out, config=cfg))
        assert dict(cluster.hdfs.read_records(out)) == reference_page_counts(clicks)

    def test_per_user_count(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        OnePassEngine(cluster).run(per_user_count_onepass_job("clicks", "out"))
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)

    def test_sessionization(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        OnePassEngine(cluster).run(
            sessionization_onepass_job("clicks", "out", gap=5.0)
        )
        got = sorted(cluster.hdfs.read_records("out"))
        assert got == reference_sessions(clicks, gap=5.0)

    def test_inverted_index(self, cluster, documents):
        cluster.hdfs.write_records("docs", documents)
        OnePassEngine(cluster).run(inverted_index_onepass_job("docs", "ix"))
        assert dict(cluster.hdfs.read_records("ix")) == reference_index(documents)

    def test_memory_constrained_incremental_still_exact(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        cfg = OnePassConfig(
            mode="incremental", reduce_memory_bytes=8192, map_side_combine=False
        )
        result = OnePassEngine(cluster).run(
            per_user_count_onepass_job("clicks", "out", config=cfg)
        )
        assert dict(cluster.hdfs.read_records("out")) == reference_user_counts(clicks)
        assert result.counters[C.REDUCE_SPILL_BYTES] > 0


class TestEngineObservables:
    def test_no_sorting_ever(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        result = OnePassEngine(cluster).run(
            page_frequency_onepass_job("clicks", "out")
        )
        assert result.counters[C.T_SORT] == 0
        assert result.counters[C.SORT_RECORDS] == 0
        assert result.counters[C.T_HASH] > 0

    def test_early_emission_through_engine(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        threshold = 20
        job = OnePassJob(
            "threshold-count",
            lambda click: [(click[2], 1)],
            aggregator=COUNT,
            emit_policy=count_threshold_policy(threshold),
            config=OnePassConfig(mode="incremental", map_side_combine=False),
            input_path="clicks",
            output_path="out",
        )
        result = OnePassEngine(cluster).run(job)
        early = result.extras["early_emitted"]
        ref = reference_page_counts(clicks)
        expected_keys = {url for url, n in ref.items() if n >= threshold}
        assert {k for k, _ in early} == expected_keys
        for key, value in early:
            assert value == threshold  # emitted exactly at the crossing

    def test_hotset_approximate_results_exposed(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        cfg = OnePassConfig(mode="hotset", hotset_capacity=16, map_side_combine=False)
        result = OnePassEngine(cluster).run(
            per_user_count_onepass_job("clicks", "out", config=cfg)
        )
        approx = result.extras["approximate_results"]
        assert approx  # hot users reported before finalisation
        ref = reference_user_counts(clicks)
        for a in approx:
            assert a.result <= ref[a.key]

    def test_counters_and_phases(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        result = OnePassEngine(cluster).run(
            page_frequency_onepass_job("clicks", "out")
        )
        assert result.counters[C.MAP_INPUT_RECORDS] == len(clicks)
        assert set(result.phase_times) == {"map", "reduce"}
        assert result.engine == "onepass"

    def test_missing_paths_rejected(self, cluster):
        job = OnePassJob("j", count_map, aggregator=COUNT)
        with pytest.raises(ValueError):
            OnePassEngine(cluster).run(job)

    def test_finalize_shapes_output(self, cluster, clicks):
        cluster.hdfs.write_records("clicks", clicks)
        job = OnePassJob(
            "labelled",
            lambda click: [(click[2], 1)],
            aggregator=SUM,
            finalize=lambda key, result: [f"{key}={result}"],
            input_path="clicks",
            output_path="out",
        )
        OnePassEngine(cluster).run(job)
        lines = list(cluster.hdfs.read_records("out"))
        assert all(isinstance(line, str) and "=" in line for line in lines)

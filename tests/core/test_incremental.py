"""Incremental hash: per-key states, early emission, overflow."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import COUNT, SUM
from repro.core.incremental import IncrementalHash, count_threshold_policy
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C


class TestInMemory:
    def test_counts(self):
        ih = IncrementalHash(COUNT)
        for key in "aabbba":
            ih.update(key, 1)
        assert dict(ih.results()) == {"a": 3, "b": 3}

    def test_current_is_queryable_anytime(self):
        ih = IncrementalHash(SUM)
        assert ih.current("a") is None
        ih.update("a", 5)
        assert ih.current("a") == 5
        ih.update("a", 2)
        assert ih.current("a") == 7

    def test_snapshot_results_nondestructive(self):
        ih = IncrementalHash(COUNT)
        ih.update("a", 1)
        snap1 = dict(ih.snapshot_results())
        ih.update("a", 1)
        snap2 = dict(ih.snapshot_results())
        assert snap1 == {"a": 1}
        assert snap2 == {"a": 2}
        assert dict(ih.results()) == {"a": 2}

    def test_results_twice_raises(self):
        ih = IncrementalHash(COUNT)
        ih.update("a", 1)
        list(ih.results())
        with pytest.raises(RuntimeError):
            list(ih.results())
        with pytest.raises(RuntimeError):
            ih.update("b", 1)

    def test_merge_state(self):
        ih = IncrementalHash(COUNT)
        partial = COUNT.initial()
        for _ in range(5):
            partial.update(None)
        ih.merge_state("a", partial)
        ih.update("a", 1)
        assert ih.current("a") == 6


class TestEarlyEmission:
    def test_threshold_emits_once_at_crossing(self):
        ih = IncrementalHash(COUNT, emit_policy=count_threshold_policy(3))
        for _ in range(10):
            ih.update("hot", 1)
        ih.update("cold", 1)
        assert ih.early_emitted == [("hot", 3)]
        assert ih.counters[C.EARLY_EMITS] == 1

    def test_multiple_keys_emit_in_crossing_order(self):
        ih = IncrementalHash(COUNT, emit_policy=count_threshold_policy(2))
        for key in ["a", "b", "b", "a", "c"]:
            ih.update(key, 1)
        assert [k for k, _ in ih.early_emitted] == ["b", "a"]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            count_threshold_policy(0)

    def test_custom_policy(self):
        ih = IncrementalHash(SUM, emit_policy=lambda k, s: s.result() >= 100)
        ih.update("x", 60)
        assert ih.early_emitted == []
        ih.update("x", 60)
        assert ih.early_emitted == [("x", 120)]


class TestOverflow:
    def test_requires_disk_when_bounded(self):
        with pytest.raises(ValueError):
            IncrementalHash(COUNT, memory_bytes=1024)
        with pytest.raises(ValueError):
            IncrementalHash(COUNT, memory_bytes=0, disk=LocalDisk())

    def test_overflow_exact_results(self):
        disk = LocalDisk()
        ih = IncrementalHash(COUNT, memory_bytes=2048, disk=disk)
        keys = [f"k{i % 101}" for i in range(3000)]
        for key in keys:
            ih.update(key, 1)
        assert ih.overflowed
        assert dict(ih.results()) == dict(Counter(keys))
        assert ih.counters[C.REDUCE_SPILL_BYTES] > 0

    def test_resident_keys_stay_incremental_after_overflow(self):
        disk = LocalDisk()
        ih = IncrementalHash(COUNT, memory_bytes=2048, disk=disk)
        ih.update("first", 1)
        for i in range(2000):
            ih.update(f"filler{i}", 1)
        assert ih.overflowed
        ih.update("first", 1)
        assert ih.current("first") == 2  # still live in memory

    def test_cold_keys_not_queryable(self):
        disk = LocalDisk()
        ih = IncrementalHash(COUNT, memory_bytes=1024, disk=disk)
        for i in range(2000):
            ih.update(f"k{i}", 1)
        assert ih.overflowed
        assert ih.current("k1999") is None  # overflowed to disk

    @given(
        st.lists(st.tuples(st.integers(0, 25), st.integers(1, 3)), max_size=300),
        st.sampled_from([512, 4096, 1 << 20]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_reference(self, pairs, memory):
        disk = LocalDisk()
        ih = IncrementalHash(SUM, memory_bytes=memory, disk=disk)
        expected: dict[int, int] = {}
        for k, v in pairs:
            ih.update(k, v)
            expected[k] = expected.get(k, 0) + v
        assert dict(ih.results()) == expected

    def test_peak_state_counter(self):
        disk = LocalDisk()
        ih = IncrementalHash(COUNT, memory_bytes=1 << 20, disk=disk)
        for i in range(500):
            ih.update(i, 1)
        list(ih.results())
        assert ih.counters[C.HASH_STATE_BYTES_PEAK] > 0

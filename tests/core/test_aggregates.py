"""Aggregate states: unit behaviour per state type."""

import pytest

from repro.core.aggregates import (
    AVG,
    COLLECT,
    COUNT,
    MAX,
    MIN,
    SUM,
    AvgState,
    CollectState,
    CountState,
    MaxState,
    MinState,
    SessionState,
    SumCountState,
    SumState,
    TopKState,
    fold,
    sessionize,
    top_k,
)


class TestScalarStates:
    def test_count(self):
        assert fold(COUNT, ["a", "b", "c"]) == 3
        assert fold(COUNT, []) == 0

    def test_sum(self):
        assert fold(SUM, [1, 2, 3.5]) == 6.5
        assert fold(SUM, []) == 0

    def test_avg(self):
        assert fold(AVG, [2, 4, 6]) == 4
        with pytest.raises(ValueError):
            AvgState().result()

    def test_sum_count(self):
        s = SumCountState()
        for v in (1, 2, 3):
            s.update(v)
        assert s.result() == (6, 3)

    def test_min_max(self):
        assert fold(MIN, [5, 2, 9]) == 2
        assert fold(MAX, [5, 2, 9]) == 9
        with pytest.raises(ValueError):
            MinState().result()
        with pytest.raises(ValueError):
            MaxState().result()

    def test_min_max_merge_with_empty(self):
        a = MinState()
        a.update(4)
        a.merge(MinState())  # empty other
        assert a.result() == 4
        b = MaxState()
        b.merge(MaxState())
        with pytest.raises(ValueError):
            b.result()

    def test_constant_size(self):
        c = CountState()
        before = c.size_bytes()
        for _ in range(1000):
            c.update(None)
        assert c.size_bytes() == before


class TestTopK:
    def test_keeps_largest(self):
        assert fold(top_k(3), [5, 1, 9, 7, 3]) == [9, 7, 5]

    def test_fewer_than_k(self):
        assert fold(top_k(10), [2, 1]) == [2, 1]

    def test_merge(self):
        a = TopKState(2)
        b = TopKState(2)
        for v in (1, 5):
            a.update(v)
        for v in (3, 9):
            b.update(v)
        a.merge(b)
        assert a.result() == [9, 5]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKState(0)

    def test_size_bounded(self):
        s = TopKState(4)
        for v in range(1000):
            s.update(v)
        assert s.size_bytes() <= 64 + 32 * 4


class TestCollect:
    def test_collects_in_order(self):
        assert fold(COLLECT, [3, 1, 2]) == [3, 1, 2]

    def test_merge_concatenates(self):
        a = CollectState()
        b = CollectState()
        a.update(1)
        b.update(2)
        a.merge(b)
        assert a.result() == [1, 2]

    def test_size_grows_linearly(self):
        s = CollectState()
        s.update("x" * 100)
        small = s.size_bytes()
        for _ in range(100):
            s.update("x" * 100)
        assert s.size_bytes() > small + 100 * 100

    def test_result_is_a_copy(self):
        s = CollectState()
        s.update(1)
        out = s.result()
        out.append(99)
        assert s.result() == [1]


class TestSessionState:
    def test_splits_on_gap(self):
        s = SessionState(gap=10.0)
        for click in [(0.0, "/a"), (5.0, "/b"), (100.0, "/c"), (104.0, "/d")]:
            s.update(click)
        sessions = s.result()
        assert len(sessions) == 2
        assert [u for _t, u in sessions[0]] == ["/a", "/b"]
        assert [u for _t, u in sessions[1]] == ["/c", "/d"]

    def test_orders_out_of_order_clicks(self):
        s = SessionState(gap=10.0)
        s.update((5.0, "/b"))
        s.update((0.0, "/a"))
        assert [u for _t, u in s.result()[0]] == ["/a", "/b"]

    def test_empty(self):
        assert SessionState().result() == []

    def test_boundary_gap_is_same_session(self):
        s = SessionState(gap=10.0)
        s.update((0.0, "/a"))
        s.update((10.0, "/b"))  # exactly the gap: not "> gap", same session
        assert len(s.result()) == 1

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            SessionState(gap=0)

    def test_factory_name(self):
        assert "session" in sessionize(60).name

"""Property-based tests: the combiner algebra every state must satisfy.

The one-pass engine's correctness rests on states being *mergeable*: any
split of the value multiset into update/merge sequences must produce the
same final result.  Hypothesis explores those splits.
"""

from __future__ import annotations

from typing import Any, Callable

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    AVG,
    COLLECT,
    COUNT,
    MAX,
    MIN,
    SUM,
    Aggregator,
    sessionize,
    top_k,
)

numbers = st.integers(-(10**6), 10**6)
clicks = st.tuples(
    st.floats(0, 10_000, allow_nan=False), st.text(min_size=1, max_size=5)
)


def build(agg: Aggregator, values: list[Any]):
    state = agg.initial()
    for v in values:
        state.update(v)
    return state


def canonical(agg_name: str, result: Any) -> Any:
    """Order-insensitive comparison key for order-free aggregates."""
    if agg_name == "collect":
        return sorted(map(repr, result))
    return result


CASES: list[tuple[Aggregator, Any]] = [
    (COUNT, numbers),
    (SUM, numbers),
    (MIN, numbers),
    (MAX, numbers),
    (AVG, numbers),
    (COLLECT, numbers),
    (top_k(3), numbers),
    (sessionize(50.0), clicks),
]


@pytest.mark.parametrize("agg,strategy", CASES, ids=lambda c: getattr(c, "name", ""))
class TestMergeAlgebra:
    @given(data=st.data())
    @settings(max_examples=40)
    def test_split_merge_equals_sequential(self, agg, strategy, data):
        values = data.draw(st.lists(strategy, min_size=1, max_size=30))
        cut = data.draw(st.integers(0, len(values)))
        left = build(agg, values[:cut])
        right = build(agg, values[cut:])
        left.merge(right)
        sequential = build(agg, values)
        assert canonical(agg.name, left.result()) == canonical(
            agg.name, sequential.result()
        )

    @given(data=st.data())
    @settings(max_examples=30)
    def test_merge_with_empty_is_identity(self, agg, strategy, data):
        values = data.draw(st.lists(strategy, min_size=1, max_size=20))
        state = build(agg, values)
        expected = canonical(agg.name, build(agg, values).result())
        state.merge(agg.initial())
        assert canonical(agg.name, state.result()) == expected

    @given(data=st.data())
    @settings(max_examples=30)
    def test_three_way_merge_associative(self, agg, strategy, data):
        chunks = [
            data.draw(st.lists(strategy, min_size=1, max_size=10)) for _ in range(3)
        ]
        # (a + b) + c
        left = build(agg, chunks[0])
        mid = build(agg, chunks[1])
        left.merge(mid)
        left.merge(build(agg, chunks[2]))
        # a + (b + c)
        right_tail = build(agg, chunks[1])
        right_tail.merge(build(agg, chunks[2]))
        right = build(agg, chunks[0])
        right.merge(right_tail)
        assert canonical(agg.name, left.result()) == canonical(
            agg.name, right.result()
        )

    @given(data=st.data())
    @settings(max_examples=30)
    def test_size_bytes_positive(self, agg, strategy, data):
        values = data.draw(st.lists(strategy, max_size=20))
        state = build(agg, values)
        assert state.size_bytes() > 0

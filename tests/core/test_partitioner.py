"""Map-side scan partitioning and hash combining."""

from collections import Counter

import pytest

from repro.core.aggregates import COUNT, SUM
from repro.core.hybrid_hash import SpilledState
from repro.core.partitioner import MapSideHashCombiner, ScanPartitionBuffer
from repro.mapreduce.counters import C, Counters


class Sink:
    def __init__(self):
        self.chunks: list[tuple[int, list, int]] = []

    def __call__(self, partition, pairs, nbytes):
        self.chunks.append((partition, list(pairs), nbytes))

    def pairs_for(self, partition):
        return [p for part, pairs, _ in self.chunks if part == partition for p in pairs]

    def all_pairs(self):
        return [p for _, pairs, _ in self.chunks for p in pairs]


class TestScanPartitionBuffer:
    def test_all_pairs_delivered_once(self):
        sink = Sink()
        buf = ScanPartitionBuffer(3, sink, buffer_bytes=256)
        pairs = [(f"k{i}", i) for i in range(100)]
        for k, v in pairs:
            buf.add(k, v)
        buf.finish()
        assert sorted(sink.all_pairs()) == sorted(pairs)

    def test_partitioning_consistent_per_key(self):
        sink = Sink()
        buf = ScanPartitionBuffer(4, sink, buffer_bytes=128)
        for i in range(200):
            buf.add(f"k{i % 10}", i)
        buf.finish()
        seen: dict[str, int] = {}
        for partition, pairs, _ in sink.chunks:
            for k, _v in pairs:
                assert seen.setdefault(k, partition) == partition

    def test_no_grouping_no_ordering(self):
        # Scan-only: pairs arrive downstream in arrival order per partition.
        sink = Sink()
        buf = ScanPartitionBuffer(1, sink, buffer_bytes=1 << 20)
        buf.add("b", 1)
        buf.add("a", 2)
        buf.add("b", 3)
        buf.finish()
        assert sink.pairs_for(0) == [("b", 1), ("a", 2), ("b", 3)]

    def test_flush_at_buffer_boundary(self):
        sink = Sink()
        buf = ScanPartitionBuffer(1, sink, buffer_bytes=200)
        for i in range(50):
            buf.add("k", "x" * 20)
        assert len(sink.chunks) > 1  # flushed before finish

    def test_counters(self):
        counters = Counters()
        buf = ScanPartitionBuffer(2, Sink(), counters=counters)
        for i in range(10):
            buf.add(i, i)
        assert counters[C.MAP_OUTPUT_RECORDS] == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ScanPartitionBuffer(0, Sink())


class TestMapSideHashCombiner:
    def unwrap(self, pairs):
        return {k: v.state.result() for k, v in pairs}

    def test_emits_partial_states(self):
        sink = Sink()
        comb = MapSideHashCombiner(2, COUNT, sink, memory_bytes=1 << 20)
        for key in "aabbbc":
            comb.add(key, 1)
        comb.finish()
        merged: Counter = Counter()
        for _, pairs, _ in sink.chunks:
            for k, v in pairs:
                assert isinstance(v, SpilledState)
                merged[k] += v.state.result()
        assert merged == Counter("aabbbc")

    def test_combining_shrinks_records(self):
        sink = Sink()
        comb = MapSideHashCombiner(1, COUNT, sink, memory_bytes=1 << 20)
        for _ in range(1000):
            comb.add("same", 1)
        comb.finish()
        assert len(sink.all_pairs()) == 1

    def test_memory_pressure_flushes(self):
        sink = Sink()
        comb = MapSideHashCombiner(1, SUM, sink, memory_bytes=4096)
        for i in range(2000):
            comb.add(f"key-{i}", 1)
        assert comb.flushes >= 1
        comb.finish()
        total = sum(v.state.result() for _, pairs, _ in sink.chunks for _k, v in pairs)
        assert total == 2000

    def test_partial_sums_recombine_exactly(self):
        sink = Sink()
        comb = MapSideHashCombiner(3, SUM, sink, memory_bytes=2048)
        expected: dict[str, int] = {}
        for i in range(3000):
            key, value = f"k{i % 40}", i % 5
            comb.add(key, value)
            expected[key] = expected.get(key, 0) + value
        comb.finish()
        merged: dict[str, int] = {}
        for _, pairs, _ in sink.chunks:
            for k, v in pairs:
                merged[k] = merged.get(k, 0) + v.state.result()
        assert merged == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            MapSideHashCombiner(0, COUNT, Sink())
        with pytest.raises(ValueError):
            MapSideHashCombiner(1, COUNT, Sink(), memory_bytes=0)

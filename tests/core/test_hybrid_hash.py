"""Hybrid hash grouping: correctness under every memory regime."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import COLLECT, COUNT, SUM
from repro.core.hybrid_hash import HybridHashGrouper, SpilledState
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters

pair_streams = st.lists(
    st.tuples(st.integers(0, 40), st.integers(-5, 5)), max_size=300
)


def group_all(pairs, memory_bytes, aggregator=COUNT, **kwargs):
    disk = LocalDisk()
    counters = Counters()
    g = HybridHashGrouper(
        disk, "hh", memory_bytes, aggregator=aggregator, counters=counters, **kwargs
    )
    for k, v in pairs:
        g.add(k, v)
    return dict(g.finish()), disk, counters, g


class TestInMemory:
    def test_counts(self):
        pairs = [("a", 1)] * 5 + [("b", 1)] * 3
        results, disk, counters, g = group_all(pairs, 1 << 20)
        assert results == {"a": 5, "b": 3}
        assert not g.frozen
        assert counters[C.REDUCE_SPILL_BYTES] == 0
        assert disk.list_files() == []

    def test_collect_grouping(self):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        results, *_ = group_all(pairs, 1 << 20, aggregator=COLLECT)
        assert results == {"a": [1, 3], "b": [2]}

    def test_empty(self):
        results, *_ = group_all([], 1 << 20)
        assert results == {}

    def test_finish_twice_raises(self):
        _, _, _, g = group_all([("a", 1)], 1 << 20)
        with pytest.raises(RuntimeError):
            list(g.finish())

    def test_add_after_finish_raises(self):
        _, _, _, g = group_all([("a", 1)], 1 << 20)
        with pytest.raises(RuntimeError):
            g.add("x", 1)


class TestOverflow:
    def test_tiny_memory_still_correct(self):
        pairs = [(f"k{i % 37}", 1) for i in range(2000)]
        results, _, counters, g = group_all(pairs, 2048)
        assert results == dict(Counter(k for k, _ in pairs))
        assert g.frozen
        assert counters[C.REDUCE_SPILL_BYTES] > 0

    def test_resident_keys_keep_aggregating_in_memory(self):
        # The first key to arrive stays resident; later duplicates of it
        # must not be spilled.
        pairs = [("hot", 1)] + [(f"cold{i}", 1) for i in range(500)]
        pairs += [("hot", 1)] * 100
        results, _, _, g = group_all(pairs, 1024)
        assert results["hot"] == 101

    def test_spill_partition_count_respected(self):
        pairs = [(f"k{i}", 1) for i in range(400)]
        disk = LocalDisk()
        g = HybridHashGrouper(disk, "hh", 512, aggregator=COUNT, spill_partitions=4)
        for k, v in pairs:
            g.add(k, v)
        live = [p for p in disk.list_files("hh/") if "l0" in p]
        assert 1 <= len(live) <= 4
        dict(g.finish())

    def test_spill_files_cleaned_after_finish(self):
        pairs = [(f"k{i % 60}", 1) for i in range(600)]
        results, disk, _, _ = group_all(pairs, 1024)
        assert disk.list_files("hh/") == []
        assert len(results) == 60

    def test_eviction_of_linear_states(self):
        # Collect states on a frozen table must eventually be shed to disk.
        pairs = [("big", "x" * 100) for _ in range(200)]
        pairs += [(f"other{i}", "y") for i in range(50)]
        pairs += [("big", "x" * 100) for _ in range(200)]
        results, _, _, _ = group_all(pairs, 4096, aggregator=COLLECT)
        assert len(results["big"]) == 400

    def test_spilled_state_roundtrip(self):
        inner = COUNT.initial()
        inner.update(None)
        wrapper = SpilledState(inner)
        assert wrapper.state.result() == 1

    @given(pair_streams, st.sampled_from([256, 1024, 16384, 1 << 20]))
    @settings(max_examples=40, deadline=None)
    def test_property_counts_match_reference(self, pairs, memory):
        results, *_ = group_all(pairs, memory)
        assert results == dict(Counter(k for k, _ in pairs))

    @given(pair_streams, st.sampled_from([512, 8192]))
    @settings(max_examples=25, deadline=None)
    def test_property_sums_match_reference(self, pairs, memory):
        results, *_ = group_all(pairs, memory, aggregator=SUM)
        expected: dict[int, int] = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        assert results == expected


class TestValidation:
    def test_bad_memory(self):
        with pytest.raises(ValueError):
            HybridHashGrouper(LocalDisk(), "x", 0)

    def test_bad_partitions(self):
        with pytest.raises(ValueError):
            HybridHashGrouper(LocalDisk(), "x", 100, spill_partitions=1)

    def test_max_levels_fallback(self):
        # With max_levels=1 the overflow path must finish without recursion.
        disk = LocalDisk()
        g = HybridHashGrouper(disk, "hh", 512, aggregator=COUNT, max_levels=1)
        for i in range(300):
            g.add(f"k{i % 23}", 1)
        results = dict(g.finish())
        assert results == {f"k{i}": 300 // 23 + (1 if i < 300 % 23 else 0) for i in range(23)}

"""Online aggregation estimators: unbiasedness, coverage, convergence."""

import math

import numpy as np
import pytest

from repro.core.online_agg import (
    GroupedOnlineAggregator,
    OnlineCount,
    OnlineMean,
    OnlineSum,
    z_for_confidence,
)


class TestZQuantile:
    @pytest.mark.parametrize(
        "confidence,expected",
        [(0.6827, 1.0), (0.90, 1.6449), (0.95, 1.9600), (0.99, 2.5758)],
    )
    def test_known_quantiles(self, confidence, expected):
        assert z_for_confidence(confidence) == pytest.approx(expected, abs=2e-3)

    def test_monotone_in_confidence(self):
        zs = [z_for_confidence(c) for c in (0.5, 0.8, 0.9, 0.99, 0.999)]
        assert zs == sorted(zs)

    def test_extreme_tails(self):
        assert z_for_confidence(0.9999) > 3.8
        assert 0 < z_for_confidence(0.01) < 0.02

    def test_validation(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                z_for_confidence(bad)


class TestOnlineSum:
    def test_exact_at_full_scan(self):
        values = [float(v) for v in range(100)]
        est = OnlineSum(population=100)
        for v in values:
            est.observe(v)
        e = est.estimate()
        assert e.value == pytest.approx(sum(values))
        assert e.half_width == pytest.approx(0.0)
        assert e.fraction_seen == 1.0

    def test_interval_shrinks_with_data(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10, 3, 10_000)
        est = OnlineSum(population=10_000)
        widths = []
        for i, v in enumerate(values):
            est.observe(v)
            if i in (99, 999, 9_999):
                widths.append(est.estimate().half_width)
        assert widths[0] > widths[1] > widths[2]

    def test_coverage_on_random_orderings(self):
        rng = np.random.default_rng(42)
        population = rng.exponential(5.0, 2_000)
        truth = population.sum()
        hits = 0
        trials = 120
        for t in range(trials):
            order = rng.permutation(population)
            est = OnlineSum(population=len(population), confidence=0.95)
            for v in order[:300]:
                est.observe(v)
            if est.estimate().contains(truth):
                hits += 1
        # 95% nominal; allow generous slack for 120 trials.
        assert hits / trials >= 0.85

    def test_single_observation_infinite_width(self):
        est = OnlineSum(population=10)
        est.observe(5)
        assert math.isinf(est.estimate().half_width)

    def test_cannot_exceed_population(self):
        est = OnlineSum(population=2)
        est.observe(1)
        est.observe(1)
        with pytest.raises(ValueError):
            est.observe(1)

    def test_no_observations_raises(self):
        with pytest.raises(ValueError):
            OnlineSum(population=5).estimate()
        with pytest.raises(ValueError):
            OnlineSum(population=0)


class TestOnlineCountAndMean:
    def test_count_estimates_selectivity(self):
        rng = np.random.default_rng(1)
        flags = rng.random(5_000) < 0.3
        est = OnlineCount(population=5_000)
        for f in flags[:1_000]:
            est.observe_match(bool(f))
        e = est.estimate()
        assert abs(e.value - flags.sum()) < 5 * e.half_width + 1

    def test_mean_converges(self):
        rng = np.random.default_rng(2)
        values = rng.normal(7.0, 2.0, 4_000)
        est = OnlineMean(population=4_000)
        for v in values:
            est.observe(v)
        e = est.estimate()
        assert e.value == pytest.approx(values.mean())
        assert e.half_width == pytest.approx(0.0)


class TestGroupedOnlineAggregator:
    def test_group_totals_exact_at_full_scan(self):
        records = [("a", 1.0)] * 30 + [("b", 2.0)] * 20
        agg = GroupedOnlineAggregator(population=50)
        for g, v in records:
            agg.observe(g, v)
        assert agg.estimate("a").value == pytest.approx(30.0)
        assert agg.estimate("b").value == pytest.approx(40.0)

    def test_unseen_group_estimates_zero(self):
        agg = GroupedOnlineAggregator(population=10)
        agg.observe("a")
        assert agg.estimate("ghost").value == 0.0

    def test_top_groups_ranked_by_estimate(self):
        agg = GroupedOnlineAggregator(population=100)
        for g, n in (("big", 50), ("mid", 30), ("small", 20)):
            for _ in range(n):
                agg.observe(g)
        top = agg.top_groups(2)
        assert [g for g, _ in top] == ["big", "mid"]

    def test_estimates_unbiased_on_prefix(self):
        rng = np.random.default_rng(3)
        groups = rng.choice(["x", "y", "z"], size=3_000, p=[0.5, 0.3, 0.2])
        agg = GroupedOnlineAggregator(population=3_000)
        for g in groups[:600]:
            agg.observe(g)
        est = agg.estimate("x")
        truth = float((groups == "x").sum())
        assert est.contains(truth)

    def test_population_guard(self):
        agg = GroupedOnlineAggregator(population=1)
        agg.observe("a")
        with pytest.raises(ValueError):
            agg.observe("a")

    def test_estimate_requires_observations(self):
        with pytest.raises(ValueError):
            GroupedOnlineAggregator(population=5).estimate("a")

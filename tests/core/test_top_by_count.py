"""TopByCountState: the §IV.3 top-k combiner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import TopByCountState, fold, top_by_count


class TestTopByCount:
    def test_ranks_by_frequency(self):
        values = ["a"] * 5 + ["b"] * 3 + ["c"]
        assert fold(top_by_count(2), values) == [("a", 5), ("b", 3)]

    def test_deterministic_tiebreak(self):
        assert fold(top_by_count(2), ["b", "a"]) == fold(top_by_count(2), ["a", "b"])

    def test_fewer_distinct_than_k(self):
        assert fold(top_by_count(10), ["x", "x"]) == [("x", 2)]

    def test_merge_adds_counts(self):
        a = TopByCountState(3)
        b = TopByCountState(3)
        for v in ["x", "x", "y"]:
            a.update(v)
        for v in ["x", "z"]:
            b.update(v)
        a.merge(b)
        assert a.result() == [("x", 3), ("y", 1), ("z", 1)]

    def test_size_grows_with_distinct_values_only(self):
        s = TopByCountState(3)
        s.update("v")
        one = s.size_bytes()
        for _ in range(100):
            s.update("v")
        assert s.size_bytes() == one  # same distinct value
        s.update("w")
        assert s.size_bytes() > one

    def test_validation(self):
        with pytest.raises(ValueError):
            TopByCountState(0)

    @given(st.lists(st.integers(0, 15), max_size=100), st.integers(0, 50))
    @settings(max_examples=40)
    def test_split_merge_equals_sequential(self, values, cut_raw):
        cut = cut_raw % (len(values) + 1)
        left = TopByCountState(4)
        for v in values[:cut]:
            left.update(v)
        right = TopByCountState(4)
        for v in values[cut:]:
            right.update(v)
        left.merge(right)
        assert left.result() == fold(top_by_count(4), values)

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=80))
    @settings(max_examples=40)
    def test_top1_is_the_mode(self, values):
        from collections import Counter

        (value, count), *_ = fold(top_by_count(1), values)
        assert count == max(Counter(values).values())

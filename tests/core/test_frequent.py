"""Space-Saving: unit behaviour plus its classical guarantees as properties."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequent import SpaceSaving
from repro.workloads.zipf import ZipfSampler

streams = st.lists(st.integers(0, 30), min_size=1, max_size=400)


class TestBasics:
    def test_tracks_up_to_capacity_without_eviction(self):
        ss = SpaceSaving(4)
        for key in "abcd":
            assert ss.offer(key) is None
        assert len(ss) == 4
        assert ss.evictions == 0

    def test_eviction_replaces_minimum(self):
        ss = SpaceSaving(2)
        ss.offer("a")
        ss.offer("a")
        ss.offer("b")
        evicted = ss.offer("c")
        assert evicted == "b"
        assert "c" in ss and "a" in ss and "b" not in ss
        est = ss.estimate("c")
        assert est.count == 2  # inherits victim's count + 1
        assert est.error == 1

    def test_offered_key_always_tracked(self):
        ss = SpaceSaving(3)
        for i in range(100):
            ss.offer(i)
            assert i in ss

    def test_estimate_untracked_is_none(self):
        ss = SpaceSaving(2)
        ss.offer("a")
        assert ss.estimate("zzz") is None

    def test_weighted_offers(self):
        ss = SpaceSaving(2)
        ss.offer("a", count=10)
        assert ss.estimate("a").count == 10
        with pytest.raises(ValueError):
            ss.offer("a", count=0)

    def test_entries_sorted_desc(self):
        ss = SpaceSaving(5)
        for key, n in (("a", 5), ("b", 2), ("c", 9)):
            ss.offer(key, count=n)
        assert [e.key for e in ss.entries()] == ["c", "a", "b"]
        assert [e.key for e in ss.top(2)] == ["c", "a"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_heavy_hitters_phi_validation(self):
        ss = SpaceSaving(2)
        ss.offer("a")
        with pytest.raises(ValueError):
            ss.heavy_hitters(0.0)
        with pytest.raises(ValueError):
            ss.heavy_hitters(1.0)


class TestGuarantees:
    @given(streams)
    @settings(max_examples=60)
    def test_count_sum_invariant(self, stream):
        ss = SpaceSaving(8)
        for key in stream:
            ss.offer(key)
        assert sum(e.count for e in ss.entries()) == len(stream)

    @given(streams)
    @settings(max_examples=60)
    def test_estimate_bounds_true_count(self, stream):
        ss = SpaceSaving(8)
        truth = Counter()
        for key in stream:
            ss.offer(key)
            truth[key] += 1
        for entry in ss.entries():
            assert entry.guaranteed <= truth[entry.key] <= entry.count

    @given(streams)
    @settings(max_examples=60)
    def test_frequent_keys_always_tracked(self, stream):
        capacity = 8
        ss = SpaceSaving(capacity)
        truth = Counter()
        for key in stream:
            ss.offer(key)
            truth[key] += 1
        threshold = len(stream) / capacity
        for key, count in truth.items():
            if count > threshold:
                assert key in ss

    @given(streams)
    @settings(max_examples=40)
    def test_error_bounded_by_n_over_k(self, stream):
        capacity = 8
        ss = SpaceSaving(capacity)
        for key in stream:
            ss.offer(key)
        for entry in ss.entries():
            assert entry.error <= len(stream) / capacity

    def test_heap_compaction_keeps_correctness(self):
        # Force many evictions so the lazy heap compacts several times.
        ss = SpaceSaving(4)
        for i in range(5000):
            ss.offer(i % 100)
        assert sum(e.count for e in ss.entries()) == 5000
        assert len(ss) == 4


class TestOnSkewedStream:
    def test_finds_zipf_head(self):
        sampler = ZipfSampler(1000, 1.4, seed=3)
        ss = SpaceSaving(64)
        draws = sampler.draw(50_000)
        truth = Counter(int(x) for x in draws)
        for rank in draws:
            ss.offer(int(rank))
        true_top10 = {k for k, _ in truth.most_common(10)}
        sketch_top = {e.key for e in ss.top(20)}
        assert true_top10 <= sketch_top

    def test_guaranteed_top_is_sound(self):
        sampler = ZipfSampler(500, 1.5, seed=9)
        ss = SpaceSaving(64)
        draws = [int(x) for x in sampler.draw(30_000)]
        truth = Counter(draws)
        ss.offer_all(draws)
        k = 5
        guaranteed = ss.guaranteed_top(k)
        true_topk = {key for key, _ in truth.most_common(k)}
        for entry in guaranteed:
            assert entry.key in true_topk

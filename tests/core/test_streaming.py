"""StreamProcessor and tumbling windows."""

from collections import Counter

import pytest

from repro.core.aggregates import COUNT, SUM
from repro.core.incremental import count_threshold_policy
from repro.core.streaming import StreamProcessor, TumblingWindowProcessor


def count_map(record):
    yield (record, 1)


def click_map(click):
    _ts, _user, url = click
    yield (url, 1)


class TestStreamProcessor:
    def test_push_and_finish_exact(self):
        sp = StreamProcessor(count_map, COUNT, num_partitions=3)
        keys = ["a", "b", "a", "c", "a", "b"]
        sp.push_many(keys)
        assert sp.records_seen == 6
        assert sp.finish() == dict(Counter(keys))

    def test_current_answers_anytime(self):
        sp = StreamProcessor(count_map, COUNT)
        sp.push("x")
        assert sp.current("x") == 1
        sp.push("x")
        assert sp.current("x") == 2
        assert sp.current("never") is None

    def test_snapshot_is_live(self):
        sp = StreamProcessor(count_map, SUM)
        sp.push_many([1, 1, 2])
        snap = sp.snapshot()
        assert snap == {1: 2, 2: 1}
        sp.push(2)
        assert sp.snapshot()[2] == 2

    def test_emit_policy_fires_callback_immediately(self):
        fired = []
        sp = StreamProcessor(
            count_map,
            COUNT,
            emit_policy=count_threshold_policy(3),
            on_emit=lambda k, r: fired.append((k, r, sp.records_seen)),
        )
        sp.push_many(["hot"] * 5 + ["cold"])
        assert fired == [("hot", 3, 3)]  # fired at the third push, not later
        assert sp.early_emitted == [("hot", 3)]

    def test_push_after_finish_raises(self):
        sp = StreamProcessor(count_map, COUNT)
        sp.push("a")
        sp.finish()
        with pytest.raises(RuntimeError):
            sp.push("b")
        with pytest.raises(RuntimeError):
            sp.finish()

    def test_hotset_mode_exact_at_finish(self):
        sp = StreamProcessor(
            count_map, COUNT, mode="hotset", hotset_capacity=8, num_partitions=2
        )
        keys = [f"k{i % 100}" for i in range(3000)]
        sp.push_many(keys)
        assert sp.finish() == dict(Counter(keys))

    def test_hotset_current_for_hot_keys(self):
        sp = StreamProcessor(count_map, COUNT, mode="hotset", hotset_capacity=4)
        sp.push_many(["hot"] * 50 + [f"cold{i}" for i in range(2)])
        assert sp.current("hot") is not None

    def test_bounded_memory_incremental(self):
        sp = StreamProcessor(
            count_map, COUNT, memory_bytes=4096, num_partitions=1
        )
        keys = [f"k{i % 500}" for i in range(5000)]
        sp.push_many(keys)
        assert sp.finish() == dict(Counter(keys))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamProcessor(count_map, COUNT, num_partitions=0)
        with pytest.raises(ValueError):
            StreamProcessor(count_map, COUNT, mode="bogus")

    def test_partitioning_is_transparent(self):
        for parts in (1, 2, 7):
            sp = StreamProcessor(count_map, COUNT, num_partitions=parts)
            sp.push_many(["a", "b", "c"] * 10)
            assert sp.finish() == {"a": 10, "b": 10, "c": 10}


class TestTumblingWindows:
    def make(self, width=10.0, lateness=0.0):
        emitted = []
        twp = TumblingWindowProcessor(
            click_map,
            COUNT,
            width=width,
            ts_of=lambda click: click[0],
            on_window=lambda start, results: emitted.append((start, results)),
            allowed_lateness=lateness,
        )
        return twp, emitted

    def click(self, ts, url="/a"):
        return (ts, 0, url)

    def test_window_emitted_when_watermark_passes(self):
        twp, emitted = self.make(width=10.0)
        twp.push(self.click(1.0))
        twp.push(self.click(5.0))
        assert emitted == []  # window [0,10) still open
        twp.push(self.click(12.0))
        assert emitted == [(0.0, {"/a": 2})]

    def test_flush_emits_remaining_in_order(self):
        twp, emitted = self.make(width=10.0, lateness=30.0)
        twp.push(self.click(25.0))
        twp.push(self.click(3.0))  # within the 30 s lateness allowance
        twp.flush()
        assert [start for start, _ in emitted] == [0.0, 20.0]
        assert twp.open_windows == 0
        assert twp.late_records == 0

    def test_counts_per_window(self):
        twp, emitted = self.make(width=10.0)
        for ts, url in [(1, "/a"), (2, "/a"), (11, "/a"), (12, "/b"), (21, "/a")]:
            twp.push(self.click(float(ts), url))
        twp.flush()
        assert emitted == [
            (0.0, {"/a": 2}),
            (10.0, {"/a": 1, "/b": 1}),
            (20.0, {"/a": 1}),
        ]

    def test_late_records_dropped_and_counted(self):
        twp, emitted = self.make(width=10.0)
        twp.push(self.click(15.0))  # finalises [0,10) implicitly? no records
        twp.push(self.click(25.0))  # finalises [10,20)
        twp.push(self.click(11.0))  # late: window [10,20) already emitted
        assert twp.late_records == 1
        twp.flush()
        totals = Counter()
        for _start, results in emitted:
            totals.update(results)
        assert totals["/a"] == 2  # the late click is not double-counted

    def test_allowed_lateness_keeps_window_open(self):
        twp, emitted = self.make(width=10.0, lateness=5.0)
        twp.push(self.click(1.0))
        twp.push(self.click(12.0))
        assert emitted == []  # watermark 12 < 10 + lateness 5
        twp.push(self.click(16.0))
        assert emitted and emitted[0][0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TumblingWindowProcessor(
                click_map, COUNT, width=0, ts_of=lambda c: c[0], on_window=print
            )
        with pytest.raises(ValueError):
            TumblingWindowProcessor(
                click_map,
                COUNT,
                width=1,
                ts_of=lambda c: c[0],
                on_window=print,
                allowed_lateness=-1,
            )

    def test_straggler_cannot_resurrect_an_empty_closed_window(self):
        twp, emitted = self.make(width=10.0)
        twp.push(self.click(35.0))  # watermark 35: windows below 30 closed
        twp.push(self.click(5.0))  # straggler for the (empty) window [0,10)
        assert twp.late_records == 1
        twp.flush()
        assert [start for start, _ in emitted] == [30.0]

    def test_stream_of_generated_clicks(self):
        from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

        clicks = list(
            generate_clicks(ClickStreamConfig(num_clicks=5_000, num_urls=50))
        )
        twp, emitted = self.make(width=20.0)
        twp.push_many(clicks)
        twp.flush()
        total = Counter()
        for _start, results in emitted:
            total.update(results)
        from repro.workloads.page_frequency import reference_page_counts

        assert dict(total) == reference_page_counts(clicks)
        assert twp.late_records == 0  # generator is time-ordered
"""HashFamily and the accounted state table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import COLLECT, COUNT, SUM, CountState
from repro.core.hash_tables import AccountedStateTable, HashFamily


class TestHashFamily:
    def test_members_deterministic(self):
        fam = HashFamily(seed=1)
        h = fam.member(0)
        assert h("key") == h("key")
        assert fam.member(0)("key") == h("key")

    def test_members_differ_across_indices(self):
        fam = HashFamily(seed=1)
        h0, h1 = fam.member(0), fam.member(1)
        keys = [f"k{i}" for i in range(200)]
        same = sum(1 for k in keys if h0(k) % 16 == h1(k) % 16)
        # Independent functions agree on a 16-bucket assignment ~1/16th
        # of the time; identical ones would agree always.
        assert same < 50

    def test_seeds_differ(self):
        a = HashFamily(seed=1).member(0)
        b = HashFamily(seed=2).member(0)
        keys = [f"k{i}" for i in range(100)]
        assert any(a(k) != b(k) for k in keys)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            HashFamily().member(-1)

    @given(st.integers(0, 5), st.text(max_size=20))
    @settings(max_examples=50)
    def test_output_in_field(self, index, key):
        h = HashFamily(seed=7).member(index)
        assert 0 <= h(key) < (1 << 61) - 1

    def test_bucket_distribution_roughly_uniform(self):
        h = HashFamily(seed=3).member(2)
        buckets = [0] * 8
        for i in range(8000):
            buckets[h(i) % 8] += 1
        assert min(buckets) > 8000 / 8 / 2


class TestAccountedStateTable:
    def test_update_creates_and_folds(self):
        t = AccountedStateTable(COUNT)
        t.update("a", None)
        t.update("a", None)
        t.update("b", None)
        assert len(t) == 2
        assert dict(t.results()) == {"a": 2, "b": 1}

    def test_contains_and_get(self):
        t = AccountedStateTable(SUM)
        t.update("a", 5)
        assert "a" in t and "b" not in t
        assert t.get("a").result() == 5
        assert t.get("b") is None

    def test_merge_state(self):
        t = AccountedStateTable(COUNT)
        other = CountState()
        other.n = 10
        t.merge_state("a", other)
        t.update("a", None)
        assert t.get("a").result() == 11

    def test_used_bytes_grows_with_keys(self):
        t = AccountedStateTable(COUNT)
        empty = t.used_bytes
        for i in range(100):
            t.update(f"key-{i}", None)
        assert t.used_bytes > empty + 100 * 50

    def test_used_bytes_grows_with_collect_values(self):
        t = AccountedStateTable(COLLECT)
        t.update("k", "x")
        one = t.used_bytes
        for _ in range(50):
            t.update("k", "y" * 50)
        assert t.used_bytes > one + 50 * 50

    def test_pop_releases_budget(self):
        t = AccountedStateTable(COLLECT)
        t.update("a", "x" * 100)
        t.update("b", "y")
        before = t.used_bytes
        state = t.pop("a")
        assert state.result() == ["x" * 100]
        assert t.used_bytes < before
        assert "a" not in t

    def test_clear(self):
        t = AccountedStateTable(COUNT)
        t.update("a", None)
        t.clear()
        assert len(t) == 0
        assert t.used_bytes == 0

    def test_probes_counted(self):
        t = AccountedStateTable(COUNT)
        for i in range(7):
            t.update(i % 3, None)
        assert t.probes == 7

"""Unit tests for the pluggable task executor subsystem (repro.exec)."""

import pytest

from repro.exec import (
    Executor,
    MPExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_kernel,
    register_kernel,
    resolve_executor,
)
from repro.exec.base import _InlineSession, fork_available


# A tiny picklable kernel for session tests.  Registered at import time so
# forked pool workers inherit it.
def _square_kernel(context, spec):
    return (context["scale"] * spec) ** 2


register_kernel("test_square", _square_kernel)


class TestResolveExecutor:
    def test_none_is_serial(self):
        ex = resolve_executor(None)
        assert isinstance(ex, SerialExecutor)
        assert ex.name == "serial"
        assert ex.workers == 1

    def test_serial_string(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)

    def test_threads_default_workers(self):
        ex = resolve_executor("threads")
        assert isinstance(ex, ThreadExecutor)
        assert ex.workers >= 1

    def test_threads_with_count(self):
        ex = resolve_executor("threads:3")
        assert isinstance(ex, ThreadExecutor)
        assert ex.workers == 3

    def test_thread_alias(self):
        assert isinstance(resolve_executor("thread:2"), ThreadExecutor)

    def test_processes_with_count(self):
        ex = resolve_executor("processes:2")
        assert isinstance(ex, MPExecutor)
        assert ex.workers == 2

    def test_process_and_mp_aliases(self):
        assert isinstance(resolve_executor("process"), MPExecutor)
        assert isinstance(resolve_executor("mp:4"), MPExecutor)

    def test_instance_passthrough(self):
        ex = ThreadExecutor(2)
        assert resolve_executor(ex) is ex

    def test_executors_satisfy_protocol(self):
        for ex in (SerialExecutor(), ThreadExecutor(2), MPExecutor(2)):
            assert isinstance(ex, Executor)

    def test_serial_rejects_worker_count(self):
        with pytest.raises(ValueError):
            resolve_executor("serial:2")

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            resolve_executor("threads:0")

    def test_rejects_non_numeric_count(self):
        with pytest.raises(ValueError):
            resolve_executor("threads:lots")

    def test_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_executor("gpu")

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            resolve_executor(42)


class TestKernelRegistry:
    def test_registered_kernel_is_returned(self):
        assert get_kernel("test_square") is _square_kernel

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="no_such_kernel"):
            get_kernel("no_such_kernel")

    def test_engine_kernels_register_lazily(self):
        # get_kernel triggers registration of the built-in engine kernels.
        for name in ("hadoop_map", "hadoop_reduce", "hop_map", "onepass_map"):
            assert callable(get_kernel(name))


CONTEXT = {"scale": 2}
SPECS = list(range(7))
EXPECTED = [(2 * s) ** 2 for s in SPECS]


class TestSessions:
    def test_serial_session_batches_of_one(self):
        with SerialExecutor().session(CONTEXT) as session:
            assert session.max_batch == 1
            assert session.run_batch("test_square", SPECS) == EXPECTED
            assert session.run_one("test_square", 5) == 100

    def test_thread_session_preserves_spec_order(self):
        with ThreadExecutor(3).session(CONTEXT) as session:
            assert session.max_batch == 6
            assert session.run_batch("test_square", SPECS) == EXPECTED
            assert session.run_one("test_square", 5) == 100

    @pytest.mark.skipif(not fork_available(), reason="requires fork start method")
    def test_fork_session_preserves_spec_order(self):
        with MPExecutor(2).session(CONTEXT) as session:
            assert session.max_batch == 8
            assert session.run_batch("test_square", SPECS) == EXPECTED
            assert session.run_one("test_square", 5) == 100

    @pytest.mark.skipif(not fork_available(), reason="requires fork start method")
    def test_fork_session_single_spec_runs_inline(self):
        # A one-element batch must not spin up the pool.
        session = MPExecutor(2).session(CONTEXT)
        with session:
            assert session.run_batch("test_square", [3]) == [36]
            assert session._pool is None

    def test_thread_session_single_spec_runs_inline(self):
        session = ThreadExecutor(2).session(CONTEXT)
        with session:
            assert session.run_batch("test_square", [3]) == [36]
            assert session._pool is None

    def test_sessions_are_reusable_across_batches(self):
        with ThreadExecutor(2).session(CONTEXT) as session:
            first = session.run_batch("test_square", SPECS)
            second = session.run_batch("test_square", SPECS)
        assert first == second == EXPECTED

    def test_inline_session_releases_context_on_exit(self):
        session = _InlineSession(CONTEXT)
        with session:
            pass
        assert session._context is None

"""Public-API integrity: every exported name exists and is importable.

A library a downstream user adopts must not ship dangling ``__all__``
entries or modules that fail to import; this locks that in.
"""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.io",
    "repro.hdfs",
    "repro.mapreduce",
    "repro.core",
    "repro.simulator",
    "repro.workloads",
    "repro.analysis",
]


def iter_all_modules():
    seen = set(PACKAGES)
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__, pkg_name + "."):
                # __main__ runs the CLI on import; everything else must be
                # importable side-effect-free.
                if not info.name.endswith("__main__"):
                    seen.add(info.name)
    return sorted(seen)


class TestImports:
    @pytest.mark.parametrize("module_name", iter_all_modules())
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_all_names_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        exported = getattr(pkg, "__all__", [])
        missing = [name for name in exported if not hasattr(pkg, name)]
        assert missing == [], f"{pkg_name}.__all__ has dangling names: {missing}"

    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_all_has_no_duplicates(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        exported = list(getattr(pkg, "__all__", []))
        assert len(exported) == len(set(exported))

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    @pytest.mark.parametrize("pkg_name", [m for m in iter_all_modules()])
    def test_every_module_has_docstring(self, pkg_name):
        module = importlib.import_module(pkg_name)
        assert module.__doc__ and module.__doc__.strip(), f"{pkg_name} lacks a docstring"

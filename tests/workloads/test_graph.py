"""Graph workloads, verified against networkx."""

import pytest

from repro.core.engine import OnePassEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.graph import (
    GraphConfig,
    adjacency_onepass_job,
    count_triangles,
    degree_count_job,
    degree_count_onepass_job,
    degree_map,
    generate_edges,
    reference_degrees,
    reference_triangles,
)


@pytest.fixture(scope="module")
def edges():
    return generate_edges(GraphConfig(num_vertices=250, num_edges=1_200, seed=3))


@pytest.fixture
def loaded(edges):
    cluster = LocalCluster(num_nodes=3, block_size=32 * 1024)
    cluster.hdfs.write_records("edges", edges)
    return cluster


class TestGenerator:
    def test_simple_graph(self, edges):
        assert len(edges) == len(set(edges))
        for u, v in edges:
            assert u < v  # canonical order, no self-loops

    def test_deterministic(self):
        cfg = GraphConfig(num_vertices=50, num_edges=100, seed=9)
        assert generate_edges(cfg) == generate_edges(cfg)

    def test_hubs_exist(self, edges):
        degrees = reference_degrees(edges)
        mean = sum(degrees.values()) / len(degrees)
        assert max(degrees.values()) > 3 * mean

    def test_edge_target_respected(self):
        edges = generate_edges(GraphConfig(num_vertices=100, num_edges=300))
        assert len(edges) == 300

    def test_dense_request_capped(self):
        edges = generate_edges(GraphConfig(num_vertices=5, num_edges=1_000))
        assert len(edges) == 10  # complete graph on 5 vertices

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphConfig(num_vertices=1)
        with pytest.raises(ValueError):
            GraphConfig(num_edges=0)


class TestDegreeCounting:
    def test_map_emits_both_endpoints(self):
        assert list(degree_map((3, 7))) == [(3, 1), (7, 1)]

    def test_both_engines_match_networkx(self, loaded, edges):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edges_from(edges)
        nx_degrees = dict(graph.degree())

        HadoopEngine(loaded).run(degree_count_job("edges", "o1"))
        OnePassEngine(loaded).run(degree_count_onepass_job("edges", "o2"))
        assert dict(loaded.hdfs.read_records("o1")) == nx_degrees
        assert dict(loaded.hdfs.read_records("o2")) == nx_degrees

    def test_reference_sums_to_twice_edges(self, edges):
        assert sum(reference_degrees(edges).values()) == 2 * len(edges)


class TestAdjacency:
    def test_lists_match_graph(self, loaded, edges):
        OnePassEngine(loaded).run(adjacency_onepass_job("edges", "adj"))
        adjacency = dict(loaded.hdfs.read_records("adj"))
        expected: dict[int, set[int]] = {}
        for u, v in edges:
            expected.setdefault(u, set()).add(v)
            expected.setdefault(v, set()).add(u)
        assert {v: set(n) for v, n in adjacency.items()} == expected
        for neighbours in adjacency.values():
            assert list(neighbours) == sorted(neighbours)


class TestTriangles:
    def test_matches_networkx(self, loaded, edges):
        assert count_triangles(loaded, "edges") == reference_triangles(edges)

    def test_triangle_free_graph(self):
        # A star has no triangles.
        star = [(0, i) for i in range(1, 20)]
        cluster = LocalCluster(num_nodes=2, block_size=32 * 1024)
        cluster.hdfs.write_records("edges", star)
        assert count_triangles(cluster, "edges") == 0

    def test_complete_graph(self):
        from itertools import combinations

        k6 = list(combinations(range(6), 2))
        cluster = LocalCluster(num_nodes=2, block_size=32 * 1024)
        cluster.hdfs.write_records("edges", k6)
        assert count_triangles(cluster, "edges") == 20  # C(6,3)

    def test_single_triangle(self):
        cluster = LocalCluster(num_nodes=2, block_size=32 * 1024)
        cluster.hdfs.write_records("edges", [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert count_triangles(cluster, "edges") == 1

"""Click-stream and document generators."""

import pytest

from repro.workloads.clickstream import (
    ClickStreamConfig,
    click_text_codec,
    generate_clicks,
    url_of,
)
from repro.workloads.documents import (
    DocumentConfig,
    document_text_codec,
    generate_documents,
    word_of,
)


class TestClickStream:
    def test_count_and_schema(self):
        cfg = ClickStreamConfig(num_clicks=500, num_users=50, num_urls=20)
        clicks = list(generate_clicks(cfg))
        assert len(clicks) == 500
        for ts, user, url in clicks:
            assert isinstance(ts, float)
            assert 0 <= user < 50
            assert url.startswith("/page/")

    def test_timestamps_increasing(self):
        clicks = list(generate_clicks(ClickStreamConfig(num_clicks=1000)))
        times = [ts for ts, _, _ in clicks]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_deterministic_per_seed(self):
        cfg = ClickStreamConfig(num_clicks=300, seed=9)
        assert list(generate_clicks(cfg)) == list(generate_clicks(cfg))
        other = ClickStreamConfig(num_clicks=300, seed=10)
        assert list(generate_clicks(cfg)) != list(generate_clicks(other))

    def test_skew_produces_hot_users(self):
        cfg = ClickStreamConfig(
            num_clicks=20_000, num_users=1000, user_skew=1.4, seed=2
        )
        from collections import Counter

        counts = Counter(u for _, u, _ in generate_clicks(cfg))
        top10 = sum(n for _, n in counts.most_common(10))
        assert top10 > 0.2 * 20_000

    def test_chunking_invisible(self):
        cfg = ClickStreamConfig(num_clicks=1000, seed=3)
        assert list(generate_clicks(cfg, chunk=64)) == list(
            generate_clicks(cfg, chunk=100_000)
        )

    def test_codec_roundtrip(self):
        clicks = list(generate_clicks(ClickStreamConfig(num_clicks=50)))
        codec = click_text_codec()
        assert list(codec.decode(codec.encode(clicks))) == clicks

    def test_url_of_stable(self):
        assert url_of(3) == "/page/000003"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clicks": 0},
            {"num_users": 0},
            {"mean_interarrival": 0},
            {"session_gap": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClickStreamConfig(**kwargs)


class TestDocuments:
    def test_count_and_schema(self):
        docs = list(generate_documents(DocumentConfig(num_docs=40)))
        assert len(docs) == 40
        assert [d for d, _ in docs] == list(range(40))
        for _, text in docs:
            assert text
            assert all(w.startswith("w") for w in text.split())

    def test_deterministic(self):
        cfg = DocumentConfig(num_docs=20, seed=1)
        assert list(generate_documents(cfg)) == list(generate_documents(cfg))

    def test_mean_length_near_target(self):
        cfg = DocumentConfig(num_docs=500, mean_doc_words=80, seed=2)
        lengths = [len(t.split()) for _, t in generate_documents(cfg)]
        mean = sum(lengths) / len(lengths)
        assert 60 < mean < 100

    def test_vocab_bounded(self):
        cfg = DocumentConfig(num_docs=100, vocab_size=30, seed=3)
        words = {w for _, t in generate_documents(cfg) for w in t.split()}
        assert words <= {word_of(i) for i in range(30)}

    def test_codec_roundtrip(self):
        docs = list(generate_documents(DocumentConfig(num_docs=10)))
        codec = document_text_codec()
        assert list(codec.decode(codec.encode(docs))) == docs

    def test_validation(self):
        with pytest.raises(ValueError):
            DocumentConfig(num_docs=0)
        with pytest.raises(ValueError):
            DocumentConfig(mean_doc_words=0)

"""Twitter-feed analysis workload: generator, jobs, top-k combiner."""

import pytest

from repro.core.engine import OnePassConfig, OnePassEngine
from repro.mapreduce.runtime import HadoopEngine, LocalCluster
from repro.workloads.twitter import (
    TweetConfig,
    cooccurrence_map,
    generate_tweets,
    hashtag_cooccurrence_job,
    hashtag_cooccurrence_onepass_job,
    hashtag_count_job,
    hashtag_count_onepass_job,
    hashtag_map,
    hashtags_in,
    reference_cooccurrence,
    reference_hashtag_counts,
    reference_user_top_hashtags,
    user_top_hashtags_onepass_job,
)


@pytest.fixture(scope="module")
def tweets():
    return list(generate_tweets(TweetConfig(num_tweets=4_000, num_users=300, num_hashtags=120)))


@pytest.fixture
def loaded_cluster(tweets):
    cluster = LocalCluster(num_nodes=3, block_size=64 * 1024)
    cluster.hdfs.write_records("tweets", tweets)
    return cluster


class TestGenerator:
    def test_schema_and_order(self, tweets):
        times = [ts for ts, _, _ in tweets]
        assert times == sorted(times)
        for _ts, user, text in tweets:
            assert 0 <= user < 300
            assert hashtags_in(text)  # every tweet has at least one hashtag

    def test_deterministic(self):
        cfg = TweetConfig(num_tweets=100, seed=4)
        assert list(generate_tweets(cfg)) == list(generate_tweets(cfg))

    def test_hashtags_unique_within_tweet(self, tweets):
        for _ts, _user, text in tweets:
            tags = hashtags_in(text)
            assert len(tags) == len(set(tags))

    def test_skewed_tags(self, tweets):
        counts = reference_hashtag_counts(tweets)
        total = sum(counts.values())
        top5 = sum(sorted(counts.values(), reverse=True)[:5])
        assert top5 > 0.15 * total

    def test_validation(self):
        with pytest.raises(ValueError):
            TweetConfig(num_tweets=0)
        with pytest.raises(ValueError):
            TweetConfig(mean_hashtags=0)


class TestMapFunctions:
    def test_hashtag_map(self):
        tweet = (1.0, 7, "so good #tag00001 #tag00002")
        assert list(hashtag_map(tweet)) == [("#tag00001", 1), ("#tag00002", 1)]

    def test_cooccurrence_map_pairs(self):
        tweet = (1.0, 7, "x #a #c #b")
        pairs = [p for p, _ in cooccurrence_map(tweet)]
        assert pairs == [("#a", "#b"), ("#a", "#c"), ("#b", "#c")]

    def test_single_tag_no_pairs(self):
        assert list(cooccurrence_map((1.0, 7, "x #only"))) == []


class TestJobs:
    def test_hashtag_count_both_engines(self, loaded_cluster, tweets):
        ref = reference_hashtag_counts(tweets)
        HadoopEngine(loaded_cluster).run(hashtag_count_job("tweets", "o1"))
        OnePassEngine(loaded_cluster).run(hashtag_count_onepass_job("tweets", "o2"))
        assert dict(loaded_cluster.hdfs.read_records("o1")) == ref
        assert dict(loaded_cluster.hdfs.read_records("o2")) == ref

    def test_user_top_hashtags(self, loaded_cluster, tweets):
        OnePassEngine(loaded_cluster).run(
            user_top_hashtags_onepass_job("tweets", "o3", k=3)
        )
        got = dict(loaded_cluster.hdfs.read_records("o3"))
        assert got == reference_user_top_hashtags(tweets, k=3)

    def test_user_top_hashtags_hotset_mode(self, loaded_cluster, tweets):
        cfg = OnePassConfig(mode="hotset", hotset_capacity=32, map_side_combine=False)
        OnePassEngine(loaded_cluster).run(
            user_top_hashtags_onepass_job("tweets", "o4", k=2, config=cfg)
        )
        got = dict(loaded_cluster.hdfs.read_records("o4"))
        assert got == reference_user_top_hashtags(tweets, k=2)

    def test_cooccurrence_both_engines(self, loaded_cluster, tweets):
        ref = reference_cooccurrence(tweets)
        HadoopEngine(loaded_cluster).run(hashtag_cooccurrence_job("tweets", "o5"))
        OnePassEngine(loaded_cluster).run(
            hashtag_cooccurrence_onepass_job("tweets", "o6")
        )
        assert dict(loaded_cluster.hdfs.read_records("o5")) == ref
        assert dict(loaded_cluster.hdfs.read_records("o6")) == ref

    def test_cooccurrence_is_symmetric_free(self, tweets):
        # Pairs are canonically ordered, so no (b, a) duplicates exist.
        ref = reference_cooccurrence(tweets)
        for a, b in ref:
            assert a < b

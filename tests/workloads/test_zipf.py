"""Zipf sampling: distribution shape and determinism."""

import numpy as np
import pytest

from repro.workloads.zipf import ZipfSampler, zipf_pmf


class TestPmf:
    def test_sums_to_one(self):
        for n, s in ((1, 0.0), (10, 1.0), (1000, 1.5)):
            assert zipf_pmf(n, s).sum() == pytest.approx(1.0)

    def test_uniform_at_zero_skew(self):
        pmf = zipf_pmf(100, 0.0)
        assert np.allclose(pmf, 1 / 100)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(50, 1.2)
        assert (np.diff(pmf) <= 0).all()

    def test_skew_concentrates_head(self):
        mild = zipf_pmf(1000, 0.5)[:10].sum()
        strong = zipf_pmf(1000, 1.5)[:10].sum()
        assert strong > mild

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(10, -0.1)


class TestSampler:
    def test_deterministic_per_seed(self):
        a = ZipfSampler(100, 1.1, seed=5).draw(1000)
        b = ZipfSampler(100, 1.1, seed=5).draw(1000)
        assert (a == b).all()
        c = ZipfSampler(100, 1.1, seed=6).draw(1000)
        assert (a != c).any()

    def test_range(self):
        draws = ZipfSampler(37, 1.3, seed=1).draw(5000)
        assert draws.min() >= 0
        assert draws.max() < 37

    def test_empirical_matches_pmf(self):
        n, s = 50, 1.2
        sampler = ZipfSampler(n, s, seed=2)
        draws = sampler.draw(200_000)
        counts = np.bincount(draws, minlength=n) / len(draws)
        pmf = zipf_pmf(n, s)
        assert np.abs(counts[:10] - pmf[:10]).max() < 0.01

    def test_expected_top_share(self):
        sampler = ZipfSampler(1000, 1.5, seed=3)
        share = sampler.expected_top_share(10)
        draws = sampler.draw(100_000)
        empirical = (draws < 10).mean()
        assert empirical == pytest.approx(share, abs=0.02)
        assert sampler.expected_top_share(0) == 0.0
        assert sampler.expected_top_share(5000) == pytest.approx(1.0)

    def test_draw_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, 1.0).draw(-1)

    def test_draw_one(self):
        assert 0 <= ZipfSampler(10, 1.0, seed=4).draw_one() < 10

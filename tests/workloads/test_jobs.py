"""Workload job definitions: map/reduce functions and reference outputs."""

import pytest

from repro.workloads.counting import count_map_fn, reference_counts, sum_combine, sum_reduce
from repro.workloads.inverted_index import index_map, index_reduce, reference_index
from repro.workloads.page_frequency import url_of_click
from repro.workloads.per_user_count import user_of_click
from repro.workloads.sessionization import (
    reference_sessions,
    session_map,
    session_reduce,
)


class TestCountingFunctions:
    def test_map_emits_key_one(self):
        fn = count_map_fn(lambda r: r * 2)
        assert list(fn(3)) == [(6, 1)]

    def test_combine_and_reduce_sum(self):
        assert list(sum_combine("k", iter([1, 2, 3]))) == [("k", 6)]
        assert list(sum_reduce("k", iter([6, 4]))) == [("k", 10)]

    def test_reference_counts(self):
        records = ["a", "b", "a"]
        assert reference_counts(records, lambda r: r) == {"a": 2, "b": 1}

    def test_key_extractors(self):
        click = (12.5, 42, "/page/000001")
        assert url_of_click(click) == "/page/000001"
        assert user_of_click(click) == 42


class TestSessionization:
    def test_map_extracts_user_key(self):
        assert list(session_map((1.0, 7, "/x"))) == [(7, (1.0, "/x"))]

    def test_reduce_splits_sessions(self):
        clicks = [(0.0, "/a"), (1.0, "/b"), (100.0, "/c")]
        sessions = list(session_reduce(5, iter(clicks), gap=10.0))
        assert sessions == [(5, 0.0, ("/a", "/b")), (5, 100.0, ("/c",))]

    def test_reduce_sorts_clicks(self):
        clicks = [(5.0, "/b"), (0.0, "/a")]
        sessions = list(session_reduce(1, iter(clicks), gap=60.0))
        assert sessions == [(1, 0.0, ("/a", "/b"))]

    def test_reference_sessions_sorted_and_complete(self, clicks):
        sessions = reference_sessions(clicks, gap=5.0)
        assert sessions == sorted(sessions)
        clicks_in_sessions = sum(len(urls) for _, _, urls in sessions)
        assert clicks_in_sessions == len(clicks)

    def test_session_count_monotone_in_gap(self, clicks):
        few = len(reference_sessions(clicks, gap=100.0))
        many = len(reference_sessions(clicks, gap=0.001))
        assert many >= few


class TestInvertedIndex:
    def test_map_positions(self):
        pairs = list(index_map((3, "x y x")))
        assert pairs == [("x", (3, 0)), ("y", (3, 1)), ("x", (3, 2))]

    def test_reduce_sorts_postings(self):
        out = list(index_reduce("w", iter([(2, 1), (1, 5), (1, 2)])))
        assert out == [("w", ((1, 2), (1, 5), (2, 1)))]

    def test_reference_index(self):
        docs = [(0, "a b"), (1, "b a")]
        index = reference_index(docs)
        assert index["a"] == ((0, 0), (1, 1))
        assert index["b"] == ((0, 1), (1, 0))

    def test_reference_total_postings(self, documents):
        index = reference_index(documents)
        total = sum(len(p) for p in index.values())
        assert total == sum(len(t.split()) for _, t in documents)

"""Root conftest: load the reprosan pytest plugin.

``pytest_plugins`` may only be declared in the rootdir conftest, and the
plugin must be importable before tests/conftest.py runs, so the src
layout is put on sys.path here.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

pytest_plugins = ("repro.san.pytest_plugin",)

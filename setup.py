"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then uses the legacy ``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Towards Scalable One-Pass Analytics Using "
        "MapReduce' (IPDPS Workshops 2011)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
